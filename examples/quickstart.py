"""Quickstart: train WarpLDA on a synthetic NYTimes-like corpus.

Run with::

    python examples/quickstart.py
"""

from repro import WarpLDA
from repro.corpus import load_preset
from repro.evaluation import ConvergenceTracker, top_words


def main() -> None:
    # A scaled-down stand-in for the paper's NYTimes corpus (Table 3).
    corpus = load_preset("nytimes_like", scale=0.2, seed=0)
    print(f"Corpus: {corpus.num_documents} documents, {corpus.num_tokens} tokens, "
          f"{corpus.vocabulary_size} words")

    # WarpLDA with the paper's default hyper-parameters (alpha=50/K, beta=0.01)
    # and M=2 Metropolis-Hastings proposals per token.
    model = WarpLDA(corpus, num_topics=20, num_mh_steps=2, seed=0)
    tracker = ConvergenceTracker("WarpLDA")
    model.fit(50, tracker=tracker, evaluate_every=10)

    print("\nConvergence (log joint likelihood):")
    for record in tracker.records:
        print(f"  iteration {record.iteration:3d}  "
              f"log-likelihood {record.log_likelihood:14.1f}  "
              f"throughput {record.throughput / 1e6:5.2f} Mtoken/s")

    print("\nTop words of the first five topics:")
    for topic_index, words in enumerate(top_words(model.phi(), corpus.vocabulary, 8)[:5]):
        print(f"  topic {topic_index}: {' '.join(words)}")


if __name__ == "__main__":
    main()
