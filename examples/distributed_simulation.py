"""Distributed WarpLDA on a simulated cluster (the paper's Sec. 5 / Fig. 9).

Trains WarpLDA under the simulated-cluster time model for several worker
counts, prints the modelled per-iteration times, the partitioning balance and
the extrapolated scaling curves.

Run with::

    python examples/distributed_simulation.py
"""

from repro.corpus import load_preset
from repro.distributed import (
    ClusterConfig,
    DistributedWarpLDA,
    SimulatedCluster,
    machine_scaling_curve,
    thread_scaling_curve,
)
from repro.evaluation import ConvergenceTracker
from repro.report import format_table


def main() -> None:
    corpus = load_preset("clueweb_like", scale=0.2, seed=0)
    print(f"Corpus: {corpus.num_documents} documents, {corpus.num_tokens} tokens")

    rows = []
    for workers in (1, 2, 4, 8):
        config = ClusterConfig(num_workers=workers)
        tracker = ConvergenceTracker(f"{workers} workers")
        model = DistributedWarpLDA(corpus, config, num_topics=50, seed=0)
        model.fit(5, tracker=tracker)
        cluster = SimulatedCluster(corpus, config)
        rows.append(
            {
                "workers": workers,
                "modelled seconds / 5 iters": round(model.modelled_seconds, 3),
                "column imbalance": round(cluster.column_imbalance, 4),
                "final log-likelihood": round(tracker.final_log_likelihood, 1),
            }
        )
    print(format_table(rows, title="Simulated distributed WarpLDA"))

    single_core = 6e6       # paper Fig. 9a: ~6M tokens/s on one core
    single_machine = 1.1e8  # paper Sec. 6.2: ~110M tokens/s on one machine
    print()
    print(format_table(thread_scaling_curve(single_core), title="Modelled thread scaling (Fig. 9a)"))
    print()
    print(format_table(
        machine_scaling_curve(single_machine, machine_counts=(1, 2, 4, 8, 16, 64, 256)),
        title="Modelled machine scaling (Fig. 9b/9d)",
    ))


if __name__ == "__main__":
    main()
