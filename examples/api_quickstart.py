"""The whole system through one front door: repro.api.LDA.

Batch-train WarpLDA from a declarative spec, save the model (the spec rides
along in the snapshot), reload it, infer topics for unseen documents, and
stand up the micro-batching topic server — in ~30 lines.

Run with:  PYTHONPATH=src python examples/api_quickstart.py
"""

from repro.api import LDA, ModelSpec
from repro.corpus import load_preset

# One spec describes the model: algorithm, K, kernel, backend, seed.
spec = ModelSpec(num_topics=10, algorithm="warplda", seed=0)
# (backend="parallel" or "online" would run the same spec on the
#  multiprocess trainer or the streaming pipeline — same front door.)

corpus = load_preset("nytimes_like", scale=0.1, seed=0)
model = LDA(spec).fit(corpus, num_iterations=30)

for index, topic in enumerate(model.top_topics(num_words=6)[:3]):
    print(f"topic {index}: " + " ".join(word for word, _ in topic))

# Save: the snapshot embeds the spec, so it reloads as a ready LDA.
path = model.save("/tmp/api_quickstart_model.npz")
reloaded = LDA.load(path)
assert reloaded.spec == spec

# Transform unseen documents (raw tokens; OOV words are dropped).
docs = [["w1", "w2", "w3", "w4"], ["w10", "w11"]]
theta = reloaded.transform(docs)
print(f"theta shape: {theta.shape}, rows sum to {theta.sum(axis=1).round(6)}")
print(f"held-out perplexity: {reloaded.perplexity(docs):.1f}")

# Serve: micro-batching TopicServer with an LRU cache, same model.
server = reloaded.serve(cache_capacity=1024)
server.infer_batch(docs)
print(server.stats().summary())
