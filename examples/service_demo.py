"""End-to-end HTTP serving demo: boot, load, hot-swap, scrape metrics.

Trains a small model, serves it over HTTP from a shared-memory worker pool
(`repro.service.TopicService`), drives it with concurrent clients, publishes
a fresh model version mid-traffic to show the cross-process hot swap, and
finishes with a Prometheus `/metrics` scrape.

Run with::

    python examples/service_demo.py
"""

import json
import threading
import time
import urllib.request

from repro import WarpLDA
from repro.corpus import load_preset
from repro.service import ServiceConfig, TopicService
from repro.streaming import ModelRegistry


def post_infer(base_url: str, documents) -> dict:
    request = urllib.request.Request(
        base_url + "/infer",
        data=json.dumps({"documents": documents}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def get(base_url: str, path: str) -> bytes:
    with urllib.request.urlopen(base_url + path, timeout=30) as response:
        return response.read()


def main() -> None:
    # 1. Train two model versions on a synthetic NYTimes-like corpus.
    corpus = load_preset("nytimes_like", scale=0.1, seed=0)
    print(f"Training on {corpus.num_documents} documents "
          f"({corpus.num_tokens} tokens)")
    first = WarpLDA(corpus, num_topics=10, seed=0).fit(10).export_snapshot()
    second = WarpLDA(corpus, num_topics=10, seed=1).fit(20).export_snapshot()

    # 2. Publish v1 into a registry and serve it: 2 worker processes mapping
    #    ONE shared copy of phi, behind an asyncio HTTP front end.
    registry = ModelRegistry()
    registry.publish(first)
    config = ServiceConfig(port=0, num_workers=2, poll_interval=0.1)
    with TopicService(registry=registry, config=config).start() as service:
        print(f"\nServing v{service.served_version} on {service.url}")
        for info in service.diagnostics():
            print(f"  worker {info['worker']}: segment {info['segment']} "
                  f"zero_copy={info['zero_copy']}")

        # 3. Concurrent clients classifying documents while we watch.
        documents = [
            corpus.document_words(i).tolist()
            for i in range(min(32, corpus.num_documents))
        ]
        versions_seen = set()

        def client(offset: int) -> None:
            for index in range(offset, offset + 40):
                body = post_infer(service.url, [documents[index % len(documents)]])
                versions_seen.add(body["version"])
                assert abs(sum(body["theta"][0]) - 1.0) < 1e-9

        threads = [threading.Thread(target=client, args=(i * 40,)) for i in range(4)]
        for thread in threads:
            thread.start()

        # 4. Publish v2 mid-traffic: the service broadcasts the swap; requests
        #    already in flight finish on v1, later ones see v2.
        entry = registry.publish(second)
        print(f"\nPublished v{entry.version} while clients are running...")
        for thread in threads:
            thread.join()
        # A few more requests so the swap is certainly visible.
        deadline = time.monotonic() + 10.0
        while service.served_version != entry.version:
            if time.monotonic() > deadline:
                raise RuntimeError("hot swap did not land within 10s")
            time.sleep(0.05)
        body = post_infer(service.url, [documents[0]])
        versions_seen.add(body["version"])
        print(f"Client-observed versions across the swap: {sorted(versions_seen)}")

        # 5. Serving stats and a Prometheus scrape.
        stats = json.loads(get(service.url, "/stats"))
        print(f"\n/stats: {stats['requests']} requests, "
              f"p50 {stats['latency_ms']['p50_ms']:.2f} ms, "
              f"p99 {stats['latency_ms']['p99_ms']:.2f} ms, "
              f"hot_swaps {stats['hot_swaps']}")
        topics = json.loads(get(service.url, "/top-topics?words=5"))["topics"]
        print(f"/top-topics: first topic -> {topics[0]}")
        metrics = get(service.url, "/metrics").decode("utf-8")
        service_lines = [
            line for line in metrics.splitlines()
            if line.startswith("service_") and not line.startswith("#")
        ]
        print(f"/metrics: {len(service_lines)} service_* samples, e.g.")
        for line in service_lines[:4]:
            print(f"  {line}")

    print("\nService closed; every shared segment unlinked.")


if __name__ == "__main__":
    main()
