"""Walkthrough: shard → train → checkpoint → resume → serve.

Trains WarpLDA with the multiprocess data-parallel trainer, interrupts the
run at a checkpoint, resumes it bit-exactly, and serves the final model with
the micro-batching topic server — the full production loop in one script.

Run with::

    PYTHONPATH=src python examples/parallel_training.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.corpus import load_preset
from repro.distributed.partition import contiguous_shards
from repro.serving import InferenceEngine, TopicServer
from repro.training import ParallelTrainer

NUM_TOPICS = 15
NUM_WORKERS = 4
SEED = 0


def main() -> None:
    corpus = load_preset("nytimes_like", scale=0.2, seed=SEED)
    print(f"corpus: {corpus.num_documents} docs, {corpus.num_tokens} tokens")

    # 1. Sharding — contiguous document ranges with balanced token counts,
    #    each a zero-copy view of the corpus.
    boundaries = contiguous_shards(corpus.document_lengths(), NUM_WORKERS)
    for worker in range(NUM_WORKERS):
        shard = corpus.slice(int(boundaries[worker]), int(boundaries[worker + 1]))
        print(
            f"  shard {worker}: docs [{boundaries[worker]}, "
            f"{boundaries[worker + 1]}), {shard.num_tokens} tokens"
        )

    checkpoint_dir = Path(tempfile.mkdtemp()) / "checkpoint"

    # 2. Train for 6 epochs across real worker processes, then checkpoint.
    with ParallelTrainer(
        corpus, num_workers=NUM_WORKERS, num_topics=NUM_TOPICS, seed=SEED
    ) as trainer:
        trainer.train(6, checkpoint_dir=checkpoint_dir)
        print(f"\nafter 6 epochs: log likelihood {trainer.log_likelihood():.1f}")
        print(f"checkpoint written to {checkpoint_dir}")

    # 3. Resume from disk — the trainer continues the exact RNG streams, so
    #    this run is bit-identical to one that never stopped.
    with ParallelTrainer.resume(checkpoint_dir, corpus) as trainer:
        trainer.train(6)
        print(f"after resume +6 epochs: log likelihood {trainer.log_likelihood():.1f}")
        snapshot = trainer.export_snapshot()

    print(f"snapshot provenance: {snapshot.metadata['resumed_from']}")

    # 4. Serve the merged model: the snapshot drops straight into the
    #    serving stack from the model-serving subsystem.
    server = TopicServer(InferenceEngine(snapshot, seed=SEED))
    queries = [corpus.document_words(d) for d in range(4)]
    theta = server.infer_batch(queries)
    for row, proportions in enumerate(theta):
        top = np.argsort(proportions)[::-1][:3]
        formatted = ", ".join(f"topic {t}: {proportions[t]:.2f}" for t in top)
        print(f"  doc {row}: {formatted}")
    print("\n" + server.stats().summary())


if __name__ == "__main__":
    main()
