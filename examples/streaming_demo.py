"""Streaming demo: ingest → online update → publish → hot-swap → query.

Walks the full `repro.streaming` loop on a synthetic news-like stream:

1. raw documents arrive through a :class:`DocumentStream`, growing the
   vocabulary online;
2. an :class:`OnlineTrainer` folds each mini-batch in with a few slab-kernel
   Gibbs sweeps over a sliding window, ageing old data out with count decay;
3. every batch, the refreshed model is published to a versioned
   :class:`ModelRegistry`;
4. a :class:`TopicServer` follows the registry — queries keep flowing while
   new versions are hot-swapped in, and a bad version can be rolled back.

Run with::

    python examples/streaming_demo.py
"""

import numpy as np

from repro.corpus import load_preset
from repro.serving import InferenceEngine, TopicServer
from repro.streaming import (
    DocumentStream,
    ModelRegistry,
    OnlineTrainer,
    StreamingPipeline,
)


def main() -> None:
    # A synthetic NYTimes-like corpus stands in for the live traffic; we
    # replay its documents as raw token lists, exactly what a feed delivers.
    source = load_preset("nytimes_like", scale=0.6, seed=0)
    arriving, queries_pool = source.split(train_fraction=0.85, seed=1)

    def raw(corpus, d):
        return [corpus.vocabulary.word(w) for w in corpus.document_words(d)]

    # 1-3. Ingestion, online training and publishing, wired by the pipeline.
    trainer = OnlineTrainer(
        num_topics=20, window_docs=400, sweeps_per_batch=3, decay=0.999, seed=0
    )
    registry = ModelRegistry(retain=3)
    pipeline = StreamingPipeline(trainer, registry, publish_every=1)
    stream = DocumentStream(trainer.corpus.vocabulary, batch_docs=100)

    print(f"Streaming {arriving.num_documents} documents in batches of 100...\n")
    server = None
    queries = [raw(queries_pool, d) for d in range(8)]
    for batch in stream.batches(
        raw(arriving, d) for d in range(arriving.num_documents)
    ):
        report = pipeline.ingest(batch)
        update = report.update
        # 4. Bring a server up after the first publish, then query it while
        #    every later batch hot-swaps a fresh version underneath it.
        if server is None:
            server = TopicServer.from_registry(registry, seed=0)
            pipeline.server = server
        theta = server.infer_batch(queries)
        top_topic = int(np.bincount(theta.argmax(axis=1)).argmax())
        latency = (
            f"{report.ingest_to_servable_seconds * 1e3:6.1f} ms to servable"
            if report.ingest_to_servable_seconds is not None
            else "servable latency n/a (server attached after publish)"
        )
        print(
            f"batch {update.batch_index}: +{update.documents_added} docs, "
            f"V={update.vocabulary_size}, window={update.window_documents}, "
            f"v{report.published.version} published, {latency}, "
            f"queries OK (modal topic {top_topic})"
        )

    stats = server.stats()
    print(f"\nServer over the whole stream:\n{stats.summary()}")
    print(f"\nRegistry: retained versions {registry.versions()}, "
          f"current v{registry.current_version}")

    # Rollback: repoint serving at the previous version without retraining.
    previous = registry.rollback()
    server.infer_batch(queries)
    print(f"Rolled back to v{previous.version}; server now serves "
          f"v{server.served_version}")

    # The online model is a first-class snapshot: score held-out documents.
    engine = InferenceEngine(trainer.export_snapshot(), seed=0)
    held_docs = [raw(queries_pool, d) for d in range(queries_pool.num_documents)]
    print(f"Held-out perplexity of the online model: "
          f"{engine.held_out_perplexity(held_docs):.1f}")


if __name__ == "__main__":
    main()
