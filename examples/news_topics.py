"""Topic modelling on raw news-like text: WarpLDA versus LightLDA.

This example exercises the text path of the library (tokeniser -> vocabulary
-> corpus), trains WarpLDA and LightLDA for the same wall-clock-ish budget,
and compares the discovered topics and convergence — the single-machine
comparison the paper's Fig. 5 makes at scale.

Run with::

    python examples/news_topics.py
"""

import numpy as np

from repro import WarpLDA
from repro.corpus import Corpus, load_preset
from repro.evaluation import ConvergenceTracker, held_out_perplexity, top_words, topic_coherence
from repro.samplers import LightLDASampler

# A handful of tiny hand-written "articles" per theme, used to seed a larger
# synthetic collection so the example runs in seconds but still produces
# human-readable topics.
ARTICLE_TEMPLATES = {
    "technology": "phone chip software update app battery screen device network data",
    "sports": "team game season player coach score win league match championship",
    "finance": "market stock price investor bank rate economy trade profit growth",
    "science": "study research cell gene experiment data theory energy climate model",
}


def build_text_corpus(num_documents: int = 300, words_per_document: int = 60, seed: int = 0) -> Corpus:
    """Generate simple themed articles and tokenise them."""
    rng = np.random.default_rng(seed)
    themes = list(ARTICLE_TEMPLATES)
    texts = []
    for _ in range(num_documents):
        theme = themes[int(rng.integers(len(themes)))]
        vocabulary = ARTICLE_TEMPLATES[theme].split()
        words = rng.choice(vocabulary, size=words_per_document)
        texts.append(" ".join(words))
    return Corpus.from_texts(texts)


def main() -> None:
    corpus = build_text_corpus()
    train, held_out = corpus.split(0.8, seed=0)
    num_topics = 4

    runs = {}
    warp = WarpLDA(train, num_topics=num_topics, num_mh_steps=2, seed=0)
    runs["WarpLDA"] = (warp, ConvergenceTracker("WarpLDA"), 30)
    light = LightLDASampler(train, num_topics=num_topics, num_mh_steps=2, seed=0)
    runs["LightLDA"] = (light, ConvergenceTracker("LightLDA"), 10)

    for name, (model, tracker, iterations) in runs.items():
        model.fit(iterations, tracker=tracker, evaluate_every=max(iterations // 5, 1))
        perplexity = held_out_perplexity(held_out, model.phi(), alpha=50.0 / num_topics)
        coherence = topic_coherence(model.phi(), train, num_words=5).mean()
        final = tracker.records[-1]
        print(f"\n=== {name} ===")
        print(f"  iterations           : {final.iteration}")
        print(f"  wall-clock seconds   : {final.elapsed_seconds:.2f}")
        print(f"  log joint likelihood : {final.log_likelihood:.1f}")
        print(f"  held-out perplexity  : {perplexity:.1f}")
        print(f"  mean UMass coherence : {coherence:.2f}")
        for topic_index, words in enumerate(top_words(model.phi(), corpus.vocabulary, 6)):
            print(f"  topic {topic_index}: {' '.join(words)}")


if __name__ == "__main__":
    main()
