"""End-to-end serving demo: train, snapshot, reload, infer, serve.

Run with::

    python examples/serving_demo.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import WarpLDA
from repro.corpus import load_preset
from repro.serving import InferenceEngine, ModelSnapshot, TopicServer


def main() -> None:
    # 1. Train on a synthetic NYTimes-like corpus, holding out 20% of it.
    corpus = load_preset("nytimes_like", scale=0.2, seed=0)
    train, unseen = corpus.split(train_fraction=0.8, seed=1)
    print(f"Training on {train.num_documents} documents "
          f"({train.num_tokens} tokens), holding out {unseen.num_documents}")
    model = WarpLDA(train, num_topics=20, num_mh_steps=2, seed=0).fit(30)

    # 2. Freeze the model into a snapshot and round-trip it through disk —
    #    this is the artefact a serving fleet would load.
    snapshot = model.export_snapshot()
    with tempfile.TemporaryDirectory() as tmp:
        path = snapshot.save(Path(tmp) / "warplda-news")
        print(f"\nSaved snapshot to {path.name} (+ JSON sidecar)")
        snapshot = ModelSnapshot.load(path)
    print(f"Reloaded: {snapshot!r}")

    # 3. Batched inference for unseen documents, both strategies.
    documents = [unseen.document_words(i) for i in range(unseen.num_documents)]
    em_engine = InferenceEngine(snapshot, strategy="em")
    mh_engine = InferenceEngine(snapshot, strategy="mh", seed=0)
    theta_em = em_engine.infer_ids(documents)
    theta_mh = mh_engine.infer_ids(documents)
    agreement = np.mean(theta_em.argmax(axis=1) == theta_mh.argmax(axis=1))
    print(f"\nInferred θ for {len(documents)} unseen documents; "
          f"EM and MH fold-in agree on the top topic for {agreement:.0%} of them")

    # 4. Raw-text requests: OOV tokens are dropped against the frozen
    #    vocabulary, an empty/all-OOV document falls back to the prior mean.
    vocab = snapshot.vocabulary
    tokens = [vocab.word(int(w)) for w in documents[0][:50]]
    theta_text = em_engine.infer_tokens([tokens, ["totally", "unseen", "words"]])
    print(f"Raw-text request: top topic {int(theta_text[0].argmax())}; "
          f"all-OOV request falls back to prior mean "
          f"(max θ = {theta_text[1].max():.3f})")

    # 5. Serve repeated traffic through the micro-batching server.
    server = TopicServer(em_engine, max_batch_size=32, cache_capacity=512)
    rng = np.random.default_rng(2)
    for _ in range(20):
        batch = [documents[int(i)] for i in rng.integers(len(documents), size=50)]
        server.infer_batch(batch)
    print("\nTopicServer statistics after 1000 requests:")
    print(server.stats().summary())


if __name__ == "__main__":
    main()
