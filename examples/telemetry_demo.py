"""Watch a training run from the inside: repro.obs end to end.

Trains the same spec twice — once plain, once with telemetry — to show the
three guarantees of the observability layer:

1. the trace (`/tmp/telemetry_demo.jsonl`) holds the nested span tree
   (epoch → shard → sweep → word_phase/doc_phase) plus point-in-time events;
2. the metrics digest holds exact counters, deterministic histogram
   percentiles and the per-sweep trajectories (tokens/s, MH acceptance);
3. instrumentation never changes the model — both runs are bit-identical.

Run with:  PYTHONPATH=src python examples/telemetry_demo.py
"""

import json
from collections import Counter

import numpy as np

from repro.api import LDA, ModelSpec
from repro.corpus import load_preset
from repro.obs import render_report

TRACE = "/tmp/telemetry_demo.jsonl"

corpus = load_preset("nytimes_like", scale=0.05, seed=0)
base = dict(
    num_topics=8,
    algorithm="warplda",
    seed=0,
    backend="parallel",
    backend_options={"num_workers": 2, "backend": "inline"},
)

# --- instrumented run: just set the telemetry knob on the spec ----------- #
model = LDA(ModelSpec(telemetry=TRACE, **base)).fit(corpus, num_iterations=4)
session = model.telemetry

# The metrics registry is live on the session (the JSON digest is written
# next to the trace on close).
print(render_report(session.registry))

digest = session.registry.to_dict()
rates = digest["series"]["mh.doc_proposal.acceptance_rate"]["values"]
print(f"doc-proposal acceptance per sweep: {[round(r, 3) for r in rates]}")
print(f"tokens sampled: {digest['counters']['sampler.tokens_sampled']:,.0f}")

# One call away from a scrape endpoint:
print("\nPrometheus exposition (first 5 lines):")
print("\n".join(session.registry.to_prometheus().splitlines()[:5]))

instrumented_phi = model.export_snapshot().phi
model.close()  # closes the session: flushes the trace + metrics JSON

# --- read the trace back: one JSON object per line ----------------------- #
records = [json.loads(line) for line in open(TRACE, encoding="utf-8")]
spans = [r for r in records if r["type"] == "span"]
print(f"\ntrace: {len(records)} records, span names "
      f"{dict(Counter(s['name'] for s in spans))}")

# Spans are written on close (child lines precede their parent's); rebuild
# the tree from parent/id and show one epoch's subtree.
by_id = {s["id"]: s for s in spans}
for span in spans:
    parents = []
    cursor = span
    while cursor["parent"] is not None:
        cursor = by_id[cursor["parent"]]
        parents.append(cursor["name"])
    if span["name"] == "word_phase" and parents == ["sweep", "shard", "epoch"]:
        print("sample chain: epoch -> shard -> sweep -> word_phase "
              f"({span['seconds'] * 1e3:.2f} ms)")
        break

# --- the guarantee: telemetry never touches the trajectory --------------- #
plain = LDA(ModelSpec(**base)).fit(corpus, num_iterations=4)
np.testing.assert_array_equal(plain.export_snapshot().phi, instrumented_phi)
print("\ninstrumented and plain runs are bit-identical")
