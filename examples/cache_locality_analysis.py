"""Reproduce the paper's cache-locality analysis on a synthetic corpus.

Prints the Table 2 style access-pattern summary and the Table 4 style L3
miss-rate comparison for LightLDA, F+LDA and WarpLDA, using the trace-driven
cache simulator instead of hardware counters.

Run with::

    python examples/cache_locality_analysis.py
"""

from repro.cache import IVY_BRIDGE_HIERARCHY, access_pattern_table, l3_miss_rate_experiment
from repro.corpus import load_preset
from repro.report import format_table


def main() -> None:
    corpus = load_preset("nytimes_like", scale=0.2, seed=0)
    num_topics = 100

    print("Memory hierarchy (paper Table 1):")
    print(format_table(IVY_BRIDGE_HIERARCHY.table_rows()))

    print("\nAccess-pattern summary (paper Table 2):")
    rows = [
        {
            "algorithm": row.algorithm,
            "order": row.visiting_order,
            "random accesses/token": row.random_per_token,
            "measured": round(row.random_per_token_value, 1),
            "randomly accessed memory": row.random_memory_per_doc,
            "bytes": row.random_memory_per_doc_bytes,
        }
        for row in access_pattern_table(corpus, num_topics, seed=0)
    ]
    print(format_table(rows))

    print("\nSimulated L3 behaviour (paper Table 4), M=1:")
    results = l3_miss_rate_experiment(corpus, num_topics, max_tokens=6000, seed=0)
    print(format_table([
        {
            "algorithm": name,
            "L3 miss rate": round(values["l3_miss_rate"], 3),
            "avg latency (cycles)": round(values["avg_latency_cycles"], 1),
        }
        for name, values in results.items()
    ]))


if __name__ == "__main__":
    main()
