"""Corpus substrate: documents, vocabularies, formats and generators.

The paper evaluates on NYTimes and PubMed (UCI bag-of-words format) and on
ClueWeb12 crawls.  Those corpora are not redistributable, so this package
provides

* the data model (:class:`~repro.corpus.corpus.Corpus`,
  :class:`~repro.corpus.corpus.Document`,
  :class:`~repro.corpus.vocabulary.Vocabulary`),
* a reader/writer for the UCI bag-of-words format
  (:mod:`repro.corpus.uci`) so real corpora drop in unchanged,
* a plain-text tokenizer mirroring the paper's ClueWeb12 preprocessing
  (:mod:`repro.corpus.tokenize`), and
* synthetic generators (:mod:`repro.corpus.synthetic`) plus presets calibrated
  to the paper's Table 3 statistics (:mod:`repro.corpus.datasets`).
"""

from repro.corpus.corpus import Corpus, Document
from repro.corpus.datasets import DATASET_PRESETS, DatasetPreset, load_preset
from repro.corpus.stats import CorpusStatistics
from repro.corpus.synthetic import (
    SyntheticCorpusSpec,
    generate_lda_corpus,
    generate_zipf_corpus,
)
from repro.corpus.tokenize import simple_tokenize
from repro.corpus.uci import read_uci_bow, write_uci_bow
from repro.corpus.vocabulary import Vocabulary

__all__ = [
    "Corpus",
    "CorpusStatistics",
    "DATASET_PRESETS",
    "DatasetPreset",
    "Document",
    "SyntheticCorpusSpec",
    "Vocabulary",
    "generate_lda_corpus",
    "generate_zipf_corpus",
    "load_preset",
    "read_uci_bow",
    "simple_tokenize",
    "write_uci_bow",
]
