"""Corpus substrate: documents, vocabularies, formats and generators.

The paper evaluates on NYTimes and PubMed (UCI bag-of-words format) and on
ClueWeb12 crawls.  Those corpora are not redistributable in this repo, so
this package provides

* the data model (:class:`~repro.corpus.corpus.Corpus`,
  :class:`~repro.corpus.corpus.Document`,
  :class:`~repro.corpus.vocabulary.Vocabulary`),
* a reader/writer for the UCI bag-of-words format
  (:mod:`repro.corpus.uci`) so real corpora drop in unchanged — including
  cached, checksummed fetchers for the real UCI NYTimes/PubMed files
  (:mod:`repro.corpus.datasets`, cache root ``$REPRO_DATA_DIR``),
* an on-disk, memory-mapped corpus store (:mod:`repro.corpus.store`) so
  corpora larger than RAM train through the same :class:`Corpus` interface,
* a plain-text tokenizer mirroring the paper's ClueWeb12 preprocessing
  (:mod:`repro.corpus.tokenize`), and
* synthetic generators (:mod:`repro.corpus.synthetic`) plus presets calibrated
  to the paper's Table 3 statistics (:mod:`repro.corpus.datasets`).
"""

from repro.corpus.corpus import Corpus, Document
from repro.corpus.datasets import (
    DATASET_PRESETS,
    DatasetPreset,
    UCI_DATASETS,
    data_dir,
    fetch_uci_dataset,
    load_preset,
    load_uci_dataset,
    uci_dataset_store,
)
from repro.corpus.stats import CorpusStatistics
from repro.corpus.store import (
    MappedCorpus,
    StoreWriter,
    iter_store_documents,
    open_store,
    write_store,
)
from repro.corpus.synthetic import (
    SyntheticCorpusSpec,
    generate_lda_corpus,
    generate_zipf_corpus,
)
from repro.corpus.tokenize import simple_tokenize
from repro.corpus.uci import read_uci_bow, uci_to_store, write_uci_bow
from repro.corpus.vocabulary import Vocabulary

__all__ = [
    "Corpus",
    "CorpusStatistics",
    "DATASET_PRESETS",
    "DatasetPreset",
    "Document",
    "MappedCorpus",
    "StoreWriter",
    "SyntheticCorpusSpec",
    "UCI_DATASETS",
    "Vocabulary",
    "data_dir",
    "fetch_uci_dataset",
    "generate_lda_corpus",
    "generate_zipf_corpus",
    "iter_store_documents",
    "load_preset",
    "load_uci_dataset",
    "open_store",
    "read_uci_bow",
    "simple_tokenize",
    "uci_dataset_store",
    "uci_to_store",
    "write_store",
    "write_uci_bow",
]
