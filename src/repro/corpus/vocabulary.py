"""Bidirectional word ↔ id mapping."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["Vocabulary"]


class Vocabulary:
    """A growable, bidirectional mapping between words and integer ids.

    Ids are dense and assigned in insertion order, which is what every count
    matrix in the library indexes by.

    Examples
    --------
    >>> vocab = Vocabulary()
    >>> vocab.add("apple")
    0
    >>> vocab.add("orange")
    1
    >>> vocab["apple"]
    0
    >>> vocab.word(1)
    'orange'
    """

    __slots__ = ("_word_to_id", "_id_to_word", "_frozen")

    def __init__(self, words: Optional[Iterable[str]] = None):
        self._word_to_id: Dict[str, int] = {}
        self._id_to_word: List[str] = []
        self._frozen = False
        if words is not None:
            for word in words:
                self.add(word)

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of distinct words ``V``."""
        return len(self._id_to_word)

    @property
    def frozen(self) -> bool:
        """Whether :meth:`add` for unseen words is disabled."""
        return self._frozen

    def freeze(self) -> "Vocabulary":
        """Disallow adding new words; lookups of unknown words then raise."""
        self._frozen = True
        return self

    # ------------------------------------------------------------------ #
    def add(self, word: str) -> int:
        """Return the id of ``word``, adding it if unseen (unless frozen)."""
        if not isinstance(word, str):
            raise TypeError(f"word must be a string, got {type(word).__name__}")
        if not word:
            raise ValueError("word must be non-empty")
        existing = self._word_to_id.get(word)
        if existing is not None:
            return existing
        if self._frozen:
            raise KeyError(
                f"vocabulary is frozen: cannot add new word {word!r} "
                f"(size stays {self.size}; encode unseen text with "
                f"on_oov='drop' instead)"
            )
        new_id = len(self._id_to_word)
        self._word_to_id[word] = new_id
        self._id_to_word.append(word)
        return new_id

    def word(self, word_id: int) -> str:
        """Return the word with the given id."""
        if not 0 <= word_id < len(self._id_to_word):
            raise IndexError(f"word id {word_id} out of range [0, {self.size})")
        return self._id_to_word[word_id]

    def words(self) -> List[str]:
        """Return all words in id order (a copy)."""
        return list(self._id_to_word)

    def get(self, word: str, default: Optional[int] = None) -> Optional[int]:
        """Return the id of ``word`` or ``default`` if absent."""
        return self._word_to_id.get(word, default)

    def encode(self, tokens: Iterable[str], on_oov: str = "drop") -> np.ndarray:
        """Map ``tokens`` to word ids, handling out-of-vocabulary tokens.

        Parameters
        ----------
        tokens:
            Tokens of one document, in order.
        on_oov:
            ``"drop"`` (default) silently skips unknown tokens — the standard
            behaviour when folding unseen documents into a frozen model —
            while ``"error"`` raises :class:`KeyError` on the first one and
            ``"add"`` grows the vocabulary with every unseen token (streaming
            ingestion).  ``"add"`` requires an unfrozen vocabulary and fails
            fast otherwise, even when every token happens to be known.

        Returns
        -------
        numpy.ndarray
            The ids of the tokens, in document order (``int64``).

        Notes
        -----
        Ids are append-only: encoding with ``on_oov="add"`` never renumbers
        an existing word, so ids handed out before a snapshot export remain
        valid against the exported (prefix) vocabulary — any id ``>=
        snapshot.vocabulary_size`` is simply a word the snapshot has never
        seen.
        """
        if on_oov not in ("drop", "error", "add"):
            raise ValueError(
                f"on_oov must be 'drop', 'error' or 'add', got {on_oov!r}"
            )
        mapping = self._word_to_id
        if on_oov == "add":
            if self._frozen:
                raise ValueError(
                    "on_oov='add' requires an unfrozen vocabulary; this one "
                    "is frozen (use on_oov='drop' to serve against a frozen "
                    "snapshot vocabulary)"
                )
            ids = [self.add(token) for token in tokens]
        elif on_oov == "error":
            try:
                ids = [mapping[token] for token in tokens]
            except KeyError as exc:
                raise KeyError(f"word {exc.args[0]!r} not in vocabulary") from None
        else:
            ids = [wid for wid in (mapping.get(token) for token in tokens) if wid is not None]
        return np.asarray(ids, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Serialization (used by serving snapshots)
    # ------------------------------------------------------------------ #
    def to_serializable(self) -> Dict[str, Any]:
        """Return a JSON-compatible dict fully describing this vocabulary."""
        return {"words": list(self._id_to_word), "frozen": self._frozen}

    @classmethod
    def from_serializable(cls, data: Dict[str, Any]) -> "Vocabulary":
        """Rebuild a vocabulary from :meth:`to_serializable` output."""
        if "words" not in data:
            raise ValueError("serialized vocabulary must contain a 'words' list")
        vocab = cls(data["words"])
        if data.get("frozen", False):
            vocab.freeze()
        return vocab

    # ------------------------------------------------------------------ #
    def __getitem__(self, word: str) -> int:
        try:
            return self._word_to_id[word]
        except KeyError:
            raise KeyError(f"word {word!r} not in vocabulary") from None

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __len__(self) -> int:
        return len(self._id_to_word)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_word)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._id_to_word == other._id_to_word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary(size={self.size}, frozen={self._frozen})"

    # ------------------------------------------------------------------ #
    @classmethod
    def from_words(cls, words: Sequence[str]) -> "Vocabulary":
        """Build a vocabulary with the given words in order."""
        return cls(words)
