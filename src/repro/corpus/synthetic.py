"""Synthetic corpus generators.

The paper's corpora (NYTimes, PubMed, ClueWeb12) cannot be shipped, so two
generators provide laptop-scale stand-ins:

* :func:`generate_lda_corpus` — draws a corpus from the LDA generative process
  itself.  This is the right workload for *convergence* experiments (Figs 5-8):
  there is genuine topical structure for the samplers to recover, and the
  achievable log likelihood is governed by the planted topics.
* :func:`generate_zipf_corpus` — draws word frequencies from a Zipf
  (power-law) distribution, matching the term-frequency skew of natural
  corpora that drives the paper's partitioning (Fig 4) and cache-locality
  arguments (Sec. 5.2).

Both are parameterised by a :class:`SyntheticCorpusSpec` so the dataset
presets in :mod:`repro.corpus.datasets` can pin down the paper's Table 3
statistics at a reduced scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.corpus.corpus import Corpus, Document
from repro.corpus.vocabulary import Vocabulary
from repro.sampling.rng import RngLike, ensure_rng, seed_from_deprecated_rng

__all__ = [
    "SyntheticCorpusSpec",
    "generate_lda_corpus",
    "generate_zipf_corpus",
]


@dataclass(frozen=True)
class SyntheticCorpusSpec:
    """Size parameters of a synthetic corpus.

    Attributes
    ----------
    num_documents:
        Number of documents ``D``.
    vocabulary_size:
        Number of distinct words ``V``.
    mean_document_length:
        Expected tokens per document ``T/D``; individual lengths are drawn
        from a Poisson around this mean (minimum 1).
    num_topics:
        Number of planted topics for the LDA-generative corpus.
    doc_topic_concentration:
        Dirichlet α of the planted document-topic proportions.
    topic_word_concentration:
        Dirichlet β of the planted topic-word distributions.
    zipf_exponent:
        Power-law exponent of word frequencies for the Zipf generator.
    """

    num_documents: int = 200
    vocabulary_size: int = 500
    mean_document_length: int = 100
    num_topics: int = 20
    doc_topic_concentration: float = 0.1
    topic_word_concentration: float = 0.05
    zipf_exponent: float = 1.07

    def __post_init__(self) -> None:
        if self.num_documents <= 0:
            raise ValueError("num_documents must be positive")
        if self.vocabulary_size <= 1:
            raise ValueError("vocabulary_size must be at least 2")
        if self.mean_document_length <= 0:
            raise ValueError("mean_document_length must be positive")
        if self.num_topics <= 0:
            raise ValueError("num_topics must be positive")
        if self.doc_topic_concentration <= 0 or self.topic_word_concentration <= 0:
            raise ValueError("Dirichlet concentrations must be positive")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")


def _document_lengths(spec: SyntheticCorpusSpec, rng: np.random.Generator) -> np.ndarray:
    lengths = rng.poisson(spec.mean_document_length, size=spec.num_documents)
    return np.maximum(lengths, 1).astype(np.int64)


def _make_vocabulary(size: int) -> Vocabulary:
    return Vocabulary(f"w{i}" for i in range(size))


def generate_lda_corpus(
    spec: SyntheticCorpusSpec,
    seed: RngLike = None,
    return_truth: bool = False,
    *,
    rng: RngLike = None,
) -> Corpus | Tuple[Corpus, np.ndarray, np.ndarray]:
    """Draw a corpus from the LDA generative process of Sec. 2.1.

    Parameters
    ----------
    spec:
        Size and concentration parameters.
    seed:
        Seed or generator (the samplers' convention).
    return_truth:
        If true, also return the planted ``Theta`` (D x K) and ``Phi`` (K x V)
        matrices, useful for model-recovery tests.
    rng:
        Deprecated alias for ``seed``.
    """
    seed = seed_from_deprecated_rng(seed, rng, "generate_lda_corpus")
    rng = ensure_rng(seed)
    topics = rng.dirichlet(
        np.full(spec.vocabulary_size, spec.topic_word_concentration),
        size=spec.num_topics,
    )
    proportions = rng.dirichlet(
        np.full(spec.num_topics, spec.doc_topic_concentration),
        size=spec.num_documents,
    )
    lengths = _document_lengths(spec, rng)

    documents = []
    for doc_index in range(spec.num_documents):
        length = int(lengths[doc_index])
        assignments = rng.choice(spec.num_topics, size=length, p=proportions[doc_index])
        words = np.empty(length, dtype=np.int64)
        # Draw words topic-by-topic so each document needs only K categorical
        # draws of vectors rather than L_d independent choices.
        for topic in np.unique(assignments):
            mask = assignments == topic
            words[mask] = rng.choice(
                spec.vocabulary_size, size=int(mask.sum()), p=topics[topic]
            )
        documents.append(Document(words))

    corpus = Corpus(documents, _make_vocabulary(spec.vocabulary_size))
    if return_truth:
        return corpus, proportions, topics
    return corpus


def generate_zipf_corpus(
    spec: SyntheticCorpusSpec,
    seed: RngLike = None,
    *,
    rng: RngLike = None,
) -> Corpus:
    """Draw a corpus whose word frequencies follow a Zipf power law.

    Word ``w`` (0-based rank) has probability ``∝ (w + 1)^(-s)`` with
    ``s = spec.zipf_exponent``; documents are filled independently.  There is
    no topical structure — this workload exists to stress partitioning and
    cache behaviour with realistic frequency skew.  ``rng`` is the deprecated
    alias for ``seed``.
    """
    seed = seed_from_deprecated_rng(seed, rng, "generate_zipf_corpus")
    rng = ensure_rng(seed)
    ranks = np.arange(1, spec.vocabulary_size + 1, dtype=np.float64)
    word_probabilities = ranks ** (-spec.zipf_exponent)
    word_probabilities /= word_probabilities.sum()
    lengths = _document_lengths(spec, rng)

    documents = []
    for length in lengths:
        words = rng.choice(spec.vocabulary_size, size=int(length), p=word_probabilities)
        documents.append(Document(words.astype(np.int64)))
    return Corpus(documents, _make_vocabulary(spec.vocabulary_size))
