"""On-disk token-major corpus store: corpora bigger than RAM.

A *corpus store* is a directory holding the exact arrays a
:class:`~repro.corpus.corpus.Corpus` computes in RAM — the flat token-major
``token_words`` / ``token_docs`` arrays, the CSR ``doc_offsets``, the CSC view
(``word_order`` permutation + ``word_offsets``) — each as a plain ``.npy``
file, plus a JSON manifest, the vocabulary, and an optional slab-bucket
sidecar (the padded index matrices of :mod:`repro.kernels.buckets`,
precomputed so the kernels never materialise them in RAM).

Layout of ``<store>/``::

    store.json            manifest (format, version, D/T/V, bucket bands)
    vocab.json            Vocabulary.to_serializable()
    token_words.npy       (T,) int64 — word id of every token, document order
    doc_offsets.npy       (D+1,) int64 — CSR offsets
    token_docs.npy        (T,) int64 — document index of every token
    word_order.npy        (T,) int64 — stable permutation grouping by word
    word_offsets.npy      (V+1,) int64 — CSC offsets into word_order
    buckets/<axis>_<band>_{rows,tokens,mask,lengths}.npy   slab sidecar

Two halves:

* :class:`StoreWriter` builds a store **without ever holding all tokens at
  once**: documents are appended to a raw spill file, and ``finalize()``
  derives every array in bounded-memory chunked passes (the ``word_order``
  permutation via a chunked *stable counting sort* that is element-identical
  to the in-RAM ``np.argsort(kind="stable")``).
* :class:`MappedCorpus` opens a store through ``np.load(..., mmap_mode="r")``
  and satisfies the full :class:`~repro.corpus.corpus.Corpus` interface, so
  samplers, slab kernels, evaluation and the ``ParallelTrainer`` run
  unchanged — bit-exactly — against corpora that never fully materialise.
  Its :meth:`~MappedCorpus.slice` views pickle as ``(path, start, stop)``,
  so parallel workers open only their shard of the store instead of
  receiving a full corpus copy over the process boundary.

The memory story, precisely: mapped arrays are clean file-backed pages the
OS can always evict, so residency tracks the *touched working set*, not the
corpus size.  Opening a store is O(V) heap (word frequencies); replaying it
through :func:`iter_store_documents` uses bounded ``np.fromfile`` reads and
stays flat in corpus size; a full training sweep touches every token page
but holds only O(T_shard) heap for the per-shard derived indices.
"""

from __future__ import annotations

import collections.abc
import json
import os
import shutil
from array import array
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np
from numpy.lib.format import open_memmap

from repro.corpus.corpus import Corpus, Document
from repro.corpus.vocabulary import Vocabulary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.buckets import SlabBucket

__all__ = [
    "MappedCorpus",
    "StoreWriter",
    "iter_store_documents",
    "open_store",
    "write_store",
]

PathLike = Union[str, Path]

MANIFEST_NAME = "store.json"
FORMAT_NAME = "repro-corpus-store"
FORMAT_VERSION = 1

#: Tokens handled per chunked pass (32 MiB of int64): the heap high-water of
#: every writer pass and of :func:`iter_store_documents` reads.
DEFAULT_CHUNK_TOKENS = 1 << 22

_ARRAY_FILES = (
    "token_words",
    "doc_offsets",
    "token_docs",
    "word_order",
    "word_offsets",
)


def _mapped(path: Path) -> np.ndarray:
    """Open one store array memory-mapped (never materialised)."""
    return np.load(path, mmap_mode="r")


# --------------------------------------------------------------------- #
# Writer
# --------------------------------------------------------------------- #
class StoreWriter:
    """Build a corpus store by appending documents, then ``finalize()``.

    The writer never holds the corpus: appended tokens go straight to a raw
    spill file (``tokens.bin.tmp``), and only the per-document lengths —
    O(D) — stay in memory.  ``finalize()`` then derives every store array in
    chunked passes of at most ``chunk_tokens`` tokens each.

    Use as a context manager for crash hygiene: leaving the ``with`` block
    without a successful ``finalize()`` aborts and removes the partial spill
    (an unfinished directory never gains a manifest, so ``open_store``
    refuses it).

    Parameters
    ----------
    directory:
        Target store directory.  Must not already contain a store unless
        ``overwrite=True`` (which removes the existing one).
    chunk_tokens:
        Tokens per chunked pass; bounds the writer's heap high-water.
    overwrite:
        Replace an existing store directory instead of refusing.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        chunk_tokens: int = DEFAULT_CHUNK_TOKENS,
        overwrite: bool = False,
    ) -> None:
        if chunk_tokens <= 0:
            raise ValueError(f"chunk_tokens must be positive, got {chunk_tokens}")
        self.directory = Path(directory)
        if self.directory.exists():
            if (self.directory / MANIFEST_NAME).exists() and not overwrite:
                raise FileExistsError(
                    f"{self.directory} already holds a corpus store "
                    f"(pass overwrite=True to replace it)"
                )
            if overwrite:
                shutil.rmtree(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.chunk_tokens = int(chunk_tokens)
        self._spill_path = self.directory / "tokens.bin.tmp"
        self._spill = open(self._spill_path, "wb")
        self._lengths = array("q")
        self._max_word = -1
        self._num_tokens = 0
        self._finalized = False

    # ------------------------------------------------------------------ #
    @property
    def num_documents(self) -> int:
        """Documents appended so far."""
        return len(self._lengths)

    @property
    def num_tokens(self) -> int:
        """Tokens appended so far."""
        return self._num_tokens

    def append_document(self, word_ids: Union[np.ndarray, Sequence[int]]) -> None:
        """Append one document's word ids (may be empty)."""
        ids = np.ascontiguousarray(word_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ValueError(f"word_ids must be 1-D, got shape {ids.shape}")
        if ids.size:
            low = int(ids.min())
            if low < 0:
                raise ValueError("word ids must be non-negative")
            self._max_word = max(self._max_word, int(ids.max()))
        ids.tofile(self._spill)
        self._lengths.append(int(ids.size))
        self._num_tokens += int(ids.size)

    def append_tokens(self, flat_words: np.ndarray, lengths: np.ndarray) -> None:
        """Append a batch of documents given flat tokens plus per-doc lengths."""
        flat = np.ascontiguousarray(flat_words, dtype=np.int64)
        lens = np.asarray(lengths, dtype=np.int64)
        if flat.ndim != 1 or lens.ndim != 1:
            raise ValueError("flat_words and lengths must be 1-D")
        if int(lens.sum()) != flat.size:
            raise ValueError(
                f"lengths sum to {int(lens.sum())} but {flat.size} tokens given"
            )
        if lens.size and int(lens.min()) < 0:
            raise ValueError("document lengths must be non-negative")
        if flat.size:
            low = int(flat.min())
            if low < 0:
                raise ValueError("word ids must be non-negative")
            self._max_word = max(self._max_word, int(flat.max()))
        flat.tofile(self._spill)
        self._lengths.extend(int(n) for n in lens)
        self._num_tokens += int(flat.size)

    # ------------------------------------------------------------------ #
    def finalize(
        self,
        vocabulary: Optional[Vocabulary] = None,
        *,
        buckets: bool = True,
    ) -> Path:
        """Derive every store array in chunked passes and write the manifest.

        Parameters
        ----------
        vocabulary:
            The corpus vocabulary; omitted, synthetic names ``w0..w{V-1}``
            cover the observed word ids (matching ``read_uci_bow``).
        buckets:
            Also write the slab-bucket sidecar (both axes), so mapped
            training never builds bucket matrices in RAM.
        """
        if self._finalized:
            raise RuntimeError("store already finalized")
        self._spill.close()
        num_docs = len(self._lengths)
        if num_docs == 0:
            raise ValueError("a corpus store must contain at least one document")
        if self._num_tokens == 0:
            raise ValueError("a corpus store must contain at least one token")
        if vocabulary is None:
            vocabulary = Vocabulary(f"w{i}" for i in range(self._max_word + 1))
        if self._max_word >= vocabulary.size:
            raise ValueError(
                f"word id {self._max_word} out of range for vocabulary of "
                f"size {vocabulary.size}"
            )

        lengths = np.frombuffer(self._lengths, dtype=np.int64)
        doc_offsets = np.zeros(num_docs + 1, dtype=np.int64)
        np.cumsum(lengths, out=doc_offsets[1:])
        total = int(doc_offsets[-1])
        np.save(self.directory / "doc_offsets.npy", doc_offsets)

        self._copy_spill_to_npy(total)
        word_offsets = self._write_word_offsets(total, vocabulary.size)
        self._write_word_order(total, word_offsets)
        self._write_token_docs(doc_offsets)

        vocab_path = self.directory / "vocab.json"
        vocab_path.write_text(
            json.dumps(vocabulary.to_serializable()), encoding="utf-8"
        )

        bucket_bands: Optional[Dict[str, List[int]]] = None
        if buckets:
            bucket_bands = self._write_bucket_sidecar(doc_offsets, word_offsets)

        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "num_documents": num_docs,
            "num_tokens": total,
            "vocabulary_size": vocabulary.size,
            "buckets": bucket_bands,
        }
        tmp = self.directory / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        os.replace(tmp, self.directory / MANIFEST_NAME)
        self._finalized = True
        return self.directory

    def abort(self) -> None:
        """Discard an unfinished store (spill file and handle)."""
        if not self._spill.closed:
            self._spill.close()
        if not self._finalized and self._spill_path.exists():
            self._spill_path.unlink()

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if not self._finalized:
            self.abort()

    # ------------------------------------------------------------------ #
    # Chunked passes (each bounded by ``chunk_tokens`` heap)
    # ------------------------------------------------------------------ #
    def _token_chunks(self, total: int) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(start, chunk)`` over the finalized token file."""
        path = self.directory / "token_words.npy"
        offset = int(_mapped(path).offset)  # npy header size
        for start in range(0, total, self.chunk_tokens):
            count = min(self.chunk_tokens, total - start)
            yield start, np.fromfile(
                path, dtype=np.int64, count=count, offset=offset + 8 * start
            )

    def _copy_spill_to_npy(self, total: int) -> None:
        out = open_memmap(
            self.directory / "token_words.npy",
            mode="w+",
            dtype=np.int64,
            shape=(total,),
        )
        for start in range(0, total, self.chunk_tokens):
            count = min(self.chunk_tokens, total - start)
            out[start : start + count] = np.fromfile(
                self._spill_path, dtype=np.int64, count=count, offset=8 * start
            )
        out.flush()
        del out
        self._spill_path.unlink()

    def _write_word_offsets(self, total: int, vocab_size: int) -> np.ndarray:
        counts = np.zeros(vocab_size, dtype=np.int64)
        for _, chunk in self._token_chunks(total):
            counts += np.bincount(chunk, minlength=vocab_size)
        word_offsets = np.zeros(vocab_size + 1, dtype=np.int64)
        np.cumsum(counts, out=word_offsets[1:])
        np.save(self.directory / "word_offsets.npy", word_offsets)
        return word_offsets

    def _write_word_order(self, total: int, word_offsets: np.ndarray) -> None:
        """Chunked stable counting sort, element-identical to the in-RAM
        ``np.argsort(token_words, kind="stable")``.

        Chunks arrive in ascending token order; within a chunk a stable
        argsort ranks each word's tokens in ascending index order; the
        per-word cursor adds the count of that word's tokens in earlier
        chunks.  Destination = cursor + within-chunk rank reproduces the
        global stable order exactly.
        """
        out = open_memmap(
            self.directory / "word_order.npy",
            mode="w+",
            dtype=np.int64,
            shape=(total,),
        )
        cursors = word_offsets[:-1].copy()
        for start, chunk in self._token_chunks(total):
            order = np.argsort(chunk, kind="stable")
            sorted_words = chunk[order]
            unique, seg_starts, seg_counts = np.unique(
                sorted_words, return_index=True, return_counts=True
            )
            base = np.repeat(cursors[unique], seg_counts)
            within = np.arange(chunk.size, dtype=np.int64) - np.repeat(
                seg_starts, seg_counts
            )
            out[base + within] = start + order
            cursors[unique] += seg_counts
        out.flush()
        del out

    def _write_token_docs(self, doc_offsets: np.ndarray) -> None:
        total = int(doc_offsets[-1])
        num_docs = doc_offsets.size - 1
        out = open_memmap(
            self.directory / "token_docs.npy",
            mode="w+",
            dtype=np.int64,
            shape=(total,),
        )
        doc = 0
        while doc < num_docs:
            target = doc_offsets[doc] + self.chunk_tokens
            stop = int(np.searchsorted(doc_offsets, target, side="right")) - 1
            stop = min(max(stop, doc + 1), num_docs)
            out[doc_offsets[doc] : doc_offsets[stop]] = np.repeat(
                np.arange(doc, stop, dtype=np.int64),
                np.diff(doc_offsets[doc : stop + 1]),
            )
            doc = stop
        out.flush()
        del out

    def _write_bucket_sidecar(
        self, doc_offsets: np.ndarray, word_offsets: np.ndarray
    ) -> Dict[str, List[int]]:
        """Write per-band slab matrices, replicating ``build_buckets`` exactly
        (same bands, same row order, same padding formula) in row chunks."""
        bucket_dir = self.directory / "buckets"
        bucket_dir.mkdir(exist_ok=True)
        word_order = _mapped(self.directory / "word_order.npy")
        bands_by_axis: Dict[str, List[int]] = {}
        for axis, offsets, order in (
            ("doc", doc_offsets, None),
            ("word", word_offsets, word_order),
        ):
            bands_by_axis[axis] = []
            lengths = np.diff(offsets)
            nonempty = np.flatnonzero(lengths)
            if nonempty.size == 0:
                continue
            bands = np.ceil(
                np.log2(np.maximum(lengths[nonempty], 1))
            ).astype(np.int64)
            bands[lengths[nonempty] == 1] = 0
            for band in np.unique(bands):
                rows = nonempty[bands == band]
                slab_len = 1 << int(band)
                row_lengths = lengths[rows]
                prefix = bucket_dir / f"{axis}_{int(band)}"
                np.save(f"{prefix}_rows.npy", rows)
                np.save(f"{prefix}_lengths.npy", row_lengths)
                tokens = open_memmap(
                    Path(f"{prefix}_tokens.npy"),
                    mode="w+",
                    dtype=np.int64,
                    shape=(rows.size, slab_len),
                )
                mask = open_memmap(
                    Path(f"{prefix}_mask.npy"),
                    mode="w+",
                    dtype=bool,
                    shape=(rows.size, slab_len),
                )
                column = np.arange(slab_len, dtype=np.int64)[None, :]
                rows_per_chunk = max(1, self.chunk_tokens // slab_len)
                for start in range(0, rows.size, rows_per_chunk):
                    stop = min(start + rows_per_chunk, rows.size)
                    chunk_rows = rows[start:stop]
                    chunk_lengths = row_lengths[start:stop]
                    positions = offsets[chunk_rows][:, None] + np.minimum(
                        column, (chunk_lengths - 1)[:, None]
                    )
                    tokens[start:stop] = (
                        positions if order is None else order[positions]
                    )
                    mask[start:stop] = column < chunk_lengths[:, None]
                tokens.flush()
                mask.flush()
                del tokens, mask
                bands_by_axis[axis].append(int(band))
        return bands_by_axis


# --------------------------------------------------------------------- #
# Lazy document sequence
# --------------------------------------------------------------------- #
class _LazyDocuments(collections.abc.Sequence):
    """A read-only document sequence over mapped token arrays.

    Supports ``len``, integer indexing (builds a :class:`Document` view on
    demand), step-1 slicing (returns a range-restricted lazy view — the form
    ``Corpus.slice`` uses), and iteration, so every inherited ``Corpus``
    method works without a resident document list.
    """

    __slots__ = ("_token_words", "_doc_offsets", "_start", "_stop")

    def __init__(
        self,
        token_words: np.ndarray,
        doc_offsets: np.ndarray,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> None:
        self._token_words = token_words
        self._doc_offsets = doc_offsets
        self._start = start
        self._stop = doc_offsets.size - 1 if stop is None else stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                raise ValueError("lazy document views support step-1 slices only")
            return _LazyDocuments(
                self._token_words,
                self._doc_offsets,
                self._start + start,
                self._start + stop,
            )
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"document index {index} out of range [0, {len(self)})")
        doc = self._start + index
        lo = int(self._doc_offsets[doc])
        hi = int(self._doc_offsets[doc + 1])
        return Document(np.asarray(self._token_words[lo:hi], dtype=np.int64))

    def __iter__(self) -> Iterator[Document]:
        for index in range(len(self)):
            yield self[index]


# --------------------------------------------------------------------- #
# Mapped corpus
# --------------------------------------------------------------------- #
class MappedCorpus(Corpus):
    """A :class:`Corpus` whose arrays live on disk, opened memory-mapped.

    Every array the in-RAM constructor derives is read straight from the
    store (element-identical by the writer's construction), so nothing
    O(tokens) is ever allocated on open — only the O(V) word-frequency
    vector.  Documents are materialised lazily, one at a time, on access.

    When the store carries a bucket sidecar, the slab-bucket cache is
    pre-planted with memory-mapped :class:`~repro.kernels.buckets.SlabBucket`
    matrices, so kernel training reads bucket pages from disk instead of
    building corpus-sized index matrices in RAM.

    Pickling round-trips as the store *path* (workers reopen their own
    maps); :meth:`slice` views pickle as ``(path, start, stop)``, which is
    what makes ``ParallelTrainer`` shard hand-off O(1) in corpus size.
    """

    def __init__(self, directory: PathLike) -> None:
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise FileNotFoundError(
                f"{directory} is not a corpus store (missing {MANIFEST_NAME}; "
                f"was the writer finalized?)"
            )
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("format") != FORMAT_NAME:
            raise ValueError(
                f"{manifest_path}: not a {FORMAT_NAME} manifest "
                f"(format={manifest.get('format')!r})"
            )
        version = manifest.get("version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{manifest_path}: unsupported store version {version!r} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        self._store_path = directory
        self._manifest = manifest
        vocab_data = json.loads((directory / "vocab.json").read_text("utf-8"))
        self._vocabulary = Vocabulary.from_serializable(vocab_data)

        self._token_words = _mapped(directory / "token_words.npy")
        self._doc_offsets = _mapped(directory / "doc_offsets.npy")
        self._token_docs = _mapped(directory / "token_docs.npy")
        self._word_order = _mapped(directory / "word_order.npy")
        self._word_offsets = _mapped(directory / "word_offsets.npy")
        self._validate_shapes()
        self._word_frequencies = np.asarray(
            np.diff(self._word_offsets), dtype=np.int64
        )
        self._documents = _LazyDocuments(self._token_words, self._doc_offsets)

        bands = manifest.get("buckets")
        if bands:
            self.__dict__["_slab_bucket_cache"] = {
                axis: _load_bucket_axis(directory, axis, band_list)
                for axis, band_list in bands.items()
            }

    def _validate_shapes(self) -> None:
        m = self._manifest
        expected = {
            "token_words": (int(m["num_tokens"]),),
            "doc_offsets": (int(m["num_documents"]) + 1,),
            "token_docs": (int(m["num_tokens"]),),
            "word_order": (int(m["num_tokens"]),),
            "word_offsets": (int(m["vocabulary_size"]) + 1,),
        }
        arrays = {
            "token_words": self._token_words,
            "doc_offsets": self._doc_offsets,
            "token_docs": self._token_docs,
            "word_order": self._word_order,
            "word_offsets": self._word_offsets,
        }
        for name, shape in expected.items():
            if arrays[name].shape != shape:
                raise ValueError(
                    f"{self._store_path}/{name}.npy: shape {arrays[name].shape} "
                    f"does not match manifest {shape} — store is corrupt"
                )
        if self._vocabulary.size != int(m["vocabulary_size"]):
            raise ValueError(
                f"{self._store_path}/vocab.json: {self._vocabulary.size} words "
                f"but manifest says {m['vocabulary_size']} — store is corrupt"
            )

    # ------------------------------------------------------------------ #
    @property
    def store_path(self) -> Path:
        """The store directory this corpus maps."""
        return self._store_path

    def materialize(self) -> Corpus:
        """Copy the store into a plain in-RAM :class:`Corpus` (small stores
        and equivalence tests only — O(tokens) heap by definition)."""
        offsets = np.asarray(self._doc_offsets)
        documents = [
            Document(np.array(self._token_words[offsets[d] : offsets[d + 1]]))
            for d in range(self.num_documents)
        ]
        return Corpus(documents, self._vocabulary)

    def slice(self, start: int, stop: int) -> Corpus:
        """A shard view over documents ``[start, stop)``.

        The token array stays a disk-backed view; the derived per-shard
        indices (``token_docs``, ``word_order``) are computed in RAM —
        O(tokens in the shard), the working set a shard's worker needs
        anyway.  The view pickles as ``(store path, start, stop)``.
        """
        if not 0 <= start <= stop <= self.num_documents:
            raise IndexError(
                f"invalid document range [{start}, {stop}) for corpus with "
                f"{self.num_documents} documents"
            )
        view = _MappedSlice.__new__(_MappedSlice)
        view._store_path = self._store_path
        view._slice_range = (start, stop)
        view._vocabulary = self._vocabulary
        view._documents = self._documents[start:stop]
        base = int(self._doc_offsets[start])
        view._doc_offsets = np.asarray(self._doc_offsets[start : stop + 1]) - base
        view._token_words = self._token_words[base : int(self._doc_offsets[stop])]
        view._init_derived()
        return view

    def __reduce__(self) -> Tuple[Any, ...]:
        return (open_store, (str(self._store_path),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappedCorpus(path={str(self._store_path)!r}, "
            f"documents={self.num_documents}, tokens={self.num_tokens}, "
            f"vocabulary={self.vocabulary_size})"
        )


class _MappedSlice(Corpus):
    """A shard view of a :class:`MappedCorpus` that pickles by reference.

    Crossing a process boundary costs three scalars — the store path and the
    document range — instead of the shard's token data; the receiving worker
    reopens the store and maps only its own range.
    """

    _store_path: Path
    _slice_range: Tuple[int, int]

    def __reduce__(self) -> Tuple[Any, ...]:
        start, stop = self._slice_range
        return (_open_store_slice, (str(self._store_path), start, stop))


def _open_store_slice(path: str, start: int, stop: int) -> Corpus:
    """Unpickle hook for :class:`_MappedSlice` (module-level for spawn)."""
    return open_store(path).slice(start, stop)


def _load_bucket_axis(
    directory: Path, axis: str, bands: Sequence[int]
) -> List["SlabBucket"]:
    from repro.kernels.buckets import SlabBucket

    buckets: List[SlabBucket] = []
    for band in bands:
        prefix = directory / "buckets" / f"{axis}_{int(band)}"
        buckets.append(
            SlabBucket(
                rows=_mapped(Path(f"{prefix}_rows.npy")),
                tokens=_mapped(Path(f"{prefix}_tokens.npy")),
                mask=_mapped(Path(f"{prefix}_mask.npy")),
                lengths=_mapped(Path(f"{prefix}_lengths.npy")),
            )
        )
    return buckets


# --------------------------------------------------------------------- #
# Module-level conveniences
# --------------------------------------------------------------------- #
def open_store(path: PathLike) -> MappedCorpus:
    """Open a corpus store directory as a :class:`MappedCorpus`."""
    return MappedCorpus(path)


def write_store(
    corpus: Corpus,
    directory: PathLike,
    *,
    buckets: bool = True,
    chunk_tokens: int = DEFAULT_CHUNK_TOKENS,
    overwrite: bool = False,
) -> Path:
    """Persist an existing corpus as a store (chunked; no extra full copy)."""
    offsets = np.asarray(corpus.doc_offsets)
    token_words = corpus.token_words
    num_docs = corpus.num_documents
    with StoreWriter(
        directory, chunk_tokens=chunk_tokens, overwrite=overwrite
    ) as writer:
        doc = 0
        while doc < num_docs:
            target = offsets[doc] + writer.chunk_tokens
            stop = int(np.searchsorted(offsets, target, side="right")) - 1
            stop = min(max(stop, doc + 1), num_docs)
            writer.append_tokens(
                np.asarray(token_words[offsets[doc] : offsets[stop]]),
                np.diff(offsets[doc : stop + 1]),
            )
            doc = stop
        return writer.finalize(corpus.vocabulary, buckets=buckets)


def iter_store_documents(
    store: Union[PathLike, MappedCorpus],
    start: int = 0,
    stop: Optional[int] = None,
    *,
    chunk_tokens: int = DEFAULT_CHUNK_TOKENS,
) -> Iterator[np.ndarray]:
    """Yield per-document word-id arrays via bounded heap reads.

    Unlike iterating ``corpus.documents`` (which pages the memory map into
    residency), this reads ``token_words.npy`` in explicit ``np.fromfile``
    chunks: the heap high-water is one chunk regardless of corpus size,
    which is what keeps replay RSS flat — the property
    ``benchmarks/bench_outofcore.py`` asserts.
    """
    corpus = store if isinstance(store, MappedCorpus) else open_store(store)
    num_docs = corpus.num_documents
    stop = num_docs if stop is None else stop
    if not 0 <= start <= stop <= num_docs:
        raise IndexError(
            f"invalid document range [{start}, {stop}) for corpus with "
            f"{num_docs} documents"
        )
    path = corpus.store_path / "token_words.npy"
    offsets = np.asarray(corpus.doc_offsets)
    byte_offset = int(corpus.token_words.offset)
    doc = start
    while doc < stop:
        target = offsets[doc] + chunk_tokens
        chunk_stop = int(np.searchsorted(offsets, target, side="right")) - 1
        chunk_stop = min(max(chunk_stop, doc + 1), stop)
        base = int(offsets[doc])
        chunk = np.fromfile(
            path,
            dtype=np.int64,
            count=int(offsets[chunk_stop]) - base,
            offset=byte_offset + 8 * base,
        )
        for index in range(doc, chunk_stop):
            yield chunk[offsets[index] - base : offsets[index + 1] - base]
        doc = chunk_stop
