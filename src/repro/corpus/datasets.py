"""Dataset presets calibrated to the paper's Table 3, at laptop scale.

The paper's corpora:

========================  ======  ======  =====  ====
Dataset                   D       T       V      T/D
========================  ======  ======  =====  ====
NYTimes                   300K    100M    102K   332
PubMed                    8.2M    738M    141K   90
ClueWeb12 (subset)        38M     14B     1M     367
ClueWeb12                 639M    236B    1M     378
========================  ======  ======  =====  ====

Pure Python cannot sweep hundreds of millions of documents, so each preset
keeps the *shape* of its dataset — the tokens-per-document ratio and the
relative vocabulary richness — at a configurable ``scale``.  ``scale=1.0``
corresponds to the default laptop-sized stand-in (documented per preset);
the full-size numbers are retained in :attr:`DatasetPreset.paper_statistics`
so the Table 3 bench can print both side by side.
"""

from __future__ import annotations

import hashlib
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Callable, Dict, Optional, Tuple, Union

from repro.corpus.corpus import Corpus
from repro.corpus.synthetic import (
    SyntheticCorpusSpec,
    generate_lda_corpus,
    generate_zipf_corpus,
)
from repro.sampling.rng import RngLike, seed_from_deprecated_rng

__all__ = [
    "DATASET_PRESETS",
    "DatasetPreset",
    "RemoteFile",
    "UCI_DATASETS",
    "UCIDataset",
    "data_dir",
    "fetch_remote",
    "fetch_uci_dataset",
    "load_preset",
    "load_uci_dataset",
    "uci_dataset_store",
]


@dataclass(frozen=True)
class DatasetPreset:
    """A named synthetic stand-in for one of the paper's corpora.

    Attributes
    ----------
    name:
        Preset key, e.g. ``"nytimes_like"``.
    paper_statistics:
        The Table 3 row of the real dataset (D, T, V, T/D).
    base_documents / base_vocabulary / mean_document_length / num_topics:
        Scale-1.0 generation parameters.  ``mean_document_length`` matches the
        real dataset's T/D; documents and vocabulary are scaled down together
        so the D:V ratio is preserved.
    generator:
        ``"lda"`` (topical structure, for convergence runs) or ``"zipf"``
        (frequency skew only, for partitioning / cache runs).
    """

    name: str
    paper_statistics: Dict[str, float]
    base_documents: int
    base_vocabulary: int
    mean_document_length: int
    num_topics: int
    generator: str = "lda"
    zipf_exponent: float = 1.07

    def spec(self, scale: float = 1.0) -> SyntheticCorpusSpec:
        """Return the :class:`SyntheticCorpusSpec` for the given scale."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return SyntheticCorpusSpec(
            num_documents=max(2, int(round(self.base_documents * scale))),
            vocabulary_size=max(10, int(round(self.base_vocabulary * scale))),
            mean_document_length=self.mean_document_length,
            num_topics=self.num_topics,
            zipf_exponent=self.zipf_exponent,
        )

    def generate(
        self, scale: float = 1.0, seed: RngLike = None, *, rng: RngLike = None
    ) -> Corpus:
        """Generate the corpus for this preset at the given scale.

        ``rng`` is the deprecated alias for ``seed``.
        """
        seed = seed_from_deprecated_rng(seed, rng, "DatasetPreset.generate")
        spec = self.spec(scale)
        if self.generator == "lda":
            return generate_lda_corpus(spec, seed=seed)
        if self.generator == "zipf":
            return generate_zipf_corpus(spec, seed=seed)
        raise ValueError(f"unknown generator {self.generator!r}")


DATASET_PRESETS: Dict[str, DatasetPreset] = {
    "nytimes_like": DatasetPreset(
        name="nytimes_like",
        paper_statistics={"D": 300_000, "T": 100_000_000, "V": 102_000, "T/D": 332},
        base_documents=600,
        base_vocabulary=2_000,
        mean_document_length=332,
        num_topics=50,
    ),
    "pubmed_like": DatasetPreset(
        name="pubmed_like",
        paper_statistics={"D": 8_200_000, "T": 738_000_000, "V": 141_000, "T/D": 90},
        base_documents=2_000,
        base_vocabulary=3_000,
        mean_document_length=90,
        num_topics=50,
    ),
    "clueweb_like": DatasetPreset(
        name="clueweb_like",
        paper_statistics={"D": 639_000_000, "T": 236_000_000_000, "V": 1_000_000, "T/D": 378},
        base_documents=1_000,
        base_vocabulary=5_000,
        mean_document_length=378,
        num_topics=100,
        generator="zipf",
    ),
    "clueweb_subset_like": DatasetPreset(
        name="clueweb_subset_like",
        paper_statistics={"D": 38_000_000, "T": 14_000_000_000, "V": 1_000_000, "T/D": 367},
        base_documents=800,
        base_vocabulary=4_000,
        mean_document_length=367,
        num_topics=100,
        generator="zipf",
    ),
}


def load_preset(
    name: str, scale: float = 1.0, seed: RngLike = None, *, rng: RngLike = None
) -> Corpus:
    """Generate the corpus for preset ``name`` at ``scale``.

    ``rng`` is the deprecated alias for ``seed``.

    Raises
    ------
    KeyError
        If ``name`` is not a known preset.
    """
    seed = seed_from_deprecated_rng(seed, rng, "load_preset")
    try:
        preset = DATASET_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_PRESETS))
        raise KeyError(f"unknown dataset preset {name!r}; known presets: {known}") from None
    return preset.generate(scale=scale, seed=seed)


# --------------------------------------------------------------------- #
# Real UCI datasets: cached, checksummed downloads
# --------------------------------------------------------------------- #
#: Environment variable overriding the download cache root.
DATA_DIR_ENV = "REPRO_DATA_DIR"

#: A callable opening a URL and returning a readable binary stream — the
#: injection point the offline tests use in place of ``urllib``.
Opener = Callable[[str], BinaryIO]

_DOWNLOAD_CHUNK = 1 << 20


def data_dir() -> Path:
    """The dataset cache root: ``$REPRO_DATA_DIR`` or ``~/.cache/repro``.

    Resolved at call time, so tests (and batch jobs redirecting large
    downloads to scratch space) can point it anywhere via the environment.
    """
    override = os.environ.get(DATA_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


@dataclass(frozen=True)
class RemoteFile:
    """One cacheable download.

    ``sha256`` pins the expected digest when known.  The UCI repository
    publishes no digests, so the bundled datasets leave it ``None`` and the
    cache falls back to trust-on-first-use: the digest observed at download
    time is recorded in a ``<filename>.sha256`` sidecar and every later
    cache hit is re-verified against it — a truncated or partially written
    file is detected and re-fetched instead of silently parsed.
    """

    filename: str
    url: str
    sha256: Optional[str] = None


@dataclass(frozen=True)
class UCIDataset:
    """One UCI bag-of-words dataset: the docword file plus its vocabulary."""

    name: str
    docword: RemoteFile
    vocab: RemoteFile


_UCI_BASE = (
    "https://archive.ics.uci.edu/ml/machine-learning-databases/bag-of-words/"
)

#: The paper's single-machine corpora (Table 3), as distributed by UCI.
UCI_DATASETS: Dict[str, UCIDataset] = {
    "nytimes": UCIDataset(
        name="nytimes",
        docword=RemoteFile(
            "docword.nytimes.txt.gz", _UCI_BASE + "docword.nytimes.txt.gz"
        ),
        vocab=RemoteFile("vocab.nytimes.txt", _UCI_BASE + "vocab.nytimes.txt"),
    ),
    "pubmed": UCIDataset(
        name="pubmed",
        docword=RemoteFile(
            "docword.pubmed.txt.gz", _UCI_BASE + "docword.pubmed.txt.gz"
        ),
        vocab=RemoteFile("vocab.pubmed.txt", _UCI_BASE + "vocab.pubmed.txt"),
    ),
}


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(_DOWNLOAD_CHUNK), b""):
            digest.update(block)
    return digest.hexdigest()


def _default_opener(url: str) -> BinaryIO:
    import urllib.request

    return urllib.request.urlopen(url, timeout=60)  # noqa: S310 - https only


def fetch_remote(
    remote: RemoteFile,
    directory: Optional[Union[str, Path]] = None,
    *,
    opener: Optional[Opener] = None,
    force: bool = False,
) -> Path:
    """Download ``remote`` into the cache (or verify the cached copy).

    The download streams to ``<filename>.part`` and is renamed into place
    only after the checksum is settled, so a crash mid-download never leaves
    a file the next run would mistake for complete; a stale ``.part`` from
    such a crash is simply overwritten.  A cached file that fails
    verification (pinned ``sha256`` or the trust-on-first-use sidecar) is
    re-downloaded, not trusted.

    Parameters
    ----------
    remote:
        What to fetch.
    directory:
        Cache directory (default :func:`data_dir`).
    opener:
        URL opener returning a binary stream; injectable for offline tests.
    force:
        Re-download even if the cached copy verifies.
    """
    directory = Path(directory) if directory is not None else data_dir()
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / remote.filename
    sidecar = directory / (remote.filename + ".sha256")

    if target.exists() and not force:
        observed = _sha256_file(target)
        expected = remote.sha256
        if expected is None and sidecar.exists():
            expected = sidecar.read_text(encoding="utf-8").strip() or None
        if expected is None:
            # Manually placed file with no record: adopt it (trust on first
            # use) so offline-populated caches work without a network.
            sidecar.write_text(observed + "\n", encoding="utf-8")
            return target
        if observed == expected:
            return target
        # Stale or partial: fall through to a fresh download.

    if opener is None:
        opener = _default_opener
    part = directory / (remote.filename + ".part")
    digest = hashlib.sha256()
    try:
        with opener(remote.url) as source, open(part, "wb") as sink:
            for block in iter(lambda: source.read(_DOWNLOAD_CHUNK), b""):
                digest.update(block)
                sink.write(block)
    except OSError as exc:
        if part.exists():
            part.unlink()
        raise OSError(
            f"failed to download {remote.url}: {exc}; for offline use, place "
            f"the file at {target} yourself (cache root overridable via "
            f"${DATA_DIR_ENV})"
        ) from exc
    observed = digest.hexdigest()
    if remote.sha256 is not None and observed != remote.sha256:
        part.unlink()
        raise ValueError(
            f"{remote.url}: checksum mismatch (expected {remote.sha256}, "
            f"got {observed}) — refusing to cache a corrupt download"
        )
    os.replace(part, target)
    sidecar.write_text(observed + "\n", encoding="utf-8")
    return target


def _uci_dataset(name: str) -> UCIDataset:
    try:
        return UCI_DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(UCI_DATASETS))
        raise KeyError(
            f"unknown UCI dataset {name!r}; known datasets: {known}"
        ) from None


def fetch_uci_dataset(
    name: str,
    directory: Optional[Union[str, Path]] = None,
    *,
    opener: Optional[Opener] = None,
    force: bool = False,
) -> Tuple[Path, Path]:
    """Fetch (or verify) one UCI dataset; returns ``(docword, vocab)`` paths."""
    dataset = _uci_dataset(name)
    docword = fetch_remote(dataset.docword, directory, opener=opener, force=force)
    vocab = fetch_remote(dataset.vocab, directory, opener=opener, force=force)
    return docword, vocab


def load_uci_dataset(
    name: str,
    directory: Optional[Union[str, Path]] = None,
    max_documents: Optional[int] = None,
    *,
    opener: Optional[Opener] = None,
) -> Corpus:
    """Fetch and parse one UCI dataset into an in-RAM :class:`Corpus`.

    For the full-size corpora prefer :func:`uci_dataset_store`, which never
    materialises the token array.
    """
    from repro.corpus.uci import read_uci_bow

    docword, vocab = fetch_uci_dataset(name, directory, opener=opener)
    return read_uci_bow(docword, vocab, max_documents=max_documents)


def uci_dataset_store(
    name: str,
    directory: Optional[Union[str, Path]] = None,
    max_documents: Optional[int] = None,
    *,
    opener: Optional[Opener] = None,
    overwrite: bool = False,
) -> Path:
    """Fetch one UCI dataset and convert it to an on-disk corpus store.

    The store lands under ``<cache>/stores/<name>`` (suffixed with the
    document cap when one is given) and is reused on later calls, so the
    conversion — like the download — happens once per cache.  Returns the
    store directory, ready for
    :func:`repro.corpus.store.open_store` or ``--corpus-store``.
    """
    from repro.corpus.store import MANIFEST_NAME
    from repro.corpus.uci import uci_to_store

    directory = Path(directory) if directory is not None else data_dir()
    suffix = "" if max_documents is None else f"-first{max_documents}"
    store_dir = directory / "stores" / (name + suffix)
    if (store_dir / MANIFEST_NAME).exists() and not overwrite:
        return store_dir
    docword, vocab = fetch_uci_dataset(name, directory, opener=opener)
    if store_dir.exists():
        shutil.rmtree(store_dir)
    uci_to_store(
        docword, store_dir, vocab, max_documents=max_documents, overwrite=True
    )
    return store_dir
