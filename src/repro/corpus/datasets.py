"""Dataset presets calibrated to the paper's Table 3, at laptop scale.

The paper's corpora:

========================  ======  ======  =====  ====
Dataset                   D       T       V      T/D
========================  ======  ======  =====  ====
NYTimes                   300K    100M    102K   332
PubMed                    8.2M    738M    141K   90
ClueWeb12 (subset)        38M     14B     1M     367
ClueWeb12                 639M    236B    1M     378
========================  ======  ======  =====  ====

Pure Python cannot sweep hundreds of millions of documents, so each preset
keeps the *shape* of its dataset — the tokens-per-document ratio and the
relative vocabulary richness — at a configurable ``scale``.  ``scale=1.0``
corresponds to the default laptop-sized stand-in (documented per preset);
the full-size numbers are retained in :attr:`DatasetPreset.paper_statistics`
so the Table 3 bench can print both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.corpus.corpus import Corpus
from repro.corpus.synthetic import (
    SyntheticCorpusSpec,
    generate_lda_corpus,
    generate_zipf_corpus,
)
from repro.sampling.rng import RngLike, seed_from_deprecated_rng

__all__ = ["DatasetPreset", "DATASET_PRESETS", "load_preset"]


@dataclass(frozen=True)
class DatasetPreset:
    """A named synthetic stand-in for one of the paper's corpora.

    Attributes
    ----------
    name:
        Preset key, e.g. ``"nytimes_like"``.
    paper_statistics:
        The Table 3 row of the real dataset (D, T, V, T/D).
    base_documents / base_vocabulary / mean_document_length / num_topics:
        Scale-1.0 generation parameters.  ``mean_document_length`` matches the
        real dataset's T/D; documents and vocabulary are scaled down together
        so the D:V ratio is preserved.
    generator:
        ``"lda"`` (topical structure, for convergence runs) or ``"zipf"``
        (frequency skew only, for partitioning / cache runs).
    """

    name: str
    paper_statistics: Dict[str, float]
    base_documents: int
    base_vocabulary: int
    mean_document_length: int
    num_topics: int
    generator: str = "lda"
    zipf_exponent: float = 1.07

    def spec(self, scale: float = 1.0) -> SyntheticCorpusSpec:
        """Return the :class:`SyntheticCorpusSpec` for the given scale."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return SyntheticCorpusSpec(
            num_documents=max(2, int(round(self.base_documents * scale))),
            vocabulary_size=max(10, int(round(self.base_vocabulary * scale))),
            mean_document_length=self.mean_document_length,
            num_topics=self.num_topics,
            zipf_exponent=self.zipf_exponent,
        )

    def generate(
        self, scale: float = 1.0, seed: RngLike = None, *, rng: RngLike = None
    ) -> Corpus:
        """Generate the corpus for this preset at the given scale.

        ``rng`` is the deprecated alias for ``seed``.
        """
        seed = seed_from_deprecated_rng(seed, rng, "DatasetPreset.generate")
        spec = self.spec(scale)
        if self.generator == "lda":
            return generate_lda_corpus(spec, seed=seed)
        if self.generator == "zipf":
            return generate_zipf_corpus(spec, seed=seed)
        raise ValueError(f"unknown generator {self.generator!r}")


DATASET_PRESETS: Dict[str, DatasetPreset] = {
    "nytimes_like": DatasetPreset(
        name="nytimes_like",
        paper_statistics={"D": 300_000, "T": 100_000_000, "V": 102_000, "T/D": 332},
        base_documents=600,
        base_vocabulary=2_000,
        mean_document_length=332,
        num_topics=50,
    ),
    "pubmed_like": DatasetPreset(
        name="pubmed_like",
        paper_statistics={"D": 8_200_000, "T": 738_000_000, "V": 141_000, "T/D": 90},
        base_documents=2_000,
        base_vocabulary=3_000,
        mean_document_length=90,
        num_topics=50,
    ),
    "clueweb_like": DatasetPreset(
        name="clueweb_like",
        paper_statistics={"D": 639_000_000, "T": 236_000_000_000, "V": 1_000_000, "T/D": 378},
        base_documents=1_000,
        base_vocabulary=5_000,
        mean_document_length=378,
        num_topics=100,
        generator="zipf",
    ),
    "clueweb_subset_like": DatasetPreset(
        name="clueweb_subset_like",
        paper_statistics={"D": 38_000_000, "T": 14_000_000_000, "V": 1_000_000, "T/D": 367},
        base_documents=800,
        base_vocabulary=4_000,
        mean_document_length=367,
        num_topics=100,
        generator="zipf",
    ),
}


def load_preset(
    name: str, scale: float = 1.0, seed: RngLike = None, *, rng: RngLike = None
) -> Corpus:
    """Generate the corpus for preset ``name`` at ``scale``.

    ``rng`` is the deprecated alias for ``seed``.

    Raises
    ------
    KeyError
        If ``name`` is not a known preset.
    """
    seed = seed_from_deprecated_rng(seed, rng, "load_preset")
    try:
        preset = DATASET_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_PRESETS))
        raise KeyError(f"unknown dataset preset {name!r}; known presets: {known}") from None
    return preset.generate(scale=scale, seed=seed)
