"""Documents and corpora.

A :class:`Corpus` stores every token of every document as flat NumPy arrays
plus CSR-style offsets, which gives the samplers exactly the two visiting
orders the paper analyses:

* **document-by-document** — iterate ``corpus.document_token_indices(d)``;
* **word-by-word** — iterate ``corpus.word_token_indices(w)`` (the CSC view).

Both views index into the *same* flat per-token arrays, mirroring the paper's
data layout where only one copy of the token data is stored (Sec. 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.corpus.vocabulary import Vocabulary
from repro.sampling.rng import RngLike, ensure_rng, seed_from_deprecated_rng

__all__ = ["Document", "Corpus"]


@dataclass(frozen=True)
class Document:
    """A single document: a sequence of word ids (tokens, with repetition).

    Attributes
    ----------
    word_ids:
        The tokens of the document in order, as vocabulary ids.
    doc_id:
        Optional external identifier (e.g. a filename).
    """

    word_ids: np.ndarray
    doc_id: Optional[str] = None

    def __post_init__(self) -> None:
        word_ids = np.asarray(self.word_ids, dtype=np.int64)
        if word_ids.ndim != 1:
            raise ValueError(f"word_ids must be 1-D, got shape {word_ids.shape}")
        if word_ids.size and word_ids.min() < 0:
            raise ValueError("word ids must be non-negative")
        object.__setattr__(self, "word_ids", word_ids)

    @property
    def length(self) -> int:
        """Number of tokens ``L_d``."""
        return int(self.word_ids.size)

    def bag_of_words(self) -> Dict[int, int]:
        """Return ``{word_id: count}`` for this document."""
        unique, counts = np.unique(self.word_ids, return_counts=True)
        return {int(w): int(c) for w, c in zip(unique, counts)}

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[int]:
        return iter(self.word_ids.tolist())


class Corpus:
    """A collection of documents over one vocabulary, stored token-major.

    Parameters
    ----------
    documents:
        The documents, each a :class:`Document` whose word ids are valid for
        ``vocabulary``.
    vocabulary:
        The shared vocabulary.  Its size bounds every word id.
    """

    def __init__(self, documents: Sequence[Document], vocabulary: Vocabulary):
        if not documents:
            raise ValueError("a corpus must contain at least one document")
        self._vocabulary = vocabulary
        self._documents = list(documents)

        lengths = np.array([doc.length for doc in self._documents], dtype=np.int64)
        if lengths.sum() == 0:
            raise ValueError("a corpus must contain at least one token")

        # Flat, token-major representation (document order).
        self._doc_offsets = np.zeros(len(self._documents) + 1, dtype=np.int64)
        np.cumsum(lengths, out=self._doc_offsets[1:])
        self._token_words = np.concatenate(
            [doc.word_ids for doc in self._documents]
        ).astype(np.int64)
        max_word = int(self._token_words.max()) if self._token_words.size else -1
        if max_word >= vocabulary.size:
            raise ValueError(
                f"word id {max_word} out of range for vocabulary of size "
                f"{vocabulary.size}"
            )
        self._init_derived()

    def _init_derived(self) -> None:
        """Compute the per-token document ids and the word-major (CSC) view.

        Requires ``_vocabulary``, ``_documents``, ``_doc_offsets`` and
        ``_token_words`` to be set; shared between ``__init__`` and the cheap
        document-range views of :meth:`slice`.
        """
        self._token_docs = np.repeat(
            np.arange(len(self._documents), dtype=np.int64),
            np.diff(self._doc_offsets),
        )
        # Word-major (CSC) view: a permutation of token indices sorted by word
        # id, stable so that within a word the tokens stay in document order —
        # exactly the "entries sorted by row id" layout of Sec. 5.2.
        self._word_order = np.argsort(self._token_words, kind="stable")
        word_frequencies = np.bincount(
            self._token_words, minlength=self._vocabulary.size
        )
        self._word_offsets = np.zeros(self._vocabulary.size + 1, dtype=np.int64)
        np.cumsum(word_frequencies, out=self._word_offsets[1:])
        self._word_frequencies = word_frequencies.astype(np.int64)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def vocabulary(self) -> Vocabulary:
        """The shared vocabulary."""
        return self._vocabulary

    @property
    def num_documents(self) -> int:
        """Number of documents ``D``."""
        return len(self._documents)

    @property
    def num_tokens(self) -> int:
        """Total number of tokens ``T``."""
        return int(self._token_words.size)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct words ``V`` (vocabulary size, not observed)."""
        return self._vocabulary.size

    @property
    def documents(self) -> List[Document]:
        """The documents (the internal list; treat as read-only)."""
        return self._documents

    def document_lengths(self) -> np.ndarray:
        """Return ``L_d`` for every document."""
        return np.diff(self._doc_offsets)

    def word_frequencies(self) -> np.ndarray:
        """Return ``L_w`` (term frequency) for every word id."""
        return self._word_frequencies.copy()

    # ------------------------------------------------------------------ #
    # Token-major views (used directly by the samplers)
    # ------------------------------------------------------------------ #
    @property
    def token_words(self) -> np.ndarray:
        """Word id of every token, in document order (read-only view)."""
        return self._token_words

    @property
    def token_documents(self) -> np.ndarray:
        """Document index of every token, in document order (read-only view)."""
        return self._token_docs

    @property
    def doc_offsets(self) -> np.ndarray:
        """CSR offsets: tokens of document ``d`` are ``[offsets[d], offsets[d+1])``."""
        return self._doc_offsets

    @property
    def word_offsets(self) -> np.ndarray:
        """CSC offsets into :attr:`word_order` for every word id."""
        return self._word_offsets

    @property
    def word_order(self) -> np.ndarray:
        """Permutation of token indices grouping tokens by word id."""
        return self._word_order

    def document_token_indices(self, doc_index: int) -> np.ndarray:
        """Indices (into the flat token arrays) of document ``doc_index``."""
        self._check_doc(doc_index)
        return np.arange(
            self._doc_offsets[doc_index], self._doc_offsets[doc_index + 1]
        )

    def word_token_indices(self, word_id: int) -> np.ndarray:
        """Indices (into the flat token arrays) of all tokens of ``word_id``."""
        if not 0 <= word_id < self.vocabulary_size:
            raise IndexError(
                f"word id {word_id} out of range [0, {self.vocabulary_size})"
            )
        return self._word_order[
            self._word_offsets[word_id] : self._word_offsets[word_id + 1]
        ]

    def document_words(self, doc_index: int) -> np.ndarray:
        """Word ids of the tokens of document ``doc_index``."""
        self._check_doc(doc_index)
        return self._token_words[
            self._doc_offsets[doc_index] : self._doc_offsets[doc_index + 1]
        ]

    # ------------------------------------------------------------------ #
    # Statistics and manipulation
    # ------------------------------------------------------------------ #
    def term_document_counts(self) -> np.ndarray:
        """Return the dense ``D x V`` term-count matrix (small corpora only)."""
        matrix = np.zeros((self.num_documents, self.vocabulary_size), dtype=np.int64)
        np.add.at(matrix, (self._token_docs, self._token_words), 1)
        return matrix

    def subset(self, doc_indices: Sequence[int]) -> "Corpus":
        """Return a new corpus containing only the given documents."""
        doc_indices = list(doc_indices)
        if not doc_indices:
            raise ValueError("subset requires at least one document index")
        documents = [self._documents[i] for i in doc_indices]
        return Corpus(documents, self._vocabulary)

    def slice(self, start: int, stop: int) -> "Corpus":
        """Return a cheap view of documents ``[start, stop)``.

        Unlike :meth:`subset`, the token array is shared with the parent (a
        NumPy view, no concatenation), so slicing a corpus into contiguous
        shards — the layout used by data-parallel training — costs O(tokens in
        the slice) for the derived indices only.  The slice may contain only
        empty documents (zero tokens), or no documents at all (``start ==
        stop``, which the streaming appender hits for an empty window);
        samplers must tolerate the former, and nothing may be trained on the
        latter.
        """
        if not 0 <= start <= stop <= self.num_documents:
            raise IndexError(
                f"invalid document range [{start}, {stop}) for corpus with "
                f"{self.num_documents} documents"
            )
        view = Corpus.__new__(Corpus)
        view._vocabulary = self._vocabulary
        view._documents = self._documents[start:stop]
        base = self._doc_offsets[start]
        view._doc_offsets = self._doc_offsets[start : stop + 1] - base
        view._token_words = self._token_words[base : self._doc_offsets[stop]]
        view._init_derived()
        return view

    def split(
        self,
        train_fraction: float = 0.8,
        seed: RngLike = None,
        rng: RngLike = None,
    ) -> Tuple["Corpus", "Corpus"]:
        """Randomly split documents into a train and a held-out corpus.

        ``seed`` is the canonical parameter; ``rng=`` is a deprecated alias
        kept for pre-1.1 callers.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        seed = seed_from_deprecated_rng(seed, rng, "Corpus.split")
        order = ensure_rng(seed).permutation(self.num_documents)
        cut = int(round(train_fraction * self.num_documents))
        cut = min(max(cut, 1), self.num_documents - 1)
        return self.subset(order[:cut]), self.subset(order[cut:])

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_token_lists(
        cls,
        token_lists: Sequence[Sequence[Union[int, str]]],
        vocabulary: Optional[Vocabulary] = None,
    ) -> "Corpus":
        """Build a corpus from per-document token lists.

        Tokens may be strings (a vocabulary is built / extended) or integer
        word ids (a vocabulary must be supplied or ids are named ``w<i>``).
        """
        if not token_lists:
            raise ValueError("token_lists must be non-empty")
        uses_strings = any(
            isinstance(token, str) for tokens in token_lists for token in tokens
        )
        if uses_strings:
            vocab = vocabulary if vocabulary is not None else Vocabulary()
            documents = []
            for tokens in token_lists:
                ids = np.array([vocab.add(str(token)) for token in tokens], dtype=np.int64)
                documents.append(Document(ids))
            return cls(documents, vocab)

        max_id = max((int(t) for tokens in token_lists for t in tokens), default=-1)
        if vocabulary is None:
            vocabulary = Vocabulary(f"w{i}" for i in range(max_id + 1))
        documents = [
            Document(np.asarray(list(tokens), dtype=np.int64)) for tokens in token_lists
        ]
        return cls(documents, vocabulary)

    @classmethod
    def from_bags(
        cls,
        bags: Sequence[Dict[int, int]],
        vocabulary: Vocabulary,
    ) -> "Corpus":
        """Build a corpus from per-document ``{word_id: count}`` bags."""
        documents = []
        for bag in bags:
            if bag:
                word_ids = np.repeat(
                    np.fromiter(bag.keys(), dtype=np.int64, count=len(bag)),
                    np.fromiter(bag.values(), dtype=np.int64, count=len(bag)),
                )
            else:
                word_ids = np.empty(0, dtype=np.int64)
            documents.append(Document(word_ids))
        return cls(documents, vocabulary)

    @classmethod
    def from_texts(
        cls,
        texts: Sequence[str],
        tokenizer=None,
        vocabulary: Optional[Vocabulary] = None,
    ) -> "Corpus":
        """Build a corpus from raw text using ``tokenizer`` (default simple)."""
        if tokenizer is None:
            from repro.corpus.tokenize import simple_tokenize

            tokenizer = simple_tokenize
        return cls.from_token_lists([tokenizer(text) for text in texts], vocabulary)

    # ------------------------------------------------------------------ #
    def _check_doc(self, doc_index: int) -> None:
        if not 0 <= doc_index < self.num_documents:
            raise IndexError(
                f"document index {doc_index} out of range [0, {self.num_documents})"
            )

    def __len__(self) -> int:
        return self.num_documents

    def __getitem__(self, doc_index: int) -> Document:
        self._check_doc(doc_index)
        return self._documents[doc_index]

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Corpus(documents={self.num_documents}, tokens={self.num_tokens}, "
            f"vocabulary={self.vocabulary_size})"
        )
