"""Reader/writer for the UCI bag-of-words format.

NYTimes and PubMed, the paper's single-machine corpora, are distributed by the
UCI machine learning repository in this format:

``docword.<name>.txt``::

    D
    V
    NNZ
    docID wordID count
    ...

``vocab.<name>.txt`` — one word per line, 1-indexed by line number.

Both docIDs and wordIDs are 1-based in the files and converted to 0-based ids
internally.

The parser is chunked: entries are validated and accumulated in fixed-size
numeric buffers (``chunk_entries`` triples at a time), never in per-document
dict state, so parse overhead is O(chunk) and the peak footprint of
:func:`read_uci_bow` is the compact token arrays themselves.  For corpora
that should never be resident at all, :func:`uci_to_store` streams the same
chunks straight into a :class:`~repro.corpus.store.StoreWriter` — one
buffered document at a time — producing an on-disk store without ever
holding the full token array.
"""

from __future__ import annotations

import gzip
from array import array
from pathlib import Path
from typing import Iterator, List, Optional, TextIO, Tuple, Union

import numpy as np

from repro.corpus.corpus import Corpus, Document
from repro.corpus.vocabulary import Vocabulary

__all__ = [
    "read_uci_bow",
    "read_uci_vocab",
    "uci_to_store",
    "write_uci_bow",
    "write_uci_vocab",
]

PathLike = Union[str, Path]

#: Entries (docID/wordID/count triples) buffered per parser chunk.
DEFAULT_CHUNK_ENTRIES = 1 << 18


def _open_text(path: PathLike, mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def read_uci_vocab(path: PathLike) -> Vocabulary:
    """Read a ``vocab.*.txt`` file (one word per line)."""
    with _open_text(path, "r") as handle:
        words = [line.strip() for line in handle if line.strip()]
    return Vocabulary(words)


def write_uci_vocab(vocabulary: Vocabulary, path: PathLike) -> None:
    """Write a vocabulary as one word per line."""
    with _open_text(path, "w") as handle:
        for word in vocabulary.words():
            handle.write(word + "\n")


def _read_uci_header(handle: TextIO, docword_path: PathLike) -> Tuple[int, int, int]:
    header = [handle.readline() for _ in range(3)]
    try:
        return int(header[0]), int(header[1]), int(header[2])
    except (ValueError, IndexError) as exc:
        raise ValueError(
            f"{docword_path}: malformed UCI header (expected 3 integer lines)"
        ) from exc


def _iter_uci_entries(
    handle: TextIO,
    docword_path: PathLike,
    num_docs: int,
    num_words: int,
    max_documents: Optional[int],
    chunk_entries: int,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield validated ``(docs, words, counts)`` chunks, ids 0-based.

    Validation (and its error messages) matches the historical whole-file
    parser exactly; entries for documents beyond ``max_documents`` are
    filtered here so no downstream state grows with the skipped tail.
    """
    docs, words, counts = array("q"), array("q"), array("q")
    for line_number, line in enumerate(handle, start=4):
        line = line.strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(
                f"{docword_path}:{line_number}: expected 'doc word count', got {line!r}"
            )
        doc_id, word_id, count = (int(part) for part in parts)
        if not 1 <= doc_id <= num_docs:
            raise ValueError(
                f"{docword_path}:{line_number}: document id {doc_id} out of range"
            )
        if not 1 <= word_id <= num_words:
            raise ValueError(
                f"{docword_path}:{line_number}: word id {word_id} out of range"
            )
        if count <= 0:
            raise ValueError(
                f"{docword_path}:{line_number}: count must be positive, got {count}"
            )
        if max_documents is not None and doc_id > max_documents:
            continue
        docs.append(doc_id - 1)
        words.append(word_id - 1)
        counts.append(count)
        if len(docs) >= chunk_entries:
            yield (
                np.frombuffer(docs, dtype=np.int64),
                np.frombuffer(words, dtype=np.int64),
                np.frombuffer(counts, dtype=np.int64),
            )
            docs, words, counts = array("q"), array("q"), array("q")
    if docs:
        yield (
            np.frombuffer(docs, dtype=np.int64),
            np.frombuffer(words, dtype=np.int64),
            np.frombuffer(counts, dtype=np.int64),
        )


def _resolve_vocabulary(
    vocab_path: Optional[PathLike], num_words: int
) -> Vocabulary:
    if vocab_path is not None:
        vocabulary = read_uci_vocab(vocab_path)
        if vocabulary.size < num_words:
            raise ValueError(
                f"vocab file has {vocabulary.size} words but docword header says {num_words}"
            )
        return vocabulary
    return Vocabulary(f"w{i}" for i in range(num_words))


def read_uci_bow(
    docword_path: PathLike,
    vocab_path: Optional[PathLike] = None,
    max_documents: Optional[int] = None,
    chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
) -> Corpus:
    """Read a UCI ``docword.*.txt`` (optionally gzipped) into a :class:`Corpus`.

    Entries may appear in any order; a stable sort by document id preserves
    file order within each document, so tokens expand in the order the file
    lists them.

    Parameters
    ----------
    docword_path:
        Path to the docword file.
    vocab_path:
        Optional path to the matching vocab file; if omitted, synthetic word
        names ``w0..w{V-1}`` are used.
    max_documents:
        If given, keep only the first ``max_documents`` documents — handy for
        scaled-down experiments.
    chunk_entries:
        Entries buffered per parser chunk (bounds the parse-state footprint).
    """
    if chunk_entries <= 0:
        raise ValueError(f"chunk_entries must be positive, got {chunk_entries}")
    chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    with _open_text(docword_path, "r") as handle:
        num_docs, num_words, _ = _read_uci_header(handle, docword_path)
        chunks.extend(
            _iter_uci_entries(
                handle, docword_path, num_docs, num_words, max_documents, chunk_entries
            )
        )

    vocabulary = _resolve_vocabulary(vocab_path, num_words)
    kept_docs = num_docs if max_documents is None else min(num_docs, max_documents)

    if chunks:
        docs = np.concatenate([c[0] for c in chunks])
        words = np.concatenate([c[1] for c in chunks])
        counts = np.concatenate([c[2] for c in chunks])
    else:
        docs = words = counts = np.empty(0, dtype=np.int64)
    order = np.argsort(docs, kind="stable")
    docs, words, counts = docs[order], words[order], counts[order]

    lengths = np.zeros(max(kept_docs, 1), dtype=np.int64)
    np.add.at(lengths, docs, counts)
    # Drop trailing empty documents but keep interior ones (so doc ids stay
    # aligned for debugging real corpora).
    occupied = np.flatnonzero(lengths)
    kept_docs = max(int(occupied[-1]) + 1 if occupied.size else 0, 1)

    token_words = np.repeat(words, counts)
    doc_offsets = np.zeros(kept_docs + 1, dtype=np.int64)
    np.cumsum(lengths[:kept_docs], out=doc_offsets[1:])
    documents = [
        Document(token_words[doc_offsets[d] : doc_offsets[d + 1]])
        for d in range(kept_docs)
    ]
    return Corpus(documents, vocabulary)


def uci_to_store(
    docword_path: PathLike,
    store_dir: PathLike,
    vocab_path: Optional[PathLike] = None,
    max_documents: Optional[int] = None,
    *,
    chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
    buckets: bool = True,
    overwrite: bool = False,
) -> Path:
    """Convert a UCI docword file straight to an on-disk corpus store.

    Unlike :func:`read_uci_bow` → ``write_store``, this never holds the
    token array: each parsed chunk is expanded one document at a time into a
    :class:`~repro.corpus.store.StoreWriter`, so the peak footprint is one
    parser chunk plus one document.  Requires the file's entries to be
    grouped by ascending document id — the order the UCI distribution files
    use; unsorted files must go through :func:`read_uci_bow`.

    Trailing empty documents are dropped and interior ones kept, matching
    :func:`read_uci_bow`.

    Returns the store directory (open it with
    :func:`repro.corpus.store.open_store`).
    """
    from repro.corpus.store import StoreWriter

    if chunk_entries <= 0:
        raise ValueError(f"chunk_entries must be positive, got {chunk_entries}")
    empty = np.empty(0, dtype=np.int64)
    with _open_text(docword_path, "r") as handle:
        num_docs, num_words, _ = _read_uci_header(handle, docword_path)
        vocabulary = _resolve_vocabulary(vocab_path, num_words)
        with StoreWriter(store_dir, overwrite=overwrite) as writer:
            current = -1
            appended = 0
            buffer: List[np.ndarray] = []

            def flush() -> None:
                nonlocal appended
                while appended < current:  # interior empty documents
                    writer.append_document(empty)
                    appended += 1
                writer.append_document(
                    np.concatenate(buffer) if buffer else empty
                )
                appended += 1

            for docs, words, counts in _iter_uci_entries(
                handle, docword_path, num_docs, num_words, max_documents,
                chunk_entries,
            ):
                if docs.size and (
                    int(docs[0]) < current or np.any(np.diff(docs) < 0)
                ):
                    raise ValueError(
                        f"{docword_path}: uci_to_store requires entries grouped "
                        f"by ascending document id (the UCI distribution "
                        f"order); parse unsorted files with read_uci_bow"
                    )
                boundaries = np.flatnonzero(np.diff(docs)) + 1
                for segment in np.split(np.arange(docs.size), boundaries):
                    doc_id = int(docs[segment[0]])
                    if doc_id != current:
                        if current >= 0:
                            flush()
                        current = doc_id
                        buffer = []
                    buffer.append(np.repeat(words[segment], counts[segment]))
            if current >= 0:
                flush()
            return writer.finalize(vocabulary, buckets=buckets)


def write_uci_bow(
    corpus: Corpus,
    docword_path: PathLike,
    vocab_path: Optional[PathLike] = None,
) -> None:
    """Write ``corpus`` in UCI bag-of-words format."""
    entries: List[Tuple[int, int, int]] = []
    for doc_index in range(corpus.num_documents):
        bag = corpus[doc_index].bag_of_words()
        for word_id in sorted(bag):
            entries.append((doc_index + 1, word_id + 1, bag[word_id]))

    with _open_text(docword_path, "w") as handle:
        handle.write(f"{corpus.num_documents}\n")
        handle.write(f"{corpus.vocabulary_size}\n")
        handle.write(f"{len(entries)}\n")
        for doc_id, word_id, count in entries:
            handle.write(f"{doc_id} {word_id} {count}\n")

    if vocab_path is not None:
        write_uci_vocab(corpus.vocabulary, vocab_path)
