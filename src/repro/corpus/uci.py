"""Reader/writer for the UCI bag-of-words format.

NYTimes and PubMed, the paper's single-machine corpora, are distributed by the
UCI machine learning repository in this format:

``docword.<name>.txt``::

    D
    V
    NNZ
    docID wordID count
    ...

``vocab.<name>.txt`` — one word per line, 1-indexed by line number.

Both docIDs and wordIDs are 1-based in the files and converted to 0-based ids
internally.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, Union

import numpy as np

from repro.corpus.corpus import Corpus, Document
from repro.corpus.vocabulary import Vocabulary

__all__ = ["read_uci_bow", "write_uci_bow", "read_uci_vocab", "write_uci_vocab"]

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def read_uci_vocab(path: PathLike) -> Vocabulary:
    """Read a ``vocab.*.txt`` file (one word per line)."""
    with _open_text(path, "r") as handle:
        words = [line.strip() for line in handle if line.strip()]
    return Vocabulary(words)


def write_uci_vocab(vocabulary: Vocabulary, path: PathLike) -> None:
    """Write a vocabulary as one word per line."""
    with _open_text(path, "w") as handle:
        for word in vocabulary.words():
            handle.write(word + "\n")


def read_uci_bow(
    docword_path: PathLike,
    vocab_path: Optional[PathLike] = None,
    max_documents: Optional[int] = None,
) -> Corpus:
    """Read a UCI ``docword.*.txt`` (optionally gzipped) into a :class:`Corpus`.

    Parameters
    ----------
    docword_path:
        Path to the docword file.
    vocab_path:
        Optional path to the matching vocab file; if omitted, synthetic word
        names ``w0..w{V-1}`` are used.
    max_documents:
        If given, keep only the first ``max_documents`` documents — handy for
        scaled-down experiments.
    """
    with _open_text(docword_path, "r") as handle:
        header = [handle.readline() for _ in range(3)]
        try:
            num_docs = int(header[0])
            num_words = int(header[1])
            num_nonzero = int(header[2])
        except (ValueError, IndexError) as exc:
            raise ValueError(
                f"{docword_path}: malformed UCI header (expected 3 integer lines)"
            ) from exc

        bags: Dict[int, Dict[int, int]] = {}
        for line_number, line in enumerate(handle, start=4):
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(
                    f"{docword_path}:{line_number}: expected 'doc word count', got {line!r}"
                )
            doc_id, word_id, count = (int(part) for part in parts)
            if not 1 <= doc_id <= num_docs:
                raise ValueError(
                    f"{docword_path}:{line_number}: document id {doc_id} out of range"
                )
            if not 1 <= word_id <= num_words:
                raise ValueError(
                    f"{docword_path}:{line_number}: word id {word_id} out of range"
                )
            if count <= 0:
                raise ValueError(
                    f"{docword_path}:{line_number}: count must be positive, got {count}"
                )
            if max_documents is not None and doc_id > max_documents:
                continue
            bags.setdefault(doc_id - 1, {})[word_id - 1] = count

    if vocab_path is not None:
        vocabulary = read_uci_vocab(vocab_path)
        if vocabulary.size < num_words:
            raise ValueError(
                f"vocab file has {vocabulary.size} words but docword header says {num_words}"
            )
    else:
        vocabulary = Vocabulary(f"w{i}" for i in range(num_words))

    kept_docs = num_docs if max_documents is None else min(num_docs, max_documents)
    ordered_bags = [bags.get(doc_index, {}) for doc_index in range(kept_docs)]
    # Drop trailing empty documents but keep interior ones (so doc ids stay
    # aligned for debugging real corpora).
    while len(ordered_bags) > 1 and not ordered_bags[-1]:
        ordered_bags.pop()
    return Corpus.from_bags(ordered_bags, vocabulary)


def write_uci_bow(
    corpus: Corpus,
    docword_path: PathLike,
    vocab_path: Optional[PathLike] = None,
) -> None:
    """Write ``corpus`` in UCI bag-of-words format."""
    entries: List[Tuple[int, int, int]] = []
    for doc_index in range(corpus.num_documents):
        bag = corpus[doc_index].bag_of_words()
        for word_id in sorted(bag):
            entries.append((doc_index + 1, word_id + 1, bag[word_id]))

    with _open_text(docword_path, "w") as handle:
        handle.write(f"{corpus.num_documents}\n")
        handle.write(f"{corpus.vocabulary_size}\n")
        handle.write(f"{len(entries)}\n")
        for doc_id, word_id, count in entries:
            handle.write(f"{doc_id} {word_id} {count}\n")

    if vocab_path is not None:
        write_uci_vocab(corpus.vocabulary, vocab_path)
