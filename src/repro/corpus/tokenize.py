"""Plain-text tokenisation mirroring the paper's ClueWeb12 preprocessing.

The paper (Sec. 6.1) extracts text, removes everything except alphabets and
digits, lower-cases, splits on whitespace and removes stop words.  This module
implements the same pipeline for the text-input path of the library.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List, Optional

__all__ = ["simple_tokenize", "DEFAULT_STOP_WORDS"]

_NON_ALNUM = re.compile(r"[^a-z0-9]+")

#: A small English stop-word list (the paper removes stop words; the exact
#: list is not specified, so we use a conventional minimal set).
DEFAULT_STOP_WORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all am an and any are as at be because
    been before being below between both but by can did do does doing down
    during each few for from further had has have having he her here hers
    herself him himself his how i if in into is it its itself just me more
    most my myself no nor not now of off on once only or other our ours
    ourselves out over own same she should so some such than that the their
    theirs them themselves then there these they this those through to too
    under until up very was we were what when where which while who whom why
    will with you your yours yourself yourselves
    """.split()
)


def simple_tokenize(
    text: str,
    stop_words: Optional[FrozenSet[str]] = DEFAULT_STOP_WORDS,
    min_length: int = 2,
) -> List[str]:
    """Tokenise ``text`` into lower-case alphanumeric tokens.

    Parameters
    ----------
    text:
        The raw text.
    stop_words:
        Words to drop; pass ``None`` to keep everything.
    min_length:
        Drop tokens shorter than this many characters.
    """
    if not isinstance(text, str):
        raise TypeError(f"text must be a string, got {type(text).__name__}")
    lowered = text.lower()
    pieces = _NON_ALNUM.split(lowered)
    tokens = []
    for piece in pieces:
        if len(piece) < min_length:
            continue
        if stop_words is not None and piece in stop_words:
            continue
        tokens.append(piece)
    return tokens
