"""Corpus statistics (the quantities reported in the paper's Table 3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.corpus.corpus import Corpus

__all__ = ["CorpusStatistics"]


@dataclass(frozen=True)
class CorpusStatistics:
    """Summary statistics of a corpus.

    Attributes mirror Table 3 of the paper (D, T, V, T/D) plus a few extra
    quantities used by the memory-access analysis.
    """

    num_documents: int
    num_tokens: int
    vocabulary_size: int
    observed_vocabulary_size: int
    mean_document_length: float
    max_document_length: int
    mean_word_frequency: float
    max_word_frequency: int
    top_words_token_share: float
    """Fraction of tokens covered by the most frequent 1% of words."""

    @classmethod
    def from_corpus(cls, corpus: Corpus) -> "CorpusStatistics":
        """Compute statistics for ``corpus``."""
        lengths = corpus.document_lengths()
        frequencies = corpus.word_frequencies()
        observed = frequencies[frequencies > 0]
        top_count = max(1, corpus.vocabulary_size // 100)
        top_share = float(
            np.sort(frequencies)[::-1][:top_count].sum() / max(corpus.num_tokens, 1)
        )
        return cls(
            num_documents=corpus.num_documents,
            num_tokens=corpus.num_tokens,
            vocabulary_size=corpus.vocabulary_size,
            observed_vocabulary_size=int(observed.size),
            mean_document_length=float(lengths.mean()),
            max_document_length=int(lengths.max()),
            mean_word_frequency=float(observed.mean()) if observed.size else 0.0,
            max_word_frequency=int(frequencies.max()),
            top_words_token_share=top_share,
        )

    def as_table_row(self) -> Dict[str, float]:
        """Return the Table 3 columns (D, T, V, T/D)."""
        return {
            "D": self.num_documents,
            "T": self.num_tokens,
            "V": self.vocabulary_size,
            "T/D": round(self.mean_document_length, 1),
        }
