"""A process pool serving one shared snapshot, with broadcast hot-swap.

:class:`WorkerPool` gives each worker a **private duplex pipe** and keeps
the request backlog in the parent.  Dispatch is one-outstanding-request per
worker: an idle worker gets the next task immediately; when all are busy the
task waits in the parent's deque.  This shape is deliberate —

* **kill-safety**: a worker that dies (OOM, segfault, operator kill) takes
  only its own pipe with it.  Its assigned request is failed by the parent
  and every other channel keeps flowing.  A shared
  ``multiprocessing.Queue`` cannot offer this: a consumer killed inside
  ``get()`` dies holding the queue's internal lock and wedges the whole
  pool;
* **ordered swaps**: because at most one task is ever in a worker's pipe, a
  ``swap`` broadcast lands right behind the in-flight request — that
  request completes on the snapshot it started with, every later one sees
  the new version (the :meth:`TopicServer.refresh` contract, held across
  processes);
* **asyncio affinity**: each pipe is a selectable fd, so the HTTP front end
  wires them straight into its event loop (``loop.add_reader``) — results
  arrive with no pump thread, no polling latency, and no locks.

Snapshot **generations** are reference-counted by worker acknowledgement: a
:meth:`swap` materialises the new version into its own shared segment
(:class:`~repro.service.shm.SharedSnapshot`) and broadcasts the descriptor;
each worker acks once it has re-attached; a retired generation's segment is
unlinked only after *every* live worker has acked a newer version, so an
in-flight request on the old snapshot always finds its pages mapped.  POSIX
keeps unlinked pages alive until the last mapping closes, making the reap
safe even against a worker mid-``attach``.

Worker death is detected by :meth:`check_workers` (the front end polls it):
a dead worker is reaped and respawned on the *current* generation, so
capacity self-heals without dropping the pool.

The pool is deliberately single-threaded: exactly one thread (or one event
loop) may drive ``submit``/``pump``/``get_result``/``poll_control`` at a
time.  The HTTP tier satisfies this by funnelling every pool call through
its event loop.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.serving.snapshot import ModelSnapshot
from repro.service.shm import SharedSnapshot
from repro.service.worker import _worker_main

__all__ = ["PoolWorker", "WorkerError", "WorkerPool"]

#: Seconds to wait for a worker's ready ack before giving up on it.
_ACK_TIMEOUT = 30.0

#: A queued request: ``(request_id, documents, enqueued_at_monotonic)``.
_Task = Tuple[int, List[Any], float]

#: A delivered answer: ``("result"|"error", request_id, payload)``.
_Result = Tuple[str, int, Dict[str, Any]]


class WorkerError(RuntimeError):
    """A worker failed to serve a request; carries the relayed traceback."""


class PoolWorker:
    """Parent-side handle on one worker process."""

    def __init__(self, index: int, process: Any, conn: Any) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        #: Snapshot version this worker last acked (ready or swapped).
        self.version: Optional[int] = None
        #: Identity block from the last ready/swap ack (segment, zero_copy).
        self.info: Dict[str, Any] = {}
        #: The task currently dispatched to this worker, if any.
        self.busy: Optional[_Task] = None
        #: Set once the worker's pipe hit EOF (process gone or stopping).
        self.eof = False

    def alive(self) -> bool:
        return bool(self.process.is_alive())

    def usable(self) -> bool:
        """Can this worker accept a dispatch right now?"""
        return not self.eof and not self.conn.closed and self.alive()


class WorkerPool:
    """N worker processes serving one shared-memory snapshot."""

    def __init__(
        self,
        snapshot: ModelSnapshot,
        num_workers: int = 2,
        options: Optional[Dict[str, Any]] = None,
        version: int = 0,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self._options = dict(options or {})
        start_method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        self._context = multiprocessing.get_context(start_method)
        #: Live snapshot generations, oldest first; the last is current.
        self._generations: List[SharedSnapshot] = [
            SharedSnapshot.create(snapshot, version=version)
        ]
        self._workers: List[PoolWorker] = []
        self._backlog: Deque[_Task] = deque()
        self._results: Deque[_Result] = deque()
        self._control: Deque[Dict[str, Any]] = deque()
        self._closed = False
        self._recycled = 0
        try:
            for index in range(num_workers):
                self._workers.append(self._spawn(index))
            for worker in self._workers:
                self._await_ready(worker)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self, index: int) -> PoolWorker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(index, self.current.descriptor(), self._options, child_conn),
            daemon=True,
            name=f"repro-service-worker-{index}",
        )
        process.start()
        child_conn.close()
        return PoolWorker(index, process, parent_conn)

    def _await_ready(self, worker: PoolWorker) -> Dict[str, Any]:
        # "ready" is always the worker's first message, so a direct recv
        # here cannot steal results or acks meant for the routed channels.
        deadline = time.monotonic() + _ACK_TIMEOUT
        while time.monotonic() < deadline:
            if worker.conn.poll(0.05):
                kind, payload = worker.conn.recv()
                if kind == "ready":
                    worker.version = int(payload["version"])
                    worker.info = dict(payload)
                    return worker.info
            elif not worker.alive():
                break
        raise RuntimeError(
            f"worker {worker.index} never acked ready (alive={worker.alive()})"
        )

    def check_workers(self) -> int:
        """Reap dead workers and respawn them on the current generation.

        A dead worker's assigned request (if any) is failed into the result
        stream first, so no caller waits forever on a corpse.  Returns how
        many were recycled this call; the lifetime count is :attr:`recycled`.
        """
        recycled = 0
        for slot, worker in enumerate(self._workers):
            if worker.alive():
                continue
            self._fail_assigned(worker, "worker died")
            worker.process.join(timeout=0)
            if not worker.conn.closed:
                worker.conn.close()
            replacement = self._spawn(worker.index)
            self._await_ready(replacement)
            self._workers[slot] = replacement
            self._dispatch_next(replacement)
            recycled += 1
        self._recycled += recycled
        return recycled

    def _fail_assigned(self, worker: PoolWorker, reason: str) -> None:
        if worker.busy is None:
            return
        request_id = worker.busy[0]
        worker.busy = None
        self._results.append(
            (
                "error",
                request_id,
                {"worker": worker.index, "error": reason},
            )
        )

    @property
    def recycled(self) -> int:
        """Lifetime count of workers respawned after death."""
        return self._recycled

    @property
    def workers(self) -> List[PoolWorker]:
        """The live worker handles (read-only view for the front end)."""
        return list(self._workers)

    # ------------------------------------------------------------------ #
    # Request flow
    # ------------------------------------------------------------------ #
    def submit(self, request_id: int, documents: List[Any]) -> None:
        """Hand one request batch to an idle worker, or queue it."""
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        task: _Task = (request_id, documents, time.monotonic())
        for worker in self._workers:
            if worker.busy is None and worker.usable():
                self._dispatch(worker, task)
                return
        self._backlog.append(task)

    def _dispatch(self, worker: PoolWorker, task: _Task) -> None:
        try:
            worker.conn.send(("infer", task[0], task[1], task[2]))
        except (BrokenPipeError, OSError):
            worker.eof = True
            self._backlog.appendleft(task)
            return
        worker.busy = task

    def _dispatch_next(self, worker: PoolWorker) -> None:
        if worker.busy is None and self._backlog and worker.usable():
            self._dispatch(worker, self._backlog.popleft())

    def pump(self, timeout: float = 0.0) -> None:
        """Drain every readable worker pipe and re-dispatch freed workers.

        Waits up to ``timeout`` seconds for *any* pipe to become readable
        (0 = non-blocking sweep).  Also fails requests assigned to workers
        found dead, so the result stream never loses a request silently.
        """
        conns = {
            worker.conn: worker
            for worker in self._workers
            if not worker.eof and not worker.conn.closed
        }
        if conns:
            for conn in _wait_connections(list(conns), timeout=timeout):
                self._drain_worker(conns[conn])
        for worker in self._workers:
            if worker.busy is not None and not worker.alive():
                self._fail_assigned(worker, "worker died mid-request")
        self._reap_generations()

    def _drain_worker(self, worker: PoolWorker) -> None:
        while not worker.conn.closed:
            try:
                if not worker.conn.poll(0):
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                worker.eof = True
                return
            kind = message[0]
            if kind in ("result", "error"):
                worker.busy = None
                self._results.append((kind, message[1], message[2]))
                self._dispatch_next(worker)
            elif kind in ("ready", "swapped"):
                worker.version = int(message[1]["version"])
                worker.info = dict(message[1])
                self._control.append({"kind": kind, **message[1]})
            else:  # diag, stopped
                self._control.append({"kind": kind, **message[1]})

    def take_results(self) -> List[_Result]:
        """Pop every buffered ``(kind, request_id, payload)`` answer."""
        results = list(self._results)
        self._results.clear()
        return results

    def get_result(self, timeout: float = 0.2) -> Optional[_Result]:
        """One ``(kind, request_id, payload)`` result, or None on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            if self._results:
                return self._results.popleft()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            self.pump(timeout=min(remaining, 0.2))

    # ------------------------------------------------------------------ #
    # Hot swap + generation reaping
    # ------------------------------------------------------------------ #
    @property
    def current(self) -> SharedSnapshot:
        """The newest generation (what fresh workers attach to)."""
        return self._generations[-1]

    @property
    def live_generations(self) -> List[int]:
        """Versions whose segments are still linked (oldest first)."""
        return [generation.version for generation in self._generations]

    def swap(self, snapshot: ModelSnapshot, version: int) -> None:
        """Publish ``snapshot`` as ``version`` and broadcast it to the pool.

        Returns immediately after the broadcast: workers ack asynchronously
        (collected by :meth:`pump`/:meth:`poll_control`), and a request
        already in a worker's pipe completes on its starting snapshot —
        the broadcast lands strictly behind it.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        shared = SharedSnapshot.create(snapshot, version=version)
        self._generations.append(shared)
        descriptor = shared.descriptor()
        for worker in self._workers:
            try:
                worker.conn.send(("swap", descriptor))
            except (BrokenPipeError, OSError):
                # A dead worker misses the broadcast; check_workers respawns
                # it on the current (new) generation.
                worker.eof = True

    def poll_control(self) -> List[Dict[str, Any]]:
        """Drain the pipes and pop buffered control payloads (acks, stops).

        Request results drained alongside stay buffered for
        :meth:`take_results`/:meth:`get_result`.
        """
        self.pump(0)
        drained = list(self._control)
        self._control.clear()
        return drained

    def _reap_generations(self) -> None:
        """Unlink generations every live worker has moved past."""
        acked = [
            worker.version
            for worker in self._workers
            if worker.alive() and worker.version is not None
        ]
        if not acked:
            return
        floor = min(acked)
        while len(self._generations) > 1 and self._generations[0].version < floor:
            self._generations.pop(0).unlink()

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def worker_infos(self) -> List[Dict[str, Any]]:
        """The cached identity block of every worker (from its last ack).

        Non-blocking — safe to call from any thread since it reads
        parent-side state only.
        """
        return [dict(worker.info) for worker in self._workers]

    def diagnostics(self, timeout: float = _ACK_TIMEOUT) -> List[Dict[str, Any]]:
        """Ask every worker for a live identity block and await the replies.

        Each reply names the worker's shared segment and whether its engine
        phi shares memory with the attached buffer — the pool-wide
        one-copy assertion is ``len({d['segment']}) == 1`` and all
        ``zero_copy`` flags true.  A busy worker replies after its current
        request, so allow for that in ``timeout``.
        """
        expected = 0
        for worker in self._workers:
            try:
                worker.conn.send(("diag", None))
                expected += 1
            except (BrokenPipeError, OSError):
                worker.eof = True
        replies: List[Dict[str, Any]] = []
        deadline = time.monotonic() + timeout
        while len(replies) < expected and time.monotonic() < deadline:
            self.pump(0.05)
            kept: Deque[Dict[str, Any]] = deque()
            while self._control:
                entry = self._control.popleft()
                if entry.get("kind") == "diag":
                    entry = dict(entry)
                    entry.pop("kind", None)
                    replies.append(entry)
                else:
                    kept.append(entry)
            self._control.extendleft(reversed(kept))
        return replies

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def alive_workers(self) -> int:
        return sum(1 for worker in self._workers if worker.alive())

    def backlog_depth(self) -> int:
        """Requests admitted but not yet dispatched to a worker."""
        return len(self._backlog)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self, timeout: float = 10.0) -> List[Dict[str, Any]]:
        """Stop the pool: drain worker acks, join, unlink every segment.

        Returns the workers' ``stopped`` payloads (telemetry + busy time) so
        the front end can fold the final per-worker metrics into its session.
        Idempotent; stragglers past ``timeout`` are terminated.
        """
        if self._closed:
            return []
        self._closed = True
        self._backlog.clear()
        expected = 0
        for worker in self._workers:
            if worker.alive() and not worker.eof and not worker.conn.closed:
                try:
                    worker.conn.send(("stop", None))
                    expected += 1
                except (BrokenPipeError, OSError):
                    worker.eof = True
        stopped: List[Dict[str, Any]] = []
        deadline = time.monotonic() + timeout
        while len(stopped) < expected and time.monotonic() < deadline:
            self.pump(0.05)
            kept: Deque[Dict[str, Any]] = deque()
            while self._control:
                entry = self._control.popleft()
                if entry.get("kind") == "stopped":
                    entry = dict(entry)
                    entry.pop("kind", None)
                    stopped.append(entry)
                else:
                    kept.append(entry)
            self._control.extendleft(reversed(kept))
            if all(worker.eof or not worker.alive() for worker in self._workers):
                break
        for worker in self._workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if not worker.conn.closed:
                worker.conn.close()
        while self._generations:
            self._generations.pop().unlink()
        return stopped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerPool(workers={self.num_workers}, "
            f"generations={self.live_generations}, closed={self._closed})"
        )
