"""Network serving tier: HTTP front end over a shared-memory worker pool.

The subsystem turning in-process serving (:mod:`repro.serving`) into a
socket-reachable service:

* :mod:`repro.service.shm` — the **only** module allowed to create/unlink
  ``multiprocessing.shared_memory`` segments (invariant SVC001): one phi
  copy per snapshot generation, zero-copy attached by every worker;
* :mod:`repro.service.worker` — the worker-process loop (attach → serve →
  drain-then-swap);
* :mod:`repro.service.pool` — :class:`WorkerPool`, the N-process pool with
  broadcast hot swap, ack-gated segment reaping and dead-worker recycling;
* :mod:`repro.service.http` — :class:`TopicService`, the stdlib-asyncio
  HTTP/1.1 front end (``/infer``, ``/top-topics``, ``/healthz``, ``/stats``,
  Prometheus ``/metrics``) with admission control and request timeouts.

Entry points: ``python -m repro serve --http HOST:PORT`` and
``LDA.serve(http=...)``.
"""

from repro.service.http import ServiceConfig, ServiceStats, TopicService, parse_http_address
from repro.service.pool import WorkerError, WorkerPool
from repro.service.shm import AttachedSnapshot, SharedSnapshot, attach, created_segments

__all__ = [
    "AttachedSnapshot",
    "ServiceConfig",
    "ServiceStats",
    "SharedSnapshot",
    "TopicService",
    "WorkerError",
    "WorkerPool",
    "attach",
    "created_segments",
    "parse_http_address",
]
