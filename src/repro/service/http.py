"""The asyncio HTTP front end of the serving tier.

:class:`TopicService` is the network face of the repo: a stdlib-only
(``asyncio`` + hand-rolled HTTP/1.1, zero new dependencies) front end that
routes requests into a :class:`~repro.service.pool.WorkerPool` sharing one
phi copy across N processes.  The split follows the HTAP lesson: the serving
path (workers folding in θ) and the update path (registry publishes swapping
snapshots) are isolated so neither degrades the other.

Endpoints
---------
* ``POST /infer`` — body ``{"documents": [[token|id, ...], ...]}`` → θ rows
  plus the snapshot version and worker that served them;
* ``GET /top-topics?words=N`` — top words per topic of the current snapshot;
* ``GET /healthz`` — liveness (workers alive, served version);
* ``GET /stats`` — JSON serving stats (p50/p95/p99 latency, utilization);
* ``GET /metrics`` — Prometheus 0.0.4 text from the ``repro.obs`` registry.

Production mechanics
--------------------
* **Admission control** — at most ``max_pending`` requests in flight; excess
  load is shed immediately with 503 rather than queued into a latency cliff.
* **Per-request timeouts** — an admitted request past
  ``request_timeout`` answers 504 and its future is abandoned (the worker's
  late result is dropped on the floor, not delivered to a closed socket).
* **Hot swap** — a background poller watches the attached
  :class:`~repro.streaming.registry.ModelRegistry`; when the current version
  moves it broadcasts the swap across the pool.  In-flight requests finish
  on their starting snapshot; later requests see the new version — the
  in-process :meth:`TopicServer.refresh` contract, held across processes.
* **Self-healing** — the poller also recycles dead workers onto the current
  generation.

Threading model: all service state (pending futures, counters) and every
pool interaction live on the event loop — worker pipes are plain fds, so
results arrive through ``loop.add_reader`` callbacks rather than a pump
thread.  One reader means no locks anywhere in the tier.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.evaluation.coherence import top_words
from repro.obs import Histogram, Telemetry
from repro.serving.snapshot import ModelSnapshot
from repro.service.pool import WorkerError, WorkerPool
from repro.streaming.registry import ModelRegistry

__all__ = ["ServiceConfig", "ServiceStats", "TopicService", "parse_http_address"]

_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def parse_http_address(address: Any) -> Tuple[str, int]:
    """Normalise ``--http`` style addresses to ``(host, port)``.

    Accepts ``"HOST:PORT"``, a bare port (``"8080"`` or ``8080``, host
    defaults to 127.0.0.1) or an existing ``(host, port)`` tuple.
    """
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    if isinstance(address, int):
        return "127.0.0.1", int(address)
    text = str(address).strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        return host or "127.0.0.1", int(port_text)
    return "127.0.0.1", int(text)


@dataclass
class ServiceConfig:
    """Tunables of one :class:`TopicService` (all have serving defaults)."""

    host: str = "127.0.0.1"
    #: Port 0 binds an ephemeral port; read it back from ``service.port``.
    port: int = 0
    num_workers: int = 2
    #: Admission-control bound: requests in flight beyond this are shed (503).
    max_pending: int = 64
    #: Seconds an admitted request may take end to end before 504.
    request_timeout: float = 30.0
    #: Registry/worker poll cadence of the background maintenance task.
    poll_interval: float = 0.25
    strategy: str = "em"
    num_iterations: int = 30
    num_mh_steps: int = 2
    seed: int = 0
    max_batch_size: int = 64
    cache_capacity: int = 4096
    max_body_bytes: int = 8 << 20

    def worker_options(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "num_iterations": self.num_iterations,
            "num_mh_steps": self.num_mh_steps,
            "seed": self.seed,
            "max_batch_size": self.max_batch_size,
            "cache_capacity": self.cache_capacity,
        }


@dataclass
class ServiceStats:
    """Front-end counters since service start (workers keep their own)."""

    requests: int = 0
    rejected: int = 0
    timed_out: int = 0
    errors: int = 0
    hot_swaps: int = 0
    recycled_workers: int = 0


class _Request:
    """One parsed HTTP/1.1 request."""

    __slots__ = ("method", "path", "query", "headers", "body", "keep_alive")

    def __init__(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        self.method = method
        parts = urlsplit(target)
        self.path = parts.path
        self.query = {
            key: values[-1] for key, values in parse_qs(parts.query).items()
        }
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive


class TopicService:
    """HTTP serving over a shared-memory worker pool.

    Parameters
    ----------
    snapshot:
        The model to serve.  Omit when following a ``registry`` that already
        has a published version.
    registry:
        Optional :class:`ModelRegistry` to follow: new published versions are
        broadcast to the pool as hot swaps.
    config:
        :class:`ServiceConfig` tunables.
    telemetry:
        An existing ``repro.obs`` session to record into; by default the
        service owns a buffered session so ``/metrics`` is live out of the
        box.  Probe sites are gated on ``enabled`` either way.
    """

    def __init__(
        self,
        snapshot: Optional[ModelSnapshot] = None,
        registry: Optional[ModelRegistry] = None,
        config: Optional[ServiceConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._registry = registry
        version = 0
        if snapshot is None:
            if registry is None:
                raise ValueError("pass a snapshot or a registry to serve")
            entry = registry.current()
            if entry is None:
                raise ValueError(
                    "registry has no published version; publish a snapshot first"
                )
            snapshot = entry.snapshot
            version = entry.version
        elif registry is not None and registry.current_version is not None:
            version = registry.current_version
        self._snapshot = snapshot
        self._version = version
        self._obs: Telemetry = telemetry if telemetry is not None else Telemetry()
        self._owns_obs = telemetry is None
        self.stats = ServiceStats()
        self._latency = Histogram()
        self._worker_busy: Dict[int, float] = {}
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._next_request_id = 0
        self._pool: Optional[WorkerPool] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional["asyncio.Server"] = None
        self._poller: Optional["asyncio.Task[None]"] = None
        self._thread: Optional[threading.Thread] = None
        self._reader_fds: set = set()
        self._ready = threading.Event()
        self._stopping = threading.Event()
        self._started_at = 0.0
        self.host = self.config.host
        self.port = self.config.port

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "TopicService":
        """Boot the pool, bind the socket and serve from a background thread."""
        if self._thread is not None:
            raise RuntimeError("TopicService already started")
        self._pool = WorkerPool(
            self._snapshot,
            num_workers=self.config.num_workers,
            options=self.config.worker_options(),
            version=self._version,
        )
        self._started_at = time.monotonic()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            self.close()
            raise RuntimeError("TopicService failed to start within 30s")
        return self

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._startup())
        finally:
            self._ready.set()
        self._loop.run_forever()
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()

    async def _startup(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], int(sockname[1])
        self._sync_readers()
        self._poller = asyncio.get_running_loop().create_task(self._poll_forever())

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def served_version(self) -> int:
        return self._version

    def close(self) -> None:
        """Stop accepting, fail in-flight futures, stop the pool (idempotent)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result(
                    timeout=10.0
                )
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if self._pool is not None:
            stopped = self._pool.close()
            obs = self._obs
            if obs.enabled:
                for payload in stopped:
                    obs.absorb(payload.get("telemetry"))
        if self._owns_obs:
            self._obs.close()

    async def _shutdown(self) -> None:
        if self._poller is not None:
            self._poller.cancel()
        if self._loop is not None:
            for fd in list(self._reader_fds):
                self._loop.remove_reader(fd)
            self._reader_fds.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()

    def __enter__(self) -> "TopicService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Background maintenance: results, registry, worker health
    # ------------------------------------------------------------------ #
    def _sync_readers(self) -> None:
        """Register every usable worker pipe with the event loop.

        Pipes of dead/EOF workers are dropped from the reader set (their
        callbacks would spin on EOF); fresh pipes from recycles are added.
        """
        assert self._pool is not None and self._loop is not None
        usable = {
            worker.conn.fileno()
            for worker in self._pool.workers
            if not worker.eof and not worker.conn.closed and worker.alive()
        }
        for fd in list(self._reader_fds - usable):
            self._loop.remove_reader(fd)
            self._reader_fds.discard(fd)
        for fd in usable - self._reader_fds:
            self._loop.add_reader(fd, self._on_worker_readable)
            self._reader_fds.add(fd)

    def _on_worker_readable(self) -> None:
        """A worker pipe has data: drain the pool and settle futures.

        Runs on the event loop (fd-readiness callback), so it may touch the
        pool and the pending map directly.
        """
        if self._pool is None:
            return
        try:
            self._pool.pump(0)
        except (EOFError, OSError):  # pragma: no cover - torn pipe
            pass
        for kind, request_id, payload in self._pool.take_results():
            self._resolve(kind, request_id, payload)

    def _resolve(self, kind: str, request_id: int, payload: Dict[str, Any]) -> None:
        future = self._pending.pop(request_id, None)
        worker = payload.get("worker")
        if worker is not None and "seconds" in payload:
            self._worker_busy[int(worker)] = self._worker_busy.get(
                int(worker), 0.0
            ) + float(payload["seconds"])
        obs = self._obs
        if obs.enabled:
            obs.gauge("service.queue_depth", float(len(self._pending)))
            if "queue_seconds" in payload:
                obs.observe("service.queue_seconds", float(payload["queue_seconds"]))
            if "seconds" in payload:
                obs.observe("service.worker_task_seconds", float(payload["seconds"]))
        if future is None or future.done():
            # Timed out (504 already sent) or cancelled at shutdown: the
            # late result is dropped, never delivered to a closed exchange.
            return
        if kind == "result":
            future.set_result(payload)
        else:
            future.set_exception(WorkerError(payload.get("error", "worker failed")))

    async def _poll_forever(self) -> None:
        assert self._pool is not None
        while True:
            await asyncio.sleep(self.config.poll_interval)
            try:
                drained = self._pool.poll_control()
            except (EOFError, OSError):  # pragma: no cover - torn pipe
                drained = []
            for kind, request_id, payload in self._pool.take_results():
                self._resolve(kind, request_id, payload)
            obs = self._obs
            if obs.enabled:
                for message in drained:
                    if message.get("telemetry"):
                        obs.absorb(message["telemetry"])
            # Drop readers for corpses before check_workers closes their
            # pipes, then re-register whatever pipes the recycle created.
            self._sync_readers()
            recycled = self._pool.check_workers()
            if recycled:
                self.stats.recycled_workers += recycled
                if obs.enabled:
                    obs.count("service.worker_recycles", recycled)
                for kind, request_id, payload in self._pool.take_results():
                    self._resolve(kind, request_id, payload)
                self._sync_readers()
            self._maybe_hot_swap()

    def _maybe_hot_swap(self) -> None:
        assert self._pool is not None
        if self._registry is None:
            return
        current = self._registry.current_version
        if current is None or current == self._version:
            return
        entry = self._registry.current()
        if entry is None or entry.version == self._version:
            return
        previous = self._version
        self._pool.swap(entry.snapshot, entry.version)
        self._snapshot = entry.snapshot
        self._version = entry.version
        self.stats.hot_swaps += 1
        obs = self._obs
        if obs.enabled:
            obs.count("service.hot_swaps")
            obs.event(
                "service_hot_swap", from_version=previous, to_version=entry.version
            )

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                await self._dispatch(request, writer)
                if not request.keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_Request]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, http_version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise ValueError("malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > self.config.max_body_bytes:
            raise ValueError(f"content-length {length} out of bounds")
        body = await reader.readexactly(length) if length else b""
        connection = headers.get("connection", "").lower()
        keep_alive = (
            connection != "close"
            if http_version.upper() != "HTTP/1.0"
            else connection == "keep-alive"
        )
        return _Request(method.upper(), target, headers, body, keep_alive)

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        request: _Request,
        status: int,
        body: bytes,
        content_type: str = "application/json",
    ) -> None:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            500: "Internal Server Error",
            503: "Service Unavailable",
            504: "Gateway Timeout",
        }.get(status, "OK")
        connection = "keep-alive" if request.keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        request: _Request,
        status: int,
        payload: Dict[str, Any],
    ) -> None:
        await self._respond(
            writer, request, status, json.dumps(payload).encode("utf-8")
        )

    async def _dispatch(self, request: _Request, writer: asyncio.StreamWriter) -> None:
        route = (request.method, request.path)
        if route == ("POST", "/infer"):
            await self._handle_infer(request, writer)
        elif route == ("GET", "/top-topics"):
            await self._handle_top_topics(request, writer)
        elif route == ("GET", "/healthz"):
            await self._handle_healthz(request, writer)
        elif route == ("GET", "/stats"):
            await self._handle_stats(request, writer)
        elif route == ("GET", "/metrics"):
            await self._handle_metrics(request, writer)
        elif request.path in ("/infer", "/top-topics", "/healthz", "/stats", "/metrics"):
            await self._respond_json(
                writer, request, 405, {"error": f"method {request.method} not allowed"}
            )
        else:
            await self._respond_json(
                writer, request, 404, {"error": f"no route {request.path}"}
            )

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    async def _handle_infer(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        assert self._pool is not None
        obs = self._obs
        # Admission control first: shedding costs O(1), queueing costs a
        # latency cliff for everyone already admitted.
        if len(self._pending) >= self.config.max_pending:
            self.stats.rejected += 1
            if obs.enabled:
                obs.count("service.admission_rejects")
            await self._respond_json(
                writer,
                request,
                503,
                {
                    "error": "overloaded",
                    "in_flight": len(self._pending),
                    "max_pending": self.config.max_pending,
                },
            )
            return
        try:
            documents = self._parse_infer_body(request.body)
        except ValueError as error:
            await self._respond_json(writer, request, 400, {"error": str(error)})
            return
        started = time.monotonic()
        request_id = self._next_request_id
        self._next_request_id += 1
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._pending[request_id] = future
        if obs.enabled:
            obs.gauge("service.queue_depth", float(len(self._pending)))
        self._pool.submit(request_id, documents)
        try:
            payload = await asyncio.wait_for(
                asyncio.shield(future), timeout=self.config.request_timeout
            )
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            self.stats.timed_out += 1
            if obs.enabled:
                obs.count("service.timeouts")
            await self._respond_json(
                writer,
                request,
                504,
                {"error": "timeout", "timeout_seconds": self.config.request_timeout},
            )
            return
        except (WorkerError, asyncio.CancelledError) as error:
            self.stats.errors += 1
            if obs.enabled:
                obs.count("service.errors")
            await self._respond_json(
                writer, request, 500, {"error": str(error) or "service stopping"}
            )
            return
        elapsed = time.monotonic() - started
        self.stats.requests += 1
        self._latency.record(elapsed)
        if obs.enabled:
            obs.count("service.requests")
            obs.observe("service.request_seconds", elapsed)
        await self._respond_json(
            writer,
            request,
            200,
            {
                "theta": payload["theta"],
                "version": payload["version"],
                "worker": payload["worker"],
                "num_topics": self._snapshot.num_topics,
            },
        )

    def _parse_infer_body(self, body: bytes) -> List[List[Any]]:
        try:
            parsed = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"body is not valid JSON: {error}") from None
        documents = parsed.get("documents") if isinstance(parsed, dict) else None
        if not isinstance(documents, list) or not documents:
            raise ValueError('body must be {"documents": [[token|id, ...], ...]}')
        for document in documents:
            if not isinstance(document, list):
                raise ValueError("each document must be a list of tokens or ids")
            for token in document:
                if not isinstance(token, (str, int)):
                    raise ValueError("tokens must be strings or integer word ids")
        return documents

    async def _handle_top_topics(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        try:
            num_words = int(request.query.get("words", "10"))
            if num_words <= 0:
                raise ValueError
        except ValueError:
            await self._respond_json(
                writer, request, 400, {"error": "words must be a positive integer"}
            )
            return
        topics = top_words(self._snapshot.phi, self._snapshot.vocabulary, num_words)
        await self._respond_json(
            writer,
            request,
            200,
            {"version": self._version, "topics": topics},
        )

    async def _handle_healthz(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        assert self._pool is not None
        alive = self._pool.alive_workers()
        healthy = alive > 0
        await self._respond_json(
            writer,
            request,
            200 if healthy else 503,
            {
                "status": "ok" if healthy else "degraded",
                "workers_alive": alive,
                "workers": self._pool.num_workers,
                "version": self._version,
            },
        )

    def _stats_payload(self) -> Dict[str, Any]:
        assert self._pool is not None
        uptime = max(time.monotonic() - self._started_at, 1e-9)
        utilization = {
            str(worker): busy / uptime for worker, busy in sorted(self._worker_busy.items())
        }
        percentiles = (
            {f"p{q}_ms": self._latency.percentile(q) * 1e3 for q in (50, 95, 99)}
            if self._latency.count
            else {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        )
        return {
            "requests": self.stats.requests,
            "rejected": self.stats.rejected,
            "timed_out": self.stats.timed_out,
            "errors": self.stats.errors,
            "in_flight": len(self._pending),
            "max_pending": self.config.max_pending,
            "workers": self._pool.num_workers,
            "workers_alive": self._pool.alive_workers(),
            "recycled_workers": self.stats.recycled_workers,
            "worker_utilization": utilization,
            "hot_swaps": self.stats.hot_swaps,
            "served_version": self._version,
            "live_generations": self._pool.live_generations,
            "uptime_seconds": uptime,
            "latency_ms": percentiles,
        }

    async def _handle_stats(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        await self._respond_json(writer, request, 200, self._stats_payload())

    async def _handle_metrics(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        obs = self._obs
        if obs.enabled:
            # Point-in-time gauges are synced at scrape, matching Prometheus
            # pull semantics.
            obs.gauge("service.queue_depth", float(len(self._pending)))
            obs.gauge("service.in_flight", float(len(self._pending)))
            obs.gauge(
                "service.workers_alive",
                float(self._pool.alive_workers() if self._pool else 0),
            )
            obs.gauge(
                "service.uptime_seconds",
                float(max(time.monotonic() - self._started_at, 0.0)),
            )
        text = self._obs.registry.to_prometheus()
        await self._respond(
            writer,
            request,
            200,
            text.encode("utf-8"),
            content_type=_PROMETHEUS_CONTENT_TYPE,
        )

    # ------------------------------------------------------------------ #
    def diagnostics(self) -> List[Dict[str, Any]]:
        """Per-worker identity blocks (segment name, zero-copy proof).

        Served from each worker's last ready/swap ack — the event loop owns
        the pipes, so a cross-thread round-trip here would race it, and the
        ack already carries the full identity block.
        """
        assert self._pool is not None
        return self._pool.worker_infos()

    def serve_forever(self) -> None:
        """Block the calling thread until interrupted (CLI foreground mode)."""
        if self._thread is None:
            self.start()
        assert self._thread is not None
        try:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        finally:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TopicService(url={self.url!r}, workers={self.config.num_workers}, "
            f"version={self._version}, requests={self.stats.requests})"
        )
