"""The worker-process loop of the serving pool: attach, serve, hot-swap.

Each worker is a plain OS process running :func:`_worker_main` (module-level,
per invariant MP001, so it pickles under any start method), speaking an
ordered message protocol over **one duplex pipe** to the pool:

* parent → worker: ``("infer", request_id, documents, enqueued_at)``,
  ``("swap", descriptor)``, ``("diag", None)``, ``("stop", None)``;
* worker → parent: ``("ready"|"swapped"|"diag", info)``, ``("result",
  request_id, payload)``, ``("error", request_id, payload)``, ``("stopped",
  info)``.

A private pipe per worker (instead of one shared task queue) is what makes
the pool kill-safe: a worker that dies mid-request corrupts nothing shared —
its assigned request is failed by the parent and every other worker's
channel is untouched.  (A shared ``multiprocessing.Queue`` would leave its
internal lock held by the corpse, wedging the whole pool.)  The parent
dispatches at most one request per worker at a time, so a ``swap`` is never
stuck behind a backlog: a request already dispatched completes against the
snapshot it started with, then the swap applies — exactly
:meth:`TopicServer.refresh`'s in-process guarantee lifted across processes.

The loop body:

* **attach** — map the shared snapshot segment named by the descriptor
  (:func:`repro.service.shm.attach`) and build a
  :class:`~repro.serving.server.TopicServer` over a zero-copy
  :class:`~repro.serving.infer.InferenceEngine` — micro-batching and the LRU
  result cache therefore work per worker exactly as in-process serving does;
* **swap** — close the current server (draining anything queued — the
  :meth:`TopicServer.close` promise), release the old attachment, re-attach
  to the new segment and ack.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, List

import numpy as np

from repro.obs import Telemetry, use_telemetry
from repro.serving.infer import InferenceEngine
from repro.serving.server import TopicServer
from repro.service.shm import AttachedSnapshot, attach

__all__ = ["_worker_main"]

#: Seconds a worker blocks on its pipe per poll (idle wake-up cadence).
_POLL_SECONDS = 0.1


def _build_server(
    attached: AttachedSnapshot, worker_index: int, options: Dict[str, Any]
) -> TopicServer:
    engine = InferenceEngine(
        attached.snapshot,
        strategy=str(options.get("strategy", "em")),
        num_iterations=int(options.get("num_iterations", 30)),
        num_mh_steps=int(options.get("num_mh_steps", 2)),
        # Distinct per-worker streams from one service seed: spawn-style
        # seed-sequence keying, never global state (RNG discipline).
        seed=np.random.default_rng(
            [int(options.get("seed", 0)), worker_index, attached.version]
        ),
    )
    return TopicServer(
        engine,
        max_batch_size=int(options.get("max_batch_size", 64)),
        cache_capacity=int(options.get("cache_capacity", 4096)),
    )


def _encode_documents(
    documents: List[Any], server: TopicServer
) -> List[np.ndarray]:
    """Normalise wire documents (token or id lists) to in-vocabulary ids.

    String tokens go through the snapshot vocabulary with OOV dropping; raw
    ids are clamped to ``[0, V)`` the same way the registry-serving path
    drops ids a swapped-in snapshot has never seen.
    """
    vocab_size = server.engine.snapshot.vocabulary_size
    encoded: List[np.ndarray] = []
    for document in documents:
        ids = server._encode_one(document)
        if ids.size:
            ids = ids[(ids >= 0) & (ids < vocab_size)]
        encoded.append(ids)
    return encoded


def _worker_info(
    worker_index: int, attached: AttachedSnapshot, server: TopicServer
) -> Dict[str, Any]:
    """The identity block acked on ready/swap and reported by diag.

    ``zero_copy`` is the buffer-identity proof the acceptance criteria ask
    for: the engine's phi *is* the attached shared view (``np.shares_memory``
    inside the worker), and every worker names its segment so the parent can
    assert all N name the same one.
    """
    return {
        "worker": worker_index,
        "segment": attached.segment_name,
        "version": attached.version,
        "zero_copy": bool(
            np.shares_memory(server.engine.snapshot.phi, attached.phi_view)
        ),
    }


def _worker_main(
    worker_index: int,
    descriptor: Dict[str, Any],
    options: Dict[str, Any],
    conn: Any,
) -> None:
    """Worker-process entry point (module-level for pickling, MP001)."""
    session = Telemetry()
    attached = attach(descriptor)
    server = _build_server(attached, worker_index, options)
    busy_seconds = 0.0
    requests = 0
    conn.send(("ready", _worker_info(worker_index, attached, server)))
    try:
        with use_telemetry(session):
            while True:
                if not conn.poll(_POLL_SECONDS):
                    continue
                try:
                    message = conn.recv()
                except EOFError:
                    # Parent vanished; nothing left to serve.
                    return
                kind = message[0]
                if kind == "stop":
                    conn.send(
                        (
                            "stopped",
                            {
                                "worker": worker_index,
                                "busy_seconds": busy_seconds,
                                "requests": requests,
                                "telemetry": session.export_payload(),
                            },
                        )
                    )
                    return
                if kind == "diag":
                    info = _worker_info(worker_index, attached, server)
                    info["busy_seconds"] = busy_seconds
                    info["requests"] = requests
                    conn.send(("diag", info))
                elif kind == "swap":
                    descriptor = message[1]
                    if descriptor["version"] == attached.version:
                        conn.send(
                            ("swapped", _worker_info(worker_index, attached, server))
                        )
                        continue
                    # Drain-then-swap: whatever the old server still owes is
                    # answered on the outgoing snapshot before its buffer is
                    # released.
                    server.close()
                    del server
                    retiring = attached
                    attached = attach(descriptor)
                    retiring.close()
                    server = _build_server(attached, worker_index, options)
                    conn.send(
                        ("swapped", _worker_info(worker_index, attached, server))
                    )
                elif kind == "infer":
                    _, request_id, documents, enqueued_at = message
                    started = time.monotonic()
                    try:
                        theta = server.infer_batch(
                            _encode_documents(documents, server)
                        )
                    except Exception:
                        conn.send(
                            (
                                "error",
                                request_id,
                                {
                                    "worker": worker_index,
                                    "version": attached.version,
                                    "error": traceback.format_exc(),
                                },
                            )
                        )
                        continue
                    elapsed = time.monotonic() - started
                    busy_seconds += elapsed
                    requests += 1
                    conn.send(
                        (
                            "result",
                            request_id,
                            {
                                "worker": worker_index,
                                "version": attached.version,
                                "theta": theta.tolist(),
                                "seconds": elapsed,
                                "queue_seconds": max(0.0, started - enqueued_at),
                            },
                        )
                    )
    finally:
        session.close()
        attached.close()
