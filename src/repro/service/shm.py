"""Shared-memory snapshot lifecycle: one phi copy, N worker processes.

The serving tier's whole memory story lives in this module.  A published
:class:`~repro.serving.snapshot.ModelSnapshot` is materialised **once** into a
``multiprocessing.shared_memory`` segment by :meth:`SharedSnapshot.create`;
every worker process then maps the same segment read-only through
:func:`attach` and serves θ inference against zero-copy NumPy views of it
(via :meth:`ModelSnapshot.adopt`).  Between hot swaps phi is strictly
read-only — the segment is filled before any worker sees its name and never
written again — so N workers cost one phi, not N.

**Invariant SVC001** (enforced by ``repro.analysis``, see
``docs/invariants.md``): ``SharedMemory`` segments may only be created or
unlinked here.  Shared memory outlives the process that created it — a
segment created ad hoc in some other module and leaked on a crash stays
leaked until reboot.  Routing every create/unlink through this module keeps
the accounting in one place: :func:`created_segments` lists every live
segment this process owns, and :meth:`SharedSnapshot.unlink` is the single
release path.

Attaching has a CPython footgun this module hides: on 3.10–3.12 every
``SharedMemory(name=...)`` attach auto-registers the segment with the
``resource_tracker``, which then *unlinks it at interpreter exit* — the first
worker to die would tear the model out from under its siblings.  3.13 added
``track=False`` for exactly this; on older interpreters we unregister the
attachment manually.  Only the creating process tracks (and unlinks) a
segment.
"""

from __future__ import annotations

import gc
import inspect
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Dict, List, Optional

import numpy as np

from repro.corpus.vocabulary import Vocabulary
from repro.serving.snapshot import ModelSnapshot

__all__ = [
    "AttachedSnapshot",
    "SharedSnapshot",
    "attach",
    "created_segments",
]

_FLOAT = np.dtype(np.float64)

#: Whether this interpreter's SharedMemory supports ``track=`` (3.13+).
_HAS_TRACK_KWARG = "track" in inspect.signature(SharedMemory.__init__).parameters

#: Live segments created (and therefore owned) by this process, by name.
#: :meth:`SharedSnapshot.unlink` removes entries; anything left here at
#: shutdown is a leak the owner forgot to release.
_CREATED: Dict[str, "SharedSnapshot"] = {}


def created_segments() -> List[str]:
    """Names of the shared-memory segments this process currently owns."""
    return sorted(_CREATED)


def _attach_segment(name: str) -> SharedMemory:
    """Attach to an existing segment without adopting unlink responsibility.

    Pre-3.13 interpreters lack ``track=False`` and auto-register every attach
    with the resource tracker.  Unregistering *after* the fact is the popular
    workaround but is wrong here: the fork family shares one tracker process,
    so an attacher's unregister would erase the **creator's** crash-cleanup
    registration too.  Suppressing registration for the duration of the
    attach call leaves the creator's entry untouched.
    """
    if _HAS_TRACK_KWARG:
        return SharedMemory(name=name, create=False, track=False)
    original_register = resource_tracker.register
    try:
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        return SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original_register  # type: ignore[assignment]


def _phi_nbytes(num_topics: int, vocab_size: int) -> int:
    return num_topics * vocab_size * _FLOAT.itemsize


class AttachedSnapshot:
    """A worker-side, zero-copy view of a :class:`SharedSnapshot` segment.

    Holds the attachment open for as long as the adopted
    :class:`ModelSnapshot` is in use; :meth:`close` drops the NumPy views and
    unmaps the segment (never unlinking — that is the owner's job).
    """

    def __init__(self, descriptor: Dict[str, Any]) -> None:
        self._descriptor = dict(descriptor)
        self._segment: Optional[SharedMemory] = _attach_segment(descriptor["segment"])
        num_topics = int(descriptor["num_topics"])
        vocab_size = int(descriptor["vocabulary_size"])
        phi = np.ndarray(
            (num_topics, vocab_size), dtype=_FLOAT, buffer=self._segment.buf
        )
        alpha = np.ndarray(
            (num_topics,),
            dtype=_FLOAT,
            buffer=self._segment.buf,
            offset=_phi_nbytes(num_topics, vocab_size),
        )
        phi.flags.writeable = False
        alpha.flags.writeable = False
        self.phi_view = phi
        vocabulary = Vocabulary.from_serializable(descriptor["vocabulary"]).freeze()
        self._snapshot: Optional[ModelSnapshot] = ModelSnapshot.adopt(
            phi,
            alpha,
            beta=float(descriptor["beta"]),
            vocabulary=vocabulary,
            metadata=descriptor.get("metadata"),
        )

    @property
    def snapshot(self) -> ModelSnapshot:
        """The adopted snapshot; its phi IS the shared buffer (no copy)."""
        if self._snapshot is None:
            raise RuntimeError("AttachedSnapshot is closed")
        return self._snapshot

    @property
    def segment_name(self) -> str:
        return str(self._descriptor["segment"])

    @property
    def version(self) -> int:
        return int(self._descriptor["version"])

    def close(self) -> None:
        """Drop the views and unmap the segment (idempotent, never unlinks).

        The mmap cannot close while NumPy still exports its buffer, so the
        caller must have released every engine/server built over
        :attr:`snapshot` first; a stubborn lingering export downgrades to a
        no-op unmap (the map is reclaimed at process exit anyway) rather
        than raising into the swap path.
        """
        if self._segment is None:
            return
        self._snapshot = None
        self.phi_view = None  # type: ignore[assignment]
        gc.collect()
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - exports still alive
            pass
        self._segment = None


class SharedSnapshot:
    """Owner-side handle on one snapshot generation in shared memory."""

    def __init__(self, segment: SharedMemory, descriptor: Dict[str, Any]) -> None:
        self._segment: Optional[SharedMemory] = segment
        self._descriptor = descriptor

    @classmethod
    def create(cls, snapshot: ModelSnapshot, version: int = 0) -> "SharedSnapshot":
        """Materialise ``snapshot`` into a fresh shared segment (the ONE copy)."""
        num_topics = snapshot.num_topics
        vocab_size = snapshot.vocabulary_size
        nbytes = _phi_nbytes(num_topics, vocab_size) + num_topics * _FLOAT.itemsize
        segment = SharedMemory(create=True, size=nbytes)
        phi = np.ndarray((num_topics, vocab_size), dtype=_FLOAT, buffer=segment.buf)
        phi[:] = snapshot.phi
        alpha = np.ndarray(
            (num_topics,),
            dtype=_FLOAT,
            buffer=segment.buf,
            offset=_phi_nbytes(num_topics, vocab_size),
        )
        alpha[:] = snapshot.alpha
        del phi, alpha
        descriptor: Dict[str, Any] = {
            "segment": segment.name,
            "version": int(version),
            "num_topics": num_topics,
            "vocabulary_size": vocab_size,
            "beta": snapshot.beta,
            "vocabulary": snapshot.vocabulary.to_serializable(),
            "metadata": snapshot.metadata,
        }
        shared = cls(segment, descriptor)
        _CREATED[segment.name] = shared
        return shared

    def descriptor(self) -> Dict[str, Any]:
        """The JSON/pickle-safe attachment recipe handed to workers."""
        return dict(self._descriptor)

    @property
    def segment_name(self) -> str:
        return str(self._descriptor["segment"])

    @property
    def version(self) -> int:
        return int(self._descriptor["version"])

    @property
    def nbytes(self) -> int:
        return 0 if self._segment is None else self._segment.size

    def unlink(self) -> None:
        """Release the segment system-wide (idempotent).

        Safe while workers are still mapped: POSIX shared memory is
        reference-counted, so the pages survive until the last attachment
        closes — unlink only removes the *name*, preventing new attaches and
        guaranteeing eventual reclamation.
        """
        if self._segment is None:
            return
        name = self._segment.name
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - owner kept a view alive
            pass
        self._segment.unlink()
        self._segment = None
        _CREATED.pop(name, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedSnapshot(segment={self.segment_name!r}, "
            f"version={self.version}, nbytes={self.nbytes})"
        )


def attach(descriptor: Dict[str, Any]) -> AttachedSnapshot:
    """Attach to a segment created by :meth:`SharedSnapshot.create`."""
    return AttachedSnapshot(descriptor)
