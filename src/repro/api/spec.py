"""The declarative model description: :class:`ModelSpec`.

A :class:`ModelSpec` is the single source of truth for *what* model to train
and *how* to execute it: the algorithm (any key of
:data:`repro.samplers.registry.SAMPLER_REGISTRY`), the execution kernel, the
Dirichlet hyper-parameters, the execution backend (``serial``, ``parallel``
or ``online``) with its backend-specific options, and the seed.  It validates
once, at construction — through the same
:func:`repro.samplers.base.validate_hyperparameters` path every sampler
constructor uses — and then *lowers* into the existing configuration objects
(:class:`~repro.core.warplda.WarpLDAConfig`,
:class:`~repro.training.parallel.TrainerConfig`,
:class:`~repro.streaming.online.OnlineTrainerConfig`) via the backend
registry in :mod:`repro.api.backends`.

Specs are JSON-stable: ``to_dict``/``from_dict`` round-trip exactly,
``from_dict`` rejects unknown keys, and ``save``/``load`` move them through
spec files.  :meth:`repro.api.LDA.save` embeds the spec dict in the snapshot
metadata under :data:`SPEC_METADATA_KEY`, so any saved model reloads as a
ready :class:`~repro.api.LDA`.
"""

from __future__ import annotations

import json
import numbers
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Union

from repro.api.backends import BACKEND_REGISTRY, get_backend
from repro.samplers.base import validate_hyperparameters
from repro.samplers.registry import SAMPLER_REGISTRY

__all__ = ["ModelSpec", "ALGORITHMS", "BACKEND_NAMES", "SPEC_METADATA_KEY"]

#: Algorithms a spec may name (the registry's CLI spellings).
ALGORITHMS = tuple(sorted(SAMPLER_REGISTRY))

#: Execution backends a spec may name (the backend registry's keys).
BACKEND_NAMES = tuple(sorted(BACKEND_REGISTRY))

#: Key under which :meth:`repro.api.LDA.save` embeds the spec dict in
#: :class:`~repro.serving.snapshot.ModelSnapshot` metadata.
SPEC_METADATA_KEY = "model_spec"


@dataclass(frozen=True)
class ModelSpec:
    """One declarative description of an LDA model and its execution.

    Attributes
    ----------
    num_topics:
        Number of topics ``K``.
    algorithm:
        Sampler name, one of :data:`ALGORITHMS`
        (``warplda``, ``cgs``, ``sparselda``, ``aliaslda``, ``fpluslda``,
        ``lightlda``).
    alpha:
        Document Dirichlet parameter: a positive scalar, a length-``K``
        sequence (serial backend only), or ``None`` for the paper's 50/K.
    beta:
        Symmetric word Dirichlet parameter.
    num_mh_steps:
        MH proposals per token per phase (WarpLDA / LightLDA only; ignored
        by the exact samplers, like the constructors it lowers to).
    kernel:
        ``"slab"`` (vectorised kernels), ``"scalar"`` (legacy loops) or
        ``"jit"`` (WarpLDA's numba inner chains; silently identical to
        ``"slab"`` when numba is unavailable).
    threads:
        Worker threads for the slab kernels' bucket dispatch: a positive
        int, or ``None`` to defer to the ``REPRO_THREADS`` environment
        variable (default 1).  Thread count never changes results — the
        sampled trajectory is bit-identical for every value.
    word_proposal:
        WarpLDA's word-proposal strategy, ``"mixture"`` or ``"alias"``
        (ignored by the other algorithms).
    backend:
        Execution backend: ``"serial"`` (one in-process sampler),
        ``"parallel"`` (:class:`~repro.training.parallel.ParallelTrainer`)
        or ``"online"`` (:class:`~repro.streaming.online.OnlineTrainer`
        behind a :class:`~repro.streaming.pipeline.StreamingPipeline`).
    backend_options:
        Backend-specific knobs; unknown keys are rejected.
        ``parallel``: ``num_workers``, ``iterations_per_epoch``,
        ``backend`` (``"process"``/``"inline"``).
        ``online``: ``window_docs``, ``sweeps_per_batch``, ``decay``,
        ``publish_every``, ``batch_docs``.
    seed:
        Integer seed controlling the full trajectory; ``None`` draws OS
        entropy (and forfeits reproducibility).
    telemetry:
        Optional path for the :mod:`repro.obs` JSONL trace.  When set,
        :class:`repro.api.LDA` activates a telemetry session around every
        ``fit``/``partial_fit`` and writes the metrics digest next to the
        trace (``out.jsonl`` → ``out.metrics.json``) on close.  ``None``
        (the default) keeps the zero-overhead no-op telemetry.  Telemetry
        never affects the sampled trajectory — instrumented and plain runs
        are bit-identical.
    """

    num_topics: int = 20
    algorithm: str = "warplda"
    alpha: Optional[Union[float, Sequence[float]]] = None
    beta: float = 0.01
    num_mh_steps: int = 2
    kernel: str = "slab"
    threads: Optional[int] = None
    word_proposal: str = "mixture"
    backend: str = "serial"
    backend_options: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    telemetry: Optional[str] = None

    def __post_init__(self) -> None:
        if self.algorithm not in SAMPLER_REGISTRY:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; choose from {ALGORITHMS}"
            )
        # Normalise alpha to a JSON-stable form up front: any array-like
        # (list, tuple, numpy vector) becomes a list of floats, numpy
        # scalars become plain floats — to_json/save must never crash on a
        # spec that validated.
        alpha = self.alpha
        if alpha is not None and not isinstance(alpha, (int, float)):
            try:
                alpha = [float(a) for a in alpha]
            except TypeError:  # 0-d array / numpy scalar
                alpha = float(alpha)
            object.__setattr__(self, "alpha", alpha)
        validate_hyperparameters(self.num_topics, alpha, self.beta)
        if self.num_mh_steps <= 0:
            raise ValueError(
                f"num_mh_steps must be positive, got {self.num_mh_steps}"
            )
        if self.kernel not in ("slab", "scalar", "jit"):
            raise ValueError(
                f"kernel must be 'slab', 'scalar' or 'jit', got {self.kernel!r}"
            )
        if self.threads is not None:
            if isinstance(self.threads, bool) or not isinstance(
                self.threads, numbers.Integral
            ):
                raise ValueError(
                    f"threads must be an int or None, got {self.threads!r}"
                )
            if self.threads <= 0:
                raise ValueError(f"threads must be positive, got {self.threads}")
            object.__setattr__(self, "threads", int(self.threads))
        if self.word_proposal not in ("mixture", "alias"):
            raise ValueError(
                f"word_proposal must be 'mixture' or 'alias', got "
                f"{self.word_proposal!r}"
            )
        backend_impl = get_backend(self.backend)
        options = dict(self.backend_options or {})
        unknown = set(options) - backend_impl.option_keys
        if unknown:
            raise ValueError(
                f"unknown {self.backend!r} backend options {sorted(unknown)}; "
                f"allowed: {sorted(backend_impl.option_keys) or 'none'}"
            )
        object.__setattr__(self, "backend_options", options)
        if self.seed is not None:
            if isinstance(self.seed, bool) or not isinstance(
                self.seed, numbers.Integral
            ):
                raise ValueError(
                    f"seed must be an int or None, got {self.seed!r}"
                )
            # numpy integers (seed sweeps over np.arange) become plain ints
            # so the spec stays JSON-stable.
            object.__setattr__(self, "seed", int(self.seed))
        if self.telemetry is not None:
            # Accept Path objects but store the JSON-stable string form.
            if not isinstance(self.telemetry, (str, Path)):
                raise ValueError(
                    f"telemetry must be a path or None, got {self.telemetry!r}"
                )
            object.__setattr__(self, "telemetry", str(self.telemetry))
        # Backend-specific consistency (e.g. vector alpha is serial-only) is
        # delegated to the lowering path, so a spec that constructs is a
        # spec that lowers.
        backend_impl.validate(self)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form; inverse of :meth:`from_dict`."""
        return {
            "num_topics": self.num_topics,
            "algorithm": self.algorithm,
            "alpha": list(self.alpha) if isinstance(self.alpha, list) else self.alpha,
            "beta": self.beta,
            "num_mh_steps": self.num_mh_steps,
            "kernel": self.kernel,
            "threads": self.threads,
            "word_proposal": self.word_proposal,
            "backend": self.backend,
            "backend_options": dict(self.backend_options),
            "seed": self.seed,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModelSpec":
        """Build a spec from a (possibly partial) dict; unknown keys raise.

        Missing keys take the dataclass defaults, so a spec file only needs
        to name what it overrides.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ModelSpec keys {sorted(unknown)}; known keys: "
                f"{sorted(known)}"
            )
        return cls(**dict(data))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ModelSpec":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"a ModelSpec document must be a JSON object, got {type(data).__name__}")
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec as a JSON file; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ModelSpec":
        """Read a spec written by :meth:`save` (or by hand)."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------ #
    def with_options(self, **overrides: Any) -> "ModelSpec":
        """A copy with top-level fields replaced (re-validated)."""
        return replace(self, **overrides)

    def with_backend(self, backend: str, **options: Any) -> "ModelSpec":
        """A copy targeting another backend with fresh backend options."""
        return replace(self, backend=backend, backend_options=options)
