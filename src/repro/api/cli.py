"""``python -m repro`` — the spec-driven command line.

Four subcommands ride the :class:`~repro.api.estimator.LDA` facade:

``train``
    Batch training (serial or parallel backend per the spec), optionally
    exporting a serving snapshot with the spec embedded::

        python -m repro train --synthetic --docs 200 --vocab-size 500 \\
            --topics 20 --iterations 30 --seed 0 --snapshot-out model.npz

        python -m repro train --preset nytimes_like --scale 0.1 \\
            --backend parallel --workers 4 --iterations 50 --seed 0

``stream``
    Replay any corpus source as a document stream through the online
    backend (sliding-window updates, registry publishes)::

        python -m repro stream --synthetic --docs 200 --vocab-size 500 \\
            --topics 20 --batch-docs 32 --window-docs 256 --decay 0.995 \\
            --registry-dir registry --seed 0

``serve``
    Answer θ queries from a saved model (or a persisted registry) through
    the micro-batching topic server, or — with ``--http`` — over the network
    through the `repro.service` shared-memory worker pool::

        python -m repro serve --model model.npz --input queries.txt
        python -m repro serve --model model.npz --http 127.0.0.1:8080 \\
            --http-workers 4

``eval``
    Held-out perplexity of a saved model on a corpus source or a document
    file::

        python -m repro eval --model model.npz --preset nytimes_like --scale 0.05

Every subcommand also accepts ``--spec spec.json``; explicit flags override
the file.  ``--spec-out`` writes the fully-resolved spec back out, so a flag
soup becomes a reviewable artifact.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Sequence
if TYPE_CHECKING:  # heavy imports stay inside the subcommands at runtime
    from repro.corpus.corpus import Corpus
    from repro.obs import Telemetry


from repro.api.estimator import LDA, iter_token_batches
from repro.api.spec import ALGORITHMS, BACKEND_NAMES, ModelSpec

__all__ = ["build_parser", "build_spec", "corpus_from_args", "main"]


# --------------------------------------------------------------------- #
# Argument groups
# --------------------------------------------------------------------- #
def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.corpus.datasets import DATASET_PRESETS

    source = parser.add_argument_group("corpus source (choose one)")
    source.add_argument("--corpus", type=Path, help="UCI docword file (.txt or .gz)")
    source.add_argument("--vocab-file", type=Path, help="UCI vocab file for --corpus")
    source.add_argument(
        "--corpus-store",
        type=Path,
        metavar="DIR",
        help="on-disk corpus store directory (repro.corpus.store): opened "
        "memory-mapped, so the corpus never fully materialises in RAM",
    )
    source.add_argument(
        "--preset",
        choices=sorted(DATASET_PRESETS),
        help="synthetic preset calibrated to the paper's Table 3",
    )
    source.add_argument("--scale", type=float, default=0.1, help="preset scale factor")
    source.add_argument(
        "--synthetic", action="store_true", help="ad-hoc LDA-generative corpus"
    )
    source.add_argument("--docs", type=int, default=200, help="synthetic documents")
    source.add_argument("--vocab-size", type=int, default=500, help="synthetic vocabulary")
    source.add_argument(
        "--doc-length", type=int, default=100, help="synthetic mean document length"
    )
    source.add_argument(
        "--corpus-seed", type=int, default=0, help="seed of the synthetic generator"
    )


def corpus_from_args(args: argparse.Namespace) -> "Corpus":
    """Load or generate the corpus selected by the parsed arguments."""
    from repro.corpus.datasets import load_preset
    from repro.corpus.synthetic import SyntheticCorpusSpec, generate_lda_corpus
    from repro.corpus.uci import read_uci_bow

    corpus_store = getattr(args, "corpus_store", None)
    chosen = sum(
        1
        for flag in (
            args.corpus is not None,
            corpus_store is not None,
            args.preset is not None,
            args.synthetic,
        )
        if flag
    )
    if chosen != 1:
        raise SystemExit(
            "choose exactly one corpus source: --corpus, --corpus-store, "
            "--preset or --synthetic"
        )
    if corpus_store is not None:
        from repro.corpus.store import open_store

        return open_store(corpus_store)
    if args.corpus is not None:
        return read_uci_bow(args.corpus, vocab_path=args.vocab_file)
    if args.preset is not None:
        return load_preset(args.preset, scale=args.scale, seed=args.corpus_seed)
    spec = SyntheticCorpusSpec(
        num_documents=args.docs,
        vocabulary_size=args.vocab_size,
        mean_document_length=args.doc_length,
    )
    return generate_lda_corpus(spec, seed=args.corpus_seed)


#: Spec flags: ``(argparse dest, ModelSpec field)``.
_SPEC_FIELD_FLAGS = (
    ("algorithm", "algorithm"),
    ("topics", "num_topics"),
    ("alpha", "alpha"),
    ("beta", "beta"),
    ("mh_steps", "num_mh_steps"),
    ("kernel", "kernel"),
    ("threads", "threads"),
    ("word_proposal", "word_proposal"),
    ("seed", "seed"),
    ("telemetry", "telemetry"),
)

#: Backend-option flags: ``(argparse dest, backend, option key)``.
_SPEC_OPTION_FLAGS = (
    ("workers", "parallel", "num_workers"),
    ("iters_per_epoch", "parallel", "iterations_per_epoch"),
    ("parallel_backend", "parallel", "backend"),
    ("window_docs", "online", "window_docs"),
    ("sweeps_per_batch", "online", "sweeps_per_batch"),
    ("decay", "online", "decay"),
    ("publish_every", "online", "publish_every"),
    ("batch_docs", "online", "batch_docs"),
)


def _add_spec_arguments(
    parser: argparse.ArgumentParser, fixed_backend: Optional[str] = None
) -> None:
    """Model-spec flags; every default is ``None`` so a spec file wins."""
    model = parser.add_argument_group("model spec (flags override --spec)")
    model.add_argument("--spec", type=Path, help="ModelSpec JSON file to start from")
    model.add_argument(
        "--spec-out", type=Path, help="write the fully-resolved spec here"
    )
    model.add_argument("--algorithm", choices=ALGORITHMS)
    model.add_argument("--topics", type=int, help="number of topics K")
    model.add_argument("--alpha", type=float, help="doc Dirichlet (default 50/K)")
    model.add_argument("--beta", type=float, help="word Dirichlet (default 0.01)")
    model.add_argument("--mh-steps", type=int, help="MH proposals per token")
    model.add_argument("--kernel", choices=("slab", "scalar", "jit"))
    model.add_argument(
        "--threads",
        type=int,
        help="kernel worker threads (default: REPRO_THREADS env, else 1); "
        "results are bit-identical for any value",
    )
    model.add_argument("--word-proposal", choices=("mixture", "alias"))
    model.add_argument("--seed", type=int, help="master seed")
    model.add_argument(
        "--telemetry",
        type=str,
        metavar="PATH",
        help="write a repro.obs JSONL trace here (metrics digest lands "
        "next to it as PATH-with-.metrics.json)",
    )
    if fixed_backend is None:
        model.add_argument(
            "--backend",
            choices=BACKEND_NAMES,
            help="execution backend (default: the spec's, else serial)",
        )
        model.add_argument("--workers", type=int, help="[parallel] worker processes")
        model.add_argument(
            "--iters-per-epoch", type=int, help="[parallel] sweeps between barriers"
        )
        model.add_argument(
            "--parallel-backend",
            choices=("process", "inline"),
            help="[parallel] process workers or deterministic in-process run",
        )
    if fixed_backend in (None, "online"):
        model.add_argument(
            "--window-docs", type=int, help="[online] sliding-window size in documents"
        )
        model.add_argument(
            "--sweeps-per-batch", type=int, help="[online] Gibbs sweeps per mini-batch"
        )
        model.add_argument(
            "--decay", type=float, help="[online] retired-count decay per batch"
        )
        model.add_argument(
            "--publish-every", type=int, help="[online] batches between publishes"
        )
        model.add_argument(
            "--batch-docs", type=int, help="[online] documents per mini-batch"
        )


def build_spec(
    args: argparse.Namespace, fixed_backend: Optional[str] = None
) -> ModelSpec:
    """Resolve ``--spec`` plus explicit flags into one validated ModelSpec."""
    data: Dict[str, Any] = {}
    if args.spec is not None:
        data = ModelSpec.load(args.spec).to_dict()
    for dest, field in _SPEC_FIELD_FLAGS:
        value = getattr(args, dest, None)
        if value is not None:
            data[field] = value

    file_backend = data.get("backend", "serial")
    backend = fixed_backend or getattr(args, "backend", None) or file_backend
    options = dict(data.get("backend_options", {})) if backend == file_backend else {}
    for dest, option_backend, key in _SPEC_OPTION_FLAGS:
        value = getattr(args, dest, None)
        if value is None:
            continue
        if option_backend != backend:
            raise SystemExit(
                f"--{dest.replace('_', '-')} applies to the {option_backend!r} "
                f"backend, but this run uses {backend!r}"
            )
        options[key] = value
    data["backend"] = backend
    data["backend_options"] = options
    try:
        spec = ModelSpec.from_dict(data)
    except ValueError as exc:
        raise SystemExit(f"invalid model spec: {exc}") from None
    if args.spec_out is not None:
        spec.save(args.spec_out)
        print(f"resolved spec written to {args.spec_out}")
    return spec


def _print_run_report(model: LDA) -> None:
    """Render the human-readable telemetry digest of a facade-driven run."""
    session = model.telemetry
    if session is None:
        return
    from repro.obs import render_report

    print(render_report(session.registry))
    print(
        f"telemetry trace {session.trace_path}  "
        f"metrics {session.metrics_path} (written on close)"
    )


@contextmanager
def _serving_telemetry(path: Optional[Path]) -> Iterator[Optional["Telemetry"]]:
    """Scoped telemetry for the model-loading subcommands (serve / eval),
    whose models carry no spec telemetry; prints the report on exit."""
    if path is None:
        yield None
        return
    from repro.obs import Telemetry, render_report, use_telemetry

    trace = Path(path)
    session = Telemetry(trace, metrics_path=trace.with_suffix(".metrics.json"))
    try:
        with use_telemetry(session):
            yield session
    finally:
        session.close()
        print(render_report(session.registry))
        print(f"telemetry trace {trace}  metrics {session.metrics_path}")


def _read_documents(path: Path) -> List[List[str]]:
    """One whitespace-tokenized document per non-empty line."""
    documents = [line.split() for line in path.read_text(encoding="utf-8").splitlines()]
    return [doc for doc in documents if doc]


# --------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------- #
def _cmd_train(args: argparse.Namespace) -> int:
    spec = build_spec(args)
    if spec.backend == "online":
        raise SystemExit(
            "backend='online' trains through `python -m repro stream`"
        )
    corpus = corpus_from_args(args)
    print(
        f"corpus: {corpus.num_documents} documents, {corpus.num_tokens} tokens, "
        f"vocabulary {corpus.vocabulary_size}"
    )
    unit = "epochs" if spec.backend == "parallel" else "iterations"
    print(
        f"training {spec.algorithm} (K={spec.num_topics}, backend={spec.backend}) "
        f"for {args.iterations} {unit}"
    )
    started = time.perf_counter()
    with LDA(spec) as model:
        model.fit(corpus, num_iterations=args.iterations)
        elapsed = time.perf_counter() - started
        engine = model.model
        print(
            f"log_likelihood {engine.log_likelihood():.1f}  "
            f"elapsed {elapsed:.2f}s"
        )
        for index, topic in enumerate(model.top_topics(args.top_words)):
            rendered = " ".join(word for word, _ in topic)
            print(f"topic {index:3d}  {rendered}")
        if args.snapshot_out is not None:
            written = model.save(args.snapshot_out)
            print(f"serving snapshot written to {written}")
        _print_run_report(model)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    spec = build_spec(args, fixed_backend="online")
    corpus = corpus_from_args(args)
    print(
        f"corpus: {corpus.num_documents} documents, {corpus.num_tokens} tokens, "
        f"vocabulary {corpus.vocabulary_size} (replayed as a stream)"
    )
    started = time.perf_counter()
    model = LDA(spec)
    if args.registry_dir is not None:
        from repro.streaming.registry import ModelRegistry

        model.use_registry(ModelRegistry(directory=args.registry_dir))
    for batch in iter_token_batches(corpus, model.batch_docs):
        report = model.partial_fit(batch)
        update = report.update
        published = (
            f"published v{report.published.version}" if report.published else "-"
        )
        print(
            f"batch {update.batch_index:4d}  docs {update.documents_added:4d}  "
            f"window {update.window_documents:5d}  V {update.vocabulary_size:6d}  "
            f"{published}  {update.train_seconds * 1e3:7.1f} ms"
        )
    elapsed = time.perf_counter() - started
    trainer = model.model
    docs_per_s = trainer.documents_ingested / elapsed if elapsed > 0 else 0.0
    print(
        f"ingested {trainer.documents_ingested} documents / "
        f"{trainer.tokens_ingested} tokens in {elapsed:.2f}s "
        f"({docs_per_s:.1f} docs/s)"
    )
    registry = model.registry
    if registry.current_version is None:
        print("no version published before the stream ended")
    else:
        print(
            f"registry versions {registry.versions()} "
            f"(current v{registry.current_version})"
        )
    if args.registry_dir is not None:
        print(f"registry persisted to {args.registry_dir}")
    if args.snapshot_out is not None:
        written = model.save(args.snapshot_out)
        print(f"serving snapshot written to {written}")
    _print_run_report(model)
    model.close()
    return 0


def _load_model(args: argparse.Namespace) -> LDA:
    if (args.model is None) == (getattr(args, "registry_dir", None) is None):
        raise SystemExit("pass exactly one of --model or --registry-dir")
    if args.model is not None:
        return LDA.load(args.model)
    from repro.streaming.registry import ModelRegistry

    registry = ModelRegistry.open(args.registry_dir)
    entry = registry.current()
    if entry is None:
        raise SystemExit(f"registry {args.registry_dir} has no published version")
    try:
        return LDA.from_snapshot(entry.snapshot)
    except ValueError:
        # Registry versions published outside repro.api carry no spec.
        return LDA.from_snapshot(entry.snapshot, spec=ModelSpec(
            num_topics=entry.snapshot.num_topics
        ))


def _serve_http(args: argparse.Namespace) -> int:
    """``serve --http``: network serving through `repro.service`."""
    from repro.service import ServiceConfig, TopicService, parse_http_address

    if (args.model is None) == (getattr(args, "registry_dir", None) is None):
        raise SystemExit("pass exactly one of --model or --registry-dir")
    host, port = parse_http_address(args.http)
    snapshot = None
    registry = None
    if args.model is not None:
        from repro.serving.snapshot import ModelSnapshot

        snapshot = ModelSnapshot.load(args.model)
    else:
        from repro.streaming.registry import ModelRegistry

        registry = ModelRegistry.open(args.registry_dir)
        if registry.current() is None:
            raise SystemExit(
                f"registry {args.registry_dir} has no published version"
            )
    config = ServiceConfig(
        host=host,
        port=port,
        num_workers=args.http_workers,
        max_pending=args.max_pending,
        request_timeout=args.request_timeout,
        strategy=args.strategy,
        seed=args.seed if args.seed is not None else 0,
        max_batch_size=args.max_batch_size,
    )
    with _serving_telemetry(args.telemetry) as session:
        service = TopicService(
            snapshot=snapshot, registry=registry, config=config, telemetry=session
        )
        service.start()
        try:
            described = service._snapshot
            print(
                f"serving K={described.num_topics} V={described.vocabulary_size} "
                f"on {service.url} ({config.num_workers} workers, "
                f"max_pending={config.max_pending})",
                flush=True,
            )
            print(
                "endpoints: POST /infer  GET /top-topics /healthz /stats /metrics",
                flush=True,
            )
            service.serve_forever()
        finally:
            service.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.http is not None:
        return _serve_http(args)
    model = _load_model(args)
    snapshot = model.export_snapshot()
    print(
        f"serving {snapshot.metadata.get('sampler', model.spec.algorithm)} "
        f"(K={snapshot.num_topics}, V={snapshot.vocabulary_size})"
    )
    server = model.serve(
        strategy=args.strategy,
        seed=args.seed if args.seed is not None else 0,
        max_batch_size=args.max_batch_size,
    )
    if args.input is None:
        for index, topic in enumerate(model.top_topics(args.top_words)):
            rendered = " ".join(word for word, _ in topic)
            print(f"topic {index:3d}  {rendered}")
        print("pass --input FILE (one document per line) to answer queries")
        return 0
    documents = _read_documents(args.input)
    with _serving_telemetry(args.telemetry):
        theta = server.infer_batch(documents)
    for row, document in zip(theta, documents):
        top = int(row.argmax())
        preview = " ".join(document[:6])
        print(f"doc[{preview}...]  top topic {top}  p={row[top]:.3f}")
    print(server.stats().summary())
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    model = _load_model(args)
    if args.input is not None:
        documents = _read_documents(args.input)
    else:
        corpus = corpus_from_args(args)
        # Re-express the corpus as raw tokens so the snapshot vocabulary does
        # the id mapping (and OOV dropping) — the corpus's own ids need not
        # line up with the model's.
        vocabulary = corpus.vocabulary
        documents = [
            [vocabulary.word(w) for w in corpus.document_words(d)]
            for d in range(corpus.num_documents)
        ]
    with _serving_telemetry(args.telemetry):
        perplexity = model.perplexity(documents)
    print(f"documents {len(documents)}  held-out perplexity {perplexity:.2f}")
    for index, topic in enumerate(model.top_topics(args.top_words)):
        rendered = " ".join(word for word, _ in topic)
        print(f"topic {index:3d}  {rendered}")
    return 0


# --------------------------------------------------------------------- #
# Parser / entry point
# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Spec-driven LDA: train, stream, serve and evaluate "
        "through the repro.api facade.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser(
        "train", help="batch training (serial or parallel backend)"
    )
    _add_corpus_arguments(train)
    _add_spec_arguments(train)
    train.add_argument(
        "--iterations", type=int, default=10, help="sweeps (serial) / epochs (parallel)"
    )
    train.add_argument("--top-words", type=int, default=8, help="words shown per topic")
    train.add_argument(
        "--snapshot-out", type=Path, help="write the serving snapshot here"
    )
    train.set_defaults(func=_cmd_train)

    stream = commands.add_parser(
        "stream", help="replay a corpus as a stream (online backend)"
    )
    _add_corpus_arguments(stream)
    _add_spec_arguments(stream, fixed_backend="online")
    stream.add_argument(
        "--registry-dir", type=Path, help="persist published versions here"
    )
    stream.add_argument(
        "--snapshot-out", type=Path, help="write the final serving snapshot here"
    )
    stream.set_defaults(func=_cmd_stream)

    serve = commands.add_parser("serve", help="serve θ queries from a saved model")
    serve.add_argument("--model", type=Path, help="snapshot written by train/stream")
    serve.add_argument(
        "--registry-dir", type=Path, help="serve a persisted registry's current version"
    )
    serve.add_argument(
        "--input", type=Path, help="query documents, one whitespace-tokenized per line"
    )
    serve.add_argument("--strategy", choices=("em", "mh"), default="em")
    serve.add_argument("--seed", type=int, help="seed for --strategy mh")
    serve.add_argument("--max-batch-size", type=int, default=64)
    serve.add_argument("--top-words", type=int, default=8)
    serve.add_argument(
        "--http", metavar="HOST:PORT",
        help="serve over HTTP through the repro.service worker pool "
             "(e.g. 127.0.0.1:8080; port 0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--http-workers", type=int, default=2, metavar="N",
        help="[--http] worker processes sharing one snapshot copy",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="[--http] admission-control bound; excess load is shed with 503",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="[--http] per-request timeout before a 504 answer",
    )
    serve.add_argument(
        "--telemetry", type=Path, metavar="PATH",
        help="write a repro.obs JSONL trace of the serving calls here",
    )
    serve.set_defaults(func=_cmd_serve)

    evaluate = commands.add_parser(
        "eval", help="held-out perplexity of a saved model"
    )
    evaluate.add_argument("--model", type=Path, help="snapshot written by train/stream")
    evaluate.add_argument(
        "--registry-dir", type=Path, help="evaluate a persisted registry's current version"
    )
    evaluate.add_argument(
        "--input", type=Path, help="documents, one whitespace-tokenized per line"
    )
    evaluate.add_argument("--top-words", type=int, default=8)
    evaluate.add_argument(
        "--telemetry", type=Path, metavar="PATH",
        help="write a repro.obs JSONL trace of the evaluation here",
    )
    _add_corpus_arguments(evaluate)
    evaluate.set_defaults(func=_cmd_eval)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.__main__
    sys.exit(main())
