"""The :class:`LDA` estimator: one front door for every workload.

``LDA`` wraps a :class:`~repro.api.spec.ModelSpec` and dispatches to the
existing layers:

=================  ====================================================
call               dispatches to
=================  ====================================================
``fit``            a serial sampler (``WarpLDA`` / the baselines) or a
                   :class:`~repro.training.parallel.ParallelTrainer`;
                   on the online backend, replays the corpus through
                   ``partial_fit``
``partial_fit``    :class:`~repro.streaming.online.OnlineTrainer` behind
                   a :class:`~repro.streaming.pipeline.StreamingPipeline`
                   publishing into a :class:`~repro.streaming.registry
                   .ModelRegistry`
``transform``      :class:`~repro.serving.infer.InferenceEngine`
``serve``          :class:`~repro.serving.server.TopicServer` (following
                   the online registry for hot-swap when available)
``save``/``load``  :class:`~repro.serving.snapshot.ModelSnapshot`, with
                   the spec JSON embedded in the metadata so a saved
                   model reloads as a ready ``LDA``
=================  ====================================================

Construction is lazy and lowering goes through ``from_config`` with the
spec's seed, so a facade run is bit-identical to direct construction from
the same config and seed (the equivalence the test suite checks).  Heavy
layers (``multiprocessing``, serving, streaming) are imported only when the
spec actually reaches them.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    ContextManager,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.backends import get_backend
from repro.api.spec import SPEC_METADATA_KEY, ModelSpec

if TYPE_CHECKING:  # heavy layers stay lazy at runtime (PR 5 guarantee)
    from repro.corpus.corpus import Corpus
    from repro.service.http import TopicService
    from repro.serving.infer import InferenceEngine
    from repro.serving.server import TopicServer
    from repro.serving.snapshot import ModelSnapshot
    from repro.streaming.registry import ModelRegistry
    from repro.streaming.stream import MiniBatch

__all__ = ["LDA", "iter_token_batches"]


def _materialize(document: Any) -> Any:
    """Make ``document`` indexable without losing elements.

    Generators/iterators must be materialised *before* any type sniffing:
    peeking with ``next(iter(...))`` would silently consume (and drop) the
    first token of a one-shot iterable.
    """
    if isinstance(document, str):
        raise TypeError(
            "a document must be a sequence of tokens, not a bare string; "
            "tokenize first (e.g. text.split())"
        )
    if hasattr(document, "__getitem__"):
        return document
    return list(document)


def _is_token_document(document: Any) -> bool:
    """True when (materialised) ``document`` is a sequence of raw tokens."""
    return len(document) > 0 and isinstance(document[0], str)


def iter_token_batches(
    corpus: "Corpus", batch_docs: int
) -> Iterator[List[List[str]]]:
    """Replay ``corpus`` as mini-batches of raw token documents.

    Word ids are decoded back to words through the corpus vocabulary — the
    form a live stream delivers — so the online layer exercises its own
    vocabulary growth.  Shared by :meth:`LDA.fit` on the online backend and
    the ``python -m repro stream`` subcommand.
    """
    if batch_docs <= 0:
        raise ValueError(f"batch_docs must be positive, got {batch_docs}")
    vocabulary = corpus.vocabulary
    for start in range(0, corpus.num_documents, batch_docs):
        stop = min(start + batch_docs, corpus.num_documents)
        yield [
            [vocabulary.word(w) for w in corpus.document_words(d)]
            for d in range(start, stop)
        ]


class LDA:
    """Unified LDA estimator over a declarative :class:`ModelSpec`.

    Parameters
    ----------
    spec:
        The model description.  Omit it and pass the spec fields as keyword
        arguments instead (``LDA(num_topics=20, algorithm="warplda",
        seed=0)``) for the common case.

    Examples
    --------
    >>> from repro.api import LDA
    >>> from repro.corpus import load_preset
    >>> corpus = load_preset("nytimes_like", scale=0.05, seed=0)
    >>> model = LDA(num_topics=10, seed=0).fit(corpus, num_iterations=5)
    >>> model.transform([["the", "fresh", "document"]]).shape
    (1, 10)
    """

    def __init__(self, spec: Optional[ModelSpec] = None, **spec_kwargs: Any) -> None:
        if spec is None:
            spec = ModelSpec(**spec_kwargs)
        elif spec_kwargs:
            raise ValueError("pass either spec or keyword arguments, not both")
        self.spec = spec
        self._backend = get_backend(spec.backend)
        self._model: Optional[Any] = None
        self._fit_corpus: Optional[Any] = None
        self._pipeline: Optional[Any] = None
        self._registry: Optional[Any] = None
        self._snapshot: Optional[Any] = None
        self._snapshot_stale = False
        self._engine: Optional[Any] = None
        self._telemetry: Optional[Any] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def fitted(self) -> bool:
        """True once the model has trained on (or loaded) any data."""
        return self._model is not None or self._snapshot is not None

    @property
    def model(self) -> Optional[Any]:
        """The underlying engine (sampler, trainer, or online trainer)."""
        return self._model

    @property
    def registry(self) -> Optional[Any]:
        """The online backend's model registry (``None`` elsewhere)."""
        return self._registry

    @property
    def batch_docs(self) -> int:
        """Documents per mini-batch when replaying a corpus (online backend)."""
        return int(self.spec.backend_options.get("batch_docs", 64))

    def use_registry(self, registry: "ModelRegistry") -> "LDA":
        """Publish online updates into ``registry`` (e.g. a persisted one).

        Must be called before the first :meth:`partial_fit`; by default the
        online backend publishes into a fresh in-memory
        :class:`~repro.streaming.registry.ModelRegistry`.
        """
        if self.spec.backend != "online":
            raise RuntimeError("use_registry applies to the online backend only")
        if self._pipeline is not None:
            raise RuntimeError(
                "the streaming pipeline is already running; attach the "
                "registry before the first partial_fit"
            )
        self._registry = registry
        return self

    @property
    def telemetry(self) -> Optional[Any]:
        """The :class:`repro.obs.Telemetry` session for ``spec.telemetry``.

        ``None`` when the spec names no telemetry path.  Created on first
        access (so merely constructing an LDA never touches the filesystem);
        the JSONL trace streams to the spec's path during training and the
        metrics digest is written next to it on :meth:`close`.
        """
        if self.spec.telemetry is None:
            return None
        if self._telemetry is None:
            from repro.obs import Telemetry

            trace = Path(self.spec.telemetry)
            self._telemetry = Telemetry(
                trace, metrics_path=trace.with_suffix(".metrics.json")
            )
        return self._telemetry

    def _activate(self) -> ContextManager[Any]:
        """Scoped telemetry activation for training calls (no-op context
        when the spec names no telemetry path)."""
        session = self.telemetry
        if session is None:
            return nullcontext()
        from repro.obs import use_telemetry

        return use_telemetry(session)

    def _require_fitted(self, what: str) -> None:
        if not self.fitted:
            raise RuntimeError(
                f"this LDA has not been fitted; call fit()/partial_fit() "
                f"(or LDA.load a saved model) before {what}"
            )

    def _mark_trained(self) -> None:
        self._snapshot_stale = True
        self._engine = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        corpus: Union["Corpus", str, Path],
        num_iterations: int = 50,
        tracker: Optional[Any] = None,
    ) -> "LDA":
        """Train on a frozen corpus.

        On the ``serial`` backend this runs ``num_iterations`` full sweeps of
        the spec's sampler; on ``parallel``, ``num_iterations`` merge-barrier
        epochs of the data-parallel trainer.  On the ``online`` backend the
        corpus is replayed through :meth:`partial_fit` in mini-batches of
        ``backend_options["batch_docs"]`` documents (``num_iterations`` and
        ``tracker`` do not apply), so a streaming spec still answers the
        batch call.  Repeated ``fit`` calls on the same corpus continue the
        same chain; a new corpus builds a fresh engine.

        ``corpus`` may also be the path of an on-disk corpus store
        (:mod:`repro.corpus.store`): it is opened memory-mapped and trains
        bit-identically to the equivalent in-RAM corpus, without it ever
        fully materialising.  A path is reopened on every call, so repeated
        ``fit`` calls that should continue one chain should open the store
        once and pass the :class:`~repro.corpus.store.MappedCorpus`.
        """
        self._check_open()
        if isinstance(corpus, (str, Path)):
            from repro.corpus.store import open_store

            corpus = open_store(corpus)
        if self.spec.backend == "online":
            for batch in iter_token_batches(corpus, self.batch_docs):
                self.partial_fit(batch)
            return self
        if self._model is None or self._fit_corpus is not corpus:
            if self._model is not None:
                self.close_model()
            self._model = self._backend.build(self.spec, corpus)
            self._fit_corpus = corpus
        with self._activate():
            if self.spec.backend == "parallel":
                self._model.train(num_iterations, tracker=tracker)
            else:
                self._model.fit(num_iterations, tracker=tracker)
        self._mark_trained()
        return self

    def partial_fit(self, batch: Union["MiniBatch", Sequence[Any]]) -> Any:
        """Fold one mini-batch into the (online) model; returns the report.

        ``batch`` is a :class:`~repro.streaming.stream.MiniBatch` or a
        sequence of documents — raw token lists (encoded against the growing
        stream vocabulary) or word-id arrays already consistent with it.
        Only the ``online`` backend supports incremental updates.
        """
        self._check_open()
        if self.spec.backend != "online":
            raise RuntimeError(
                f"partial_fit requires backend='online', this spec uses "
                f"{self.spec.backend!r}; use fit() or rebuild the spec with "
                f"with_backend('online')"
            )
        if self._pipeline is None:
            from repro.streaming.pipeline import StreamingPipeline
            from repro.streaming.registry import ModelRegistry

            self._model = self._backend.build(self.spec)
            if self._registry is None:
                self._registry = ModelRegistry()
            self._pipeline = StreamingPipeline(
                self._model,
                self._registry,
                publish_every=int(self.spec.backend_options.get("publish_every", 1)),
            )
        from repro.streaming.stream import MiniBatch

        if not isinstance(batch, MiniBatch):
            vocabulary = self._model.corpus.vocabulary
            documents = [_materialize(document) for document in batch]
            batch = [
                vocabulary.encode(document, on_oov="add")
                if _is_token_document(document)
                else document
                for document in documents
            ]
        with self._activate():
            report = self._pipeline.ingest(batch)
        self._mark_trained()
        return report

    # ------------------------------------------------------------------ #
    # Model access
    # ------------------------------------------------------------------ #
    def export_snapshot(self) -> "ModelSnapshot":
        """The current model as a :class:`~repro.serving.snapshot.ModelSnapshot`.

        The snapshot's metadata carries the spec dict under
        :data:`~repro.api.spec.SPEC_METADATA_KEY`, which is what makes a
        saved model reload as a ready :class:`LDA`.
        """
        self._require_fitted("exporting a snapshot")
        if self._snapshot is None or self._snapshot_stale:
            snapshot = self._model.export_snapshot()
            # Record the spec as *executed*: samplers without a slab path
            # fall back to the scalar kernel, and the provenance must say
            # so rather than echo the requested default.
            spec_dict = self.spec.to_dict()
            spec_dict["kernel"] = self._effective_kernel()
            # Telemetry is a property of the *run*, not the model: a loaded
            # model must not silently reopen (and truncate) the training
            # run's trace file.
            spec_dict["telemetry"] = None
            if snapshot.metadata.get(SPEC_METADATA_KEY) != spec_dict:
                snapshot = snapshot.with_metadata(**{SPEC_METADATA_KEY: spec_dict})
            self._snapshot = snapshot
            self._snapshot_stale = False
        return self._snapshot

    def _effective_kernel(self) -> str:
        """The kernel actually executed (scalar fallback for samplers
        without a slab path — the rule every backend's builder applies)."""
        if self.spec.algorithm == "warplda":
            return self.spec.kernel
        from repro.samplers.registry import SAMPLER_REGISTRY

        sampler_cls = SAMPLER_REGISTRY[self.spec.algorithm]
        return self.spec.kernel if self.spec.kernel in sampler_cls.KERNELS else "scalar"

    def _get_engine(
        self,
        strategy: Optional[str] = None,
        num_iterations: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> "InferenceEngine":
        from repro.serving.infer import InferenceEngine

        if strategy is None and num_iterations is None and seed is None:
            if self._engine is None:
                self._engine = InferenceEngine(self.export_snapshot())
            return self._engine
        kwargs: Dict[str, Any] = {}
        if strategy is not None:
            kwargs["strategy"] = strategy
        if num_iterations is not None:
            kwargs["num_iterations"] = num_iterations
        if seed is not None:
            kwargs["seed"] = seed
        return InferenceEngine(self.export_snapshot(), **kwargs)

    def transform(
        self,
        documents: Sequence[Any],
        strategy: Optional[str] = None,
        num_iterations: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """θ inference for unseen documents (one row per document).

        Documents are raw token lists (OOV tokens dropped by the snapshot
        vocabulary) or word-id arrays.  The default is the deterministic EM
        fold-in; pass ``strategy="mh"`` (with ``seed``) for the WarpLDA-style
        Metropolis-Hastings fold-in.
        """
        self._require_fitted("transform")
        engine = self._get_engine(strategy, num_iterations, seed)
        documents = [_materialize(document) for document in documents]
        # Route by the first *non-empty* document (empty ones carry no type
        # information, and an empty leading doc must not send a token batch
        # down the word-id path).
        probe = next((d for d in documents if len(d)), None)
        if probe is not None and _is_token_document(probe):
            return engine.infer_tokens(documents)
        return engine.infer_ids(documents)

    def top_topics(
        self, num_words: int = 10
    ) -> List[List[Tuple[str, float]]]:
        """Per topic, the ``num_words`` most probable ``(word, prob)`` pairs."""
        if num_words <= 0:
            raise ValueError(f"num_words must be positive, got {num_words}")
        self._require_fitted("top_topics")
        snapshot = self.export_snapshot()
        words = snapshot.vocabulary.words()
        phi = snapshot.phi
        num_words = min(num_words, phi.shape[1])
        topics = []
        for row in phi:
            order = row.argsort()[::-1][:num_words]
            topics.append([(words[w], float(row[w])) for w in order])
        return topics

    def perplexity(self, documents: Sequence[Any]) -> float:
        """Held-out perplexity of ``documents`` under the current model."""
        self._require_fitted("perplexity")
        return self._get_engine().held_out_perplexity(list(documents))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Write the model (snapshot + embedded spec) to ``path``."""
        return self.export_snapshot().save(path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LDA":
        """Reload a model written by :meth:`save` as a ready estimator.

        The spec is recovered from the snapshot metadata; the returned
        estimator serves immediately (``transform`` / ``top_topics`` /
        ``perplexity`` / ``serve``) and trains again through
        ``fit``/``partial_fit`` with the original spec (a snapshot freezes
        Φ, not the sampler chain — use :class:`repro.training.Checkpoint`
        for bit-exact training resumption).
        """
        from repro.serving.snapshot import ModelSnapshot

        return cls.from_snapshot(ModelSnapshot.load(path))

    @classmethod
    def from_snapshot(
        cls, snapshot: "ModelSnapshot", spec: Optional[ModelSpec] = None
    ) -> "LDA":
        """Wrap an existing snapshot; ``spec`` overrides the embedded one."""
        if spec is None:
            spec_dict = snapshot.metadata.get(SPEC_METADATA_KEY)
            if spec_dict is None:
                raise ValueError(
                    "snapshot carries no embedded ModelSpec (was it exported "
                    "outside repro.api?); pass spec= explicitly"
                )
            spec = ModelSpec.from_dict(spec_dict)
        model = cls(spec)
        model._snapshot = snapshot
        return model

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serve(
        self,
        strategy: str = "em",
        num_iterations: int = 30,
        num_mh_steps: int = 2,
        seed: Optional[int] = None,
        follow_registry: bool = True,
        http: Optional[Any] = None,
        **server_kwargs: Any,
    ) -> Union["TopicServer", "TopicService"]:
        """Stand up a :class:`~repro.serving.server.TopicServer` on this model.

        On the online backend (with ``follow_registry=True``) the server
        attaches to the pipeline's registry and hot-swaps as later
        ``partial_fit`` calls publish fresh versions; otherwise it serves a
        frozen export of the current model.  ``server_kwargs`` reach the
        :class:`~repro.serving.server.TopicServer` constructor
        (``max_batch_size``, ``cache_capacity``).

        With ``http="HOST:PORT"`` (or a bare port) the model is served over
        the network instead: a **started**
        :class:`~repro.service.http.TopicService` — an asyncio HTTP front
        end over a pool of worker processes sharing one snapshot copy — is
        returned (close it, or use it as a context manager).  In that mode
        ``server_kwargs`` reach :class:`~repro.service.http.ServiceConfig`
        (``num_workers``, ``max_pending``, ``request_timeout``, ...), and a
        registry-backed model hot-swaps across the whole pool.
        """
        self._require_fitted("serve")
        if http is not None:
            from repro.service.http import ServiceConfig as _ServiceConfig
            from repro.service.http import TopicService as _TopicService
            from repro.service.http import parse_http_address

            host, port = parse_http_address(http)
            config = _ServiceConfig(
                host=host,
                port=port,
                strategy=strategy,
                num_iterations=num_iterations,
                num_mh_steps=num_mh_steps,
                seed=seed if seed is not None else 0,
                **server_kwargs,
            )
            registry = (
                self._registry
                if follow_registry and self._registry is not None
                else None
            )
            return _TopicService(
                snapshot=self.export_snapshot(),
                registry=registry,
                config=config,
            ).start()
        from repro.serving.server import TopicServer

        following = follow_registry and self._registry is not None
        if following and self._registry.current_version is not None:
            return TopicServer.from_registry(
                self._registry,
                strategy=strategy,
                num_iterations=num_iterations,
                num_mh_steps=num_mh_steps,
                seed=seed,
                **server_kwargs,
            )
        from repro.serving.infer import InferenceEngine

        engine = InferenceEngine(
            self.export_snapshot(),
            strategy=strategy,
            num_iterations=num_iterations,
            num_mh_steps=num_mh_steps,
            seed=seed,
        )
        server = TopicServer(engine, **server_kwargs)
        if following:
            # Nothing published yet (e.g. publish_every not reached): serve
            # the current export but still follow the registry, so the
            # first publish hot-swaps in as documented.
            server.attach_registry(self._registry)
        return server

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this LDA has been closed")

    def close_model(self) -> None:
        """Release the current engine (stops parallel workers if any)."""
        if self._model is not None and hasattr(self._model, "close"):
            self._model.close()
        self._model = None
        self._fit_corpus = None
        self._pipeline = None

    def close(self) -> None:
        """Release every resource; the estimator is unusable afterwards."""
        if self._closed:
            return
        self.close_model()
        if self._telemetry is not None:
            self._telemetry.close()
            self._telemetry = None
        self._closed = True

    def __enter__(self) -> "LDA":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fitted" if self.fitted else "unfitted"
        return (
            f"LDA({self.spec.algorithm}, K={self.spec.num_topics}, "
            f"backend={self.spec.backend!r}, {state})"
        )
