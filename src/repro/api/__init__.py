"""The declarative front door: ``ModelSpec`` → ``LDA``.

One spec describes the model (algorithm, kernel, hyper-parameters, backend,
seed); one estimator runs it:

>>> from repro.api import LDA, ModelSpec
>>> spec = ModelSpec(num_topics=20, algorithm="warplda", seed=0)
>>> model = LDA(spec)                      # doctest: +SKIP
>>> model.fit(corpus)                      # doctest: +SKIP
>>> model.save("model.npz")                # doctest: +SKIP
>>> LDA.load("model.npz").transform(docs)  # doctest: +SKIP

The spec lowers into the existing layers through the backend registry
(:mod:`repro.api.backends`): ``serial`` builds the samplers directly,
``parallel`` a :class:`~repro.training.parallel.ParallelTrainer`, ``online``
an :class:`~repro.streaming.online.OnlineTrainer` behind a
:class:`~repro.streaming.pipeline.StreamingPipeline` — all seeded from the
spec, bit-identical to direct construction.  The command line rides the same
path: ``python -m repro {train,stream,serve,eval}``.
"""

from repro.api.backends import BACKEND_REGISTRY, Backend, get_backend, register_backend
from repro.api.estimator import LDA
from repro.api.spec import ALGORITHMS, BACKEND_NAMES, SPEC_METADATA_KEY, ModelSpec

__all__ = [
    "ALGORITHMS",
    "BACKEND_NAMES",
    "BACKEND_REGISTRY",
    "Backend",
    "LDA",
    "ModelSpec",
    "SPEC_METADATA_KEY",
    "get_backend",
    "register_backend",
]
