"""Backend registry: lowering a :class:`~repro.api.spec.ModelSpec` to engines.

Each execution backend knows two things about a spec:

* :meth:`Backend.lower` — translate it into the *existing* configuration
  object of the layer it targets (:class:`~repro.core.warplda.WarpLDAConfig`
  or baseline constructor kwargs for ``serial``,
  :class:`~repro.training.parallel.TrainerConfig` for ``parallel``,
  :class:`~repro.streaming.online.OnlineTrainerConfig` for ``online``), and
* :meth:`Backend.build` — construct the engine the facade drives
  (a sampler, a :class:`~repro.training.parallel.ParallelTrainer`, an
  :class:`~repro.streaming.online.OnlineTrainer`).

Lowering goes through the classes' ``from_config`` constructors with the
spec's seed passed verbatim, so a facade-built engine is bit-identical to
one constructed directly from the same config and seed — the equivalence
the test suite checks seed-for-seed.

Heavy layers are imported inside the methods: ``parallel`` pulls in
``multiprocessing`` and ``online`` the streaming stack only when a spec
actually targets them, keeping ``import repro`` (and serial-only work)
light.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # spec.py imports this module; break the cycle
    from repro.api.spec import ModelSpec

__all__ = [
    "Backend",
    "BACKEND_REGISTRY",
    "OnlineBackend",
    "ParallelBackend",
    "SerialBackend",
    "get_backend",
    "register_backend",
]


class Backend(abc.ABC):
    """One execution strategy a :class:`~repro.api.spec.ModelSpec` can target."""

    #: Registry key (the spec's ``backend`` spelling).
    name: str = ""
    #: Keys this backend accepts in ``ModelSpec.backend_options``.
    option_keys: frozenset = frozenset()

    def validate(self, spec: "ModelSpec") -> None:
        """Raise ``ValueError`` for specs this backend cannot execute.

        The default check is "it lowers": constructing the target config
        runs its own ``__post_init__`` validation, so a spec that builds is
        a spec that runs.
        """
        self.lower(spec)

    @abc.abstractmethod
    def lower(self, spec: "ModelSpec") -> Any:
        """Translate ``spec`` into this backend's native configuration."""

    @abc.abstractmethod
    def build(self, spec: "ModelSpec", corpus: Optional[Any] = None) -> Any:
        """Construct the engine for ``spec`` (seeded from ``spec.seed``)."""


def _require_scalar_alpha(spec: "ModelSpec", backend: str) -> None:
    if isinstance(spec.alpha, list):
        raise ValueError(
            f"the {backend!r} backend supports only a scalar (or default) "
            f"alpha; a length-K alpha vector requires backend='serial'"
        )


def _require_default_word_proposal(spec: "ModelSpec", backend: str) -> None:
    # TrainerConfig/OnlineTrainerConfig carry no word_proposal knob, so a
    # non-default setting would be silently dropped while the snapshot
    # metadata still records it — reject instead of lying about provenance.
    if spec.word_proposal != "mixture":
        raise ValueError(
            f"word_proposal={spec.word_proposal!r} is only honoured by "
            f"backend='serial'; the {backend!r} backend always uses the "
            f"mixture proposal"
        )


class SerialBackend(Backend):
    """One in-process sampler: ``WarpLDA`` or an ``LDASampler`` baseline."""

    name = "serial"

    def lower(self, spec: "ModelSpec") -> Any:
        if spec.algorithm == "warplda":
            from repro.core.warplda import WarpLDAConfig

            return WarpLDAConfig(
                num_topics=spec.num_topics,
                num_mh_steps=spec.num_mh_steps,
                alpha=spec.alpha,
                beta=spec.beta,
                word_proposal=spec.word_proposal,
                kernel=spec.kernel,
                threads=spec.threads,
            )
        # The baselines have no config dataclass; their lowering target is
        # the constructor keyword set.
        from repro.samplers.base import resolve_kernel
        from repro.samplers.registry import SAMPLER_REGISTRY

        sampler_cls = SAMPLER_REGISTRY[spec.algorithm]
        kernel = resolve_kernel(sampler_cls, spec.kernel)
        kwargs: Dict[str, Any] = {
            "num_topics": spec.num_topics,
            "alpha": spec.alpha,
            "beta": spec.beta,
            "kernel": kernel,
            "threads": spec.threads,
        }
        if spec.algorithm == "lightlda":
            kwargs["num_mh_steps"] = spec.num_mh_steps
        return kwargs

    def build(self, spec: "ModelSpec", corpus: Optional[Any] = None) -> Any:
        if corpus is None:
            raise ValueError("the serial backend needs a corpus to build on")
        lowered = self.lower(spec)
        if spec.algorithm == "warplda":
            from repro.core.warplda import WarpLDA

            return WarpLDA.from_config(corpus, lowered, seed=spec.seed)
        from repro.samplers.registry import SAMPLER_REGISTRY

        sampler_cls = SAMPLER_REGISTRY[spec.algorithm]
        return sampler_cls(corpus, seed=spec.seed, **lowered)


class ParallelBackend(Backend):
    """Data-parallel epochs on a :class:`~repro.training.parallel.ParallelTrainer`."""

    name = "parallel"
    option_keys = frozenset({"num_workers", "iterations_per_epoch", "backend"})

    def validate(self, spec: "ModelSpec") -> None:
        _require_scalar_alpha(spec, self.name)
        _require_default_word_proposal(spec, self.name)
        options = spec.backend_options
        if "num_workers" in options and int(options["num_workers"]) <= 0:
            raise ValueError(
                f"num_workers must be positive, got {options['num_workers']}"
            )
        if "backend" in options and options["backend"] not in ("process", "inline"):
            raise ValueError(
                f"parallel backend option 'backend' must be 'process' or "
                f"'inline', got {options['backend']!r}"
            )
        super().validate(spec)

    def lower(self, spec: "ModelSpec") -> Any:
        from repro.training.parallel import TrainerConfig

        options = spec.backend_options
        return TrainerConfig(
            sampler=spec.algorithm,
            num_topics=spec.num_topics,
            alpha=spec.alpha,
            beta=spec.beta,
            num_mh_steps=spec.num_mh_steps,
            iterations_per_epoch=options.get("iterations_per_epoch", 1),
            kernel=spec.kernel,
            threads=spec.threads,
        )

    def build(self, spec: "ModelSpec", corpus: Optional[Any] = None) -> Any:
        if corpus is None:
            raise ValueError("the parallel backend needs a corpus to build on")
        from repro.training.parallel import ParallelTrainer

        options = spec.backend_options
        return ParallelTrainer.from_config(
            corpus,
            self.lower(spec),
            num_workers=options.get("num_workers", 2),
            seed=spec.seed,
            backend=options.get("backend", "process"),
        )


class OnlineBackend(Backend):
    """Streaming updates on an :class:`~repro.streaming.online.OnlineTrainer`.

    ``publish_every`` and ``batch_docs`` are pipeline-level options consumed
    by the facade (they shape the :class:`~repro.streaming.pipeline
    .StreamingPipeline` and ingestion batching, not the trainer config).
    """

    name = "online"
    option_keys = frozenset(
        {"window_docs", "sweeps_per_batch", "decay", "publish_every", "batch_docs"}
    )

    def validate(self, spec: "ModelSpec") -> None:
        _require_scalar_alpha(spec, self.name)
        _require_default_word_proposal(spec, self.name)
        options = spec.backend_options
        for key in ("publish_every", "batch_docs"):
            if key in options and int(options[key]) <= 0:
                raise ValueError(f"{key} must be positive, got {options[key]}")
        super().validate(spec)

    def lower(self, spec: "ModelSpec") -> Any:
        from repro.streaming.online import OnlineTrainerConfig

        options = spec.backend_options
        return OnlineTrainerConfig(
            num_topics=spec.num_topics,
            alpha=spec.alpha,
            beta=spec.beta,
            sampler=spec.algorithm,
            kernel=spec.kernel,
            threads=spec.threads,
            window_docs=options.get("window_docs", 1024),
            sweeps_per_batch=options.get("sweeps_per_batch", 2),
            decay=options.get("decay", 1.0),
            num_mh_steps=spec.num_mh_steps,
        )

    def build(self, spec: "ModelSpec", corpus: Optional[Any] = None) -> Any:
        from repro.streaming.online import OnlineTrainer

        return OnlineTrainer.from_config(self.lower(spec), seed=spec.seed)


#: Execution backends by name.  Extendable through :func:`register_backend`.
BACKEND_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Install ``backend`` under its :attr:`~Backend.name`; returns it."""
    if not backend.name:
        raise ValueError("backend must define a non-empty name")
    BACKEND_REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a registered backend by name."""
    try:
        return BACKEND_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {sorted(BACKEND_REGISTRY)}"
        ) from None


register_backend(SerialBackend())
register_backend(ParallelBackend())
register_backend(OnlineBackend())
