"""Per-algorithm memory-access trace generation.

Following the paper's methodology (Sec. 3.3), the traces record only the reads
and writes to the count structures — the document-topic matrix ``C_d``, the
word-topic matrix ``C_w``, the global vector ``c_k`` and, for WarpLDA, the
single per-document / per-word count vector it keeps in scratch memory — since
those random accesses dominate the running time.

Each generator yields byte addresses in the visiting order the algorithm
actually uses (document-by-document or word-by-word, Table 2), so replaying a
trace through :class:`~repro.cache.simulator.HierarchySimulator` reproduces
the locality behaviour that PAPI measured on real hardware.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

import numpy as np

from repro.corpus.corpus import Corpus
from repro.sampling.rng import RngLike, ensure_rng

__all__ = ["AddressSpace", "AccessTraceGenerator", "ALGORITHM_TRACERS"]

_ENTRY_BYTES = 8


class AddressSpace:
    """Byte-address layout of the count structures for a (D, V, K) problem."""

    def __init__(self, num_documents: int, vocabulary_size: int, num_topics: int):
        self.num_documents = num_documents
        self.vocabulary_size = vocabulary_size
        self.num_topics = num_topics
        self.doc_topic_base = 0
        self.word_topic_base = self.doc_topic_base + num_documents * num_topics * _ENTRY_BYTES
        self.topic_counts_base = self.word_topic_base + vocabulary_size * num_topics * _ENTRY_BYTES
        self.scratch_base = self.topic_counts_base + num_topics * _ENTRY_BYTES
        self.token_data_base = self.scratch_base + num_topics * _ENTRY_BYTES

    def doc_topic(self, doc: np.ndarray, topic: np.ndarray) -> np.ndarray:
        """Addresses of ``C_d[doc, topic]`` (vectorised)."""
        return self.doc_topic_base + (doc * self.num_topics + topic) * _ENTRY_BYTES

    def word_topic(self, word: np.ndarray, topic: np.ndarray) -> np.ndarray:
        """Addresses of ``C_w[word, topic]`` (vectorised)."""
        return self.word_topic_base + (word * self.num_topics + topic) * _ENTRY_BYTES

    def topic_counts(self, topic: np.ndarray) -> np.ndarray:
        """Addresses of ``c_k[topic]``."""
        return self.topic_counts_base + topic * _ENTRY_BYTES

    def scratch(self, topic: np.ndarray) -> np.ndarray:
        """Addresses of WarpLDA's per-row scratch count vector (size K)."""
        return self.scratch_base + topic * _ENTRY_BYTES

    def token_data(self, token_index: np.ndarray, width: int = 2) -> np.ndarray:
        """Addresses of the per-token data (assignment + proposals), sequential."""
        return self.token_data_base + token_index * width * _ENTRY_BYTES


class AccessTraceGenerator:
    """Generates count-matrix access traces for every algorithm in Table 2.

    Parameters
    ----------
    corpus:
        The corpus whose tokens are visited.
    num_topics:
        Number of topics ``K``.
    assignments:
        Per-token topic assignments used to derive which matrix entries are
        touched; random assignments are drawn if omitted (which topic is
        touched matters far less for locality than which *row* is touched).
    num_mh_steps:
        ``M`` for the MH-based algorithms (Table 4 uses 1).
    rng:
        Seed or generator for the random components of the access patterns.
    max_tokens:
        Optional cap on the number of tokens visited per trace, so that the
        (slow, pure-Python) cache simulation stays tractable on larger
        corpora; the visiting order is preserved.
    """

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int,
        assignments: Optional[np.ndarray] = None,
        num_mh_steps: int = 1,
        rng: RngLike = None,
        max_tokens: Optional[int] = None,
    ):
        if num_topics <= 0:
            raise ValueError("num_topics must be positive")
        if num_mh_steps <= 0:
            raise ValueError("num_mh_steps must be positive")
        self.corpus = corpus
        self.num_topics = num_topics
        self.num_mh_steps = num_mh_steps
        self.rng = ensure_rng(rng)
        self.max_tokens = max_tokens
        if assignments is None:
            assignments = self.rng.integers(num_topics, size=corpus.num_tokens)
        assignments = np.asarray(assignments, dtype=np.int64)
        if assignments.shape != (corpus.num_tokens,):
            raise ValueError("assignments must have one entry per token")
        self.assignments = assignments
        self.address_space = AddressSpace(
            corpus.num_documents, corpus.vocabulary_size, num_topics
        )
        # Distinct topics currently present in each document / word, which is
        # what the sparsity-aware algorithms enumerate (their K_dn sets).
        self._doc_topics = [
            np.unique(assignments[corpus.document_token_indices(d)])
            for d in range(corpus.num_documents)
        ]
        self._word_topics = [
            np.unique(assignments[corpus.word_token_indices(w)])
            for w in range(corpus.vocabulary_size)
        ]

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _budget(self) -> int:
        if self.max_tokens is None:
            return self.corpus.num_tokens
        return min(self.max_tokens, self.corpus.num_tokens)

    def _emit(self, addresses: np.ndarray) -> Iterator[int]:
        yield from addresses.tolist()

    # ------------------------------------------------------------------ #
    # Algorithm traces
    # ------------------------------------------------------------------ #
    def sparselda(self) -> Iterator[int]:
        """SparseLDA: doc order; reads the non-zero topics of both c_d and c_w."""
        space = self.address_space
        remaining = self._budget()
        for doc in range(self.corpus.num_documents):
            if remaining <= 0:
                return
            doc_topics = self._doc_topics[doc]
            for token_index in self.corpus.document_token_indices(doc):
                if remaining <= 0:
                    return
                remaining -= 1
                word = int(self.corpus.token_words[token_index])
                topic = int(self.assignments[token_index])
                word_topics = self._word_topics[word]
                yield from self._emit(space.doc_topic(np.int64(doc), doc_topics))
                yield from self._emit(space.word_topic(np.int64(word), word_topics))
                yield int(space.doc_topic(np.int64(doc), np.int64(topic)))
                yield int(space.word_topic(np.int64(word), np.int64(topic)))

    def aliaslda(self) -> Iterator[int]:
        """AliasLDA: doc order; enumerates c_d, probes a few c_w entries."""
        space = self.address_space
        rng = self.rng
        remaining = self._budget()
        for doc in range(self.corpus.num_documents):
            if remaining <= 0:
                return
            doc_topics = self._doc_topics[doc]
            for token_index in self.corpus.document_token_indices(doc):
                if remaining <= 0:
                    return
                remaining -= 1
                word = int(self.corpus.token_words[token_index])
                topic = int(self.assignments[token_index])
                probes = rng.integers(self.num_topics, size=self.num_mh_steps)
                yield from self._emit(space.doc_topic(np.int64(doc), doc_topics))
                yield from self._emit(space.word_topic(np.int64(word), probes))
                yield int(space.doc_topic(np.int64(doc), np.int64(topic)))
                yield int(space.word_topic(np.int64(word), np.int64(topic)))

    def fpluslda(self) -> Iterator[int]:
        """F+LDA: word order; enumerates the non-zero topics of c_d."""
        space = self.address_space
        remaining = self._budget()
        for word in range(self.corpus.vocabulary_size):
            if remaining <= 0:
                return
            word_topics = self._word_topics[word]
            for token_index in self.corpus.word_token_indices(word):
                if remaining <= 0:
                    return
                remaining -= 1
                doc = int(self.corpus.token_documents[token_index])
                topic = int(self.assignments[token_index])
                doc_topics = self._doc_topics[doc]
                yield from self._emit(space.doc_topic(np.int64(doc), doc_topics))
                # The word's own counts are kept in the F+ tree, rebuilt per
                # word: sequential within the current column.
                yield from self._emit(
                    space.word_topic(np.int64(word), word_topics[: min(4, word_topics.size)])
                )
                yield int(space.doc_topic(np.int64(doc), np.int64(topic)))
                yield int(space.word_topic(np.int64(word), np.int64(topic)))

    def lightlda(self) -> Iterator[int]:
        """LightLDA: doc order; O(1) probes per token but into both matrices."""
        space = self.address_space
        rng = self.rng
        remaining = self._budget()
        for doc in range(self.corpus.num_documents):
            if remaining <= 0:
                return
            for token_index in self.corpus.document_token_indices(doc):
                if remaining <= 0:
                    return
                remaining -= 1
                word = int(self.corpus.token_words[token_index])
                topic = int(self.assignments[token_index])
                for _ in range(self.num_mh_steps):
                    candidates = rng.integers(self.num_topics, size=2)
                    yield int(space.doc_topic(np.int64(doc), candidates[0]))
                    yield int(space.doc_topic(np.int64(doc), candidates[1]))
                    yield int(space.word_topic(np.int64(word), candidates[0]))
                    yield int(space.word_topic(np.int64(word), candidates[1]))
                    yield int(space.topic_counts(candidates[0]))
                    yield int(space.topic_counts(candidates[1]))
                yield int(space.doc_topic(np.int64(doc), np.int64(topic)))
                yield int(space.word_topic(np.int64(word), np.int64(topic)))

    def warplda(self) -> Iterator[int]:
        """WarpLDA: two passes whose random accesses stay inside one K-vector.

        The document pass touches only the scratch ``c_d`` of the current
        document plus ``c_k``; the word pass touches only the scratch ``c_w``
        of the current word.  The per-token data itself is accessed
        sequentially.
        """
        space = self.address_space
        rng = self.rng
        half_budget = max(self._budget() // 2, 1)

        # Document pass.
        remaining = half_budget
        for doc in range(self.corpus.num_documents):
            if remaining <= 0:
                break
            for token_index in self.corpus.document_token_indices(doc):
                if remaining <= 0:
                    break
                remaining -= 1
                topic = int(self.assignments[token_index])
                for _ in range(self.num_mh_steps):
                    candidate = int(rng.integers(self.num_topics))
                    yield int(space.scratch(np.int64(topic)))
                    yield int(space.scratch(np.int64(candidate)))
                    yield int(space.topic_counts(np.int64(candidate)))

        # Word pass.
        remaining = half_budget
        for word in range(self.corpus.vocabulary_size):
            if remaining <= 0:
                break
            for token_index in self.corpus.word_token_indices(word):
                if remaining <= 0:
                    break
                remaining -= 1
                topic = int(self.assignments[token_index])
                for _ in range(self.num_mh_steps):
                    candidate = int(rng.integers(self.num_topics))
                    yield int(space.scratch(np.int64(topic)))
                    yield int(space.scratch(np.int64(candidate)))
                    yield int(space.topic_counts(np.int64(candidate)))


#: Map from algorithm display name to the tracer method that generates its trace.
ALGORITHM_TRACERS: Dict[str, str] = {
    "SparseLDA": "sparselda",
    "AliasLDA": "aliaslda",
    "F+LDA": "fpluslda",
    "LightLDA": "lightlda",
    "WarpLDA": "warplda",
}
