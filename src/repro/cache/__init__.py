"""Memory-hierarchy simulation and memory-access analysis.

The paper's central claim is about *cache locality*: every earlier fast LDA
sampler randomly accesses an O(KV) or O(DK) count matrix while sweeping
tokens, so its working set cannot fit in the L3 cache, whereas WarpLDA's
randomly accessed memory per document (or word) is a single O(K) vector.

Real hardware counters (PAPI) are not available in this reproduction, so this
package substitutes a trace-driven simulation:

* :mod:`repro.cache.hierarchy` — the Table 1 memory hierarchy description;
* :mod:`repro.cache.simulator` — a set-associative LRU multi-level cache
  simulator;
* :mod:`repro.cache.tracing` — per-algorithm memory-access trace generators
  that replay exactly the count-matrix accesses of Sec. 3.3;
* :mod:`repro.cache.analysis` — the analytic access-pattern summary of
  Table 2 and the driver that reproduces the Table 4 L3 miss-rate comparison.
"""

from repro.cache.analysis import (
    AccessPatternSummary,
    access_pattern_table,
    estimate_topic_sparsity,
    l3_miss_rate_experiment,
)
from repro.cache.hierarchy import (
    IVY_BRIDGE_HIERARCHY,
    CacheLevelConfig,
    MemoryHierarchyConfig,
)
from repro.cache.simulator import CacheSimulator, HierarchySimulator
from repro.cache.tracing import ALGORITHM_TRACERS, AccessTraceGenerator

__all__ = [
    "ALGORITHM_TRACERS",
    "AccessPatternSummary",
    "AccessTraceGenerator",
    "CacheLevelConfig",
    "CacheSimulator",
    "HierarchySimulator",
    "IVY_BRIDGE_HIERARCHY",
    "MemoryHierarchyConfig",
    "access_pattern_table",
    "estimate_topic_sparsity",
    "l3_miss_rate_experiment",
]
