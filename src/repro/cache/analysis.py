"""Memory-access analysis: the paper's Table 2 and Table 4.

Two complementary views are provided:

* :func:`access_pattern_table` reproduces Table 2 — per algorithm, the amount
  of sequential accesses per token, the number of random accesses per token
  and the size of the randomly accessed memory per document — both as the
  paper's symbolic expressions and as concrete numbers for a given corpus and
  topic count (using measured ``K_d`` / ``K_w`` sparsity).
* :func:`l3_miss_rate_experiment` reproduces Table 4 — L3 cache miss rates of
  LightLDA, F+LDA and WarpLDA — by replaying each algorithm's access trace
  through the cache simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cache.hierarchy import IVY_BRIDGE_HIERARCHY, MemoryHierarchyConfig
from repro.cache.simulator import HierarchySimulator
from repro.cache.tracing import ALGORITHM_TRACERS, AccessTraceGenerator
from repro.corpus.corpus import Corpus
from repro.sampling.rng import RngLike, ensure_rng, seed_from_deprecated_rng

__all__ = [
    "AccessPatternSummary",
    "access_pattern_table",
    "estimate_topic_sparsity",
    "l3_miss_rate_experiment",
    "working_set_bytes",
]

_ENTRY_BYTES = 8

#: Sentinel default for ``l3_miss_rate_experiment``'s ``seed`` so the
#: deprecated ``rng=`` alias can still be detected (the effective default
#: seed is 0).
_DEFAULT_SEED: Any = object()


def estimate_topic_sparsity(
    corpus: Corpus, num_topics: int, assignments: Optional[np.ndarray] = None,
    seed: RngLike = None, rng: RngLike = None,
) -> Tuple[float, float]:
    """Return ``(mean K_d, mean K_w)`` — distinct topics per document / word.

    If no assignments are supplied, random assignments drawn from ``seed``
    are used, which gives the early-iteration (densest) regime.  ``rng=`` is
    a deprecated alias for ``seed=``.
    """
    seed = seed_from_deprecated_rng(seed, rng, "estimate_topic_sparsity")
    if assignments is None:
        assignments = ensure_rng(seed).integers(
            num_topics, size=corpus.num_tokens
        )
    assignments = np.asarray(assignments, dtype=np.int64)
    doc_sparsity = np.array(
        [
            np.unique(assignments[corpus.document_token_indices(d)]).size
            for d in range(corpus.num_documents)
        ],
        dtype=np.float64,
    )
    word_counts = corpus.word_frequencies()
    word_sparsity = np.array(
        [
            np.unique(assignments[corpus.word_token_indices(w)]).size
            for w in range(corpus.vocabulary_size)
            if word_counts[w] > 0
        ],
        dtype=np.float64,
    )
    return float(doc_sparsity.mean()), float(word_sparsity.mean())


def working_set_bytes(corpus: Corpus, num_topics: int) -> Dict[str, int]:
    """Size in bytes of the structures an algorithm may randomly access."""
    return {
        "doc_topic_matrix": corpus.num_documents * num_topics * _ENTRY_BYTES,
        "word_topic_matrix": corpus.vocabulary_size * num_topics * _ENTRY_BYTES,
        "topic_vector": num_topics * _ENTRY_BYTES,
    }


@dataclass(frozen=True)
class AccessPatternSummary:
    """One row of the paper's Table 2."""

    algorithm: str
    family: str
    visiting_order: str
    sequential_per_token: str
    random_per_token: str
    random_memory_per_doc: str
    sequential_per_token_value: float
    random_per_token_value: float
    random_memory_per_doc_bytes: int


def access_pattern_table(
    corpus: Corpus,
    num_topics: int,
    assignments: Optional[np.ndarray] = None,
    num_mh_steps: int = 1,
    seed: RngLike = None,
    rng: RngLike = None,
) -> List[AccessPatternSummary]:
    """Reproduce Table 2 with concrete numbers for ``corpus`` and ``num_topics``.

    The symbolic columns are the paper's; the numeric columns instantiate them
    with the measured mean ``K_d`` / ``K_w`` and the matrix sizes of the given
    problem.  ``rng=`` is a deprecated alias for ``seed=``.
    """
    seed = seed_from_deprecated_rng(seed, rng, "access_pattern_table")
    mean_kd, mean_kw = estimate_topic_sparsity(corpus, num_topics, assignments, seed)
    sizes = working_set_bytes(corpus, num_topics)
    kv_bytes = sizes["word_topic_matrix"]
    dk_bytes = sizes["doc_topic_matrix"]
    k_bytes = sizes["topic_vector"]

    return [
        AccessPatternSummary(
            algorithm="CGS",
            family="exact",
            visiting_order="doc",
            sequential_per_token="K",
            random_per_token="-",
            random_memory_per_doc="-",
            sequential_per_token_value=float(num_topics),
            random_per_token_value=0.0,
            random_memory_per_doc_bytes=kv_bytes,
        ),
        AccessPatternSummary(
            algorithm="SparseLDA",
            family="sparsity-aware",
            visiting_order="doc",
            sequential_per_token="Kd + Kw",
            random_per_token="Kd + Kw",
            random_memory_per_doc="O(KV)",
            sequential_per_token_value=mean_kd + mean_kw,
            random_per_token_value=mean_kd + mean_kw,
            random_memory_per_doc_bytes=kv_bytes,
        ),
        AccessPatternSummary(
            algorithm="AliasLDA",
            family="sparsity-aware + MH",
            visiting_order="doc",
            sequential_per_token="Kd",
            random_per_token="Kd",
            random_memory_per_doc="O(KV)",
            sequential_per_token_value=mean_kd,
            random_per_token_value=mean_kd,
            random_memory_per_doc_bytes=kv_bytes,
        ),
        AccessPatternSummary(
            algorithm="F+LDA",
            family="sparsity-aware",
            visiting_order="word",
            sequential_per_token="Kd",
            random_per_token="Kd",
            random_memory_per_doc="O(DK)",
            sequential_per_token_value=mean_kd,
            random_per_token_value=mean_kd,
            random_memory_per_doc_bytes=dk_bytes,
        ),
        AccessPatternSummary(
            algorithm="LightLDA",
            family="MH",
            visiting_order="doc",
            sequential_per_token="-",
            random_per_token="1",
            random_memory_per_doc="O(KV)",
            sequential_per_token_value=0.0,
            random_per_token_value=float(2 * num_mh_steps),
            random_memory_per_doc_bytes=kv_bytes,
        ),
        AccessPatternSummary(
            algorithm="WarpLDA",
            family="MH",
            visiting_order="doc & word",
            sequential_per_token="-",
            random_per_token="1",
            random_memory_per_doc="O(K)",
            sequential_per_token_value=0.0,
            random_per_token_value=float(2 * num_mh_steps),
            random_memory_per_doc_bytes=k_bytes,
        ),
    ]


def l3_miss_rate_experiment(
    corpus: Corpus,
    num_topics: int,
    algorithms: Iterable[str] = ("LightLDA", "F+LDA", "WarpLDA"),
    hierarchy: Optional[MemoryHierarchyConfig] = None,
    cache_scale: Optional[float] = None,
    num_mh_steps: int = 1,
    assignments: Optional[np.ndarray] = None,
    max_tokens: Optional[int] = 20_000,
    seed: RngLike = _DEFAULT_SEED,
    rng: RngLike = None,
) -> Dict[str, Dict[str, float]]:
    """Reproduce the Table 4 comparison on ``corpus``.

    Parameters
    ----------
    corpus, num_topics:
        The workload.
    algorithms:
        Algorithm names from :data:`~repro.cache.tracing.ALGORITHM_TRACERS`.
    hierarchy:
        Memory hierarchy to simulate; defaults to the paper's Ivy Bridge
        configuration, scaled (see ``cache_scale``).
    cache_scale:
        Factor by which the cache sizes are multiplied.  If ``None``, a factor
        is chosen automatically so that the word-topic matrix of the scaled
        workload stands in the same relation to the L3 as the paper's full-size
        matrices did (matrix ≈ 30x the L3 capacity).
    num_mh_steps:
        ``M`` for the MH algorithms (the paper's Table 4 uses M=1).
    max_tokens:
        Cap on the tokens visited per trace, for tractability.
    seed:
        Seed controlling the synthetic topic assignments and probe draws
        (default 0, so the experiment is repeatable out of the box).
        ``rng=`` is a deprecated alias.

    Returns
    -------
    dict
        ``{algorithm: {"l3_miss_rate", "memory_accesses", "avg_latency_cycles",
        "trace_length"}}``.
    """
    # The sentinel keeps "defaulted" distinguishable from an explicit
    # seed while the deprecated rng= alias is folded in.
    if seed is _DEFAULT_SEED:
        seed = None if rng is not None else 0
    seed = seed_from_deprecated_rng(seed, rng, "l3_miss_rate_experiment")
    draw_rng = ensure_rng(seed)
    if hierarchy is None:
        hierarchy = IVY_BRIDGE_HIERARCHY
        if cache_scale is None:
            matrix_bytes = corpus.vocabulary_size * num_topics * _ENTRY_BYTES
            paper_ratio = 30.0  # KV matrix ≈ 30x the 30 MB L3 in the paper's setups
            target_l3 = max(matrix_bytes / paper_ratio, 16 * 1024)
            cache_scale = target_l3 / hierarchy.level("L3").size_bytes
        hierarchy = hierarchy.scaled(cache_scale)
    elif cache_scale is not None:
        hierarchy = hierarchy.scaled(cache_scale)

    tracer = AccessTraceGenerator(
        corpus,
        num_topics,
        assignments=assignments,
        num_mh_steps=num_mh_steps,
        rng=draw_rng,
        max_tokens=max_tokens,
    )

    results: Dict[str, Dict[str, float]] = {}
    for algorithm in algorithms:
        method_name = ALGORITHM_TRACERS.get(algorithm)
        if method_name is None:
            known = ", ".join(sorted(ALGORITHM_TRACERS))
            raise KeyError(f"unknown algorithm {algorithm!r}; known: {known}")
        simulator = HierarchySimulator(hierarchy)
        simulator.access_many(getattr(tracer, method_name)())
        total = max(simulator.total_accesses, 1)
        results[algorithm] = {
            # Fraction of all count-structure references that miss the L3 and
            # go to main memory (the quantity that determines the average
            # latency, and the robust analogue of the paper's PAPI number).
            "l3_miss_rate": simulator.memory_accesses / total,
            # Local L3 miss rate (misses / accesses *to the L3*), for
            # completeness; degenerate when an algorithm barely touches L3.
            "l3_local_miss_rate": simulator.miss_rate("L3"),
            "l1_miss_rate": simulator.miss_rate("L1D"),
            "memory_accesses": float(simulator.memory_accesses),
            "avg_latency_cycles": simulator.average_latency(),
            "trace_length": float(simulator.total_accesses),
        }
    return results
