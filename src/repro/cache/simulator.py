"""Trace-driven, set-associative, LRU cache simulation.

:class:`CacheSimulator` models one cache level; :class:`HierarchySimulator`
stacks several levels in front of main memory and reports per-level hit / miss
counts, miss rates and the total modelled access latency in cycles.  The
simulation is inclusive and write-allocate: every access touches L1, an L2
access happens only on an L1 miss, and so on — matching how the paper's PAPI
"L3 miss rate" counter is defined (L3 misses / L3 accesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.cache.hierarchy import CacheLevelConfig, MemoryHierarchyConfig

__all__ = ["CacheSimulator", "HierarchySimulator", "LevelStatistics"]


@dataclass
class LevelStatistics:
    """Hit/miss counters of one cache level."""

    name: str
    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        """Misses divided by accesses *to this level* (0 if never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class CacheSimulator:
    """One set-associative LRU cache level."""

    def __init__(self, config: CacheLevelConfig):
        self.config = config
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        self._line_shift = int(config.line_size).bit_length() - 1
        # tags[set, way] = line tag, -1 for invalid; stamps track recency.
        self._tags = np.full((self._num_sets, self._associativity), -1, dtype=np.int64)
        self._stamps = np.zeros((self._num_sets, self._associativity), dtype=np.int64)
        self._clock = 0
        self.statistics = LevelStatistics(name=config.name)

    def reset(self) -> None:
        """Invalidate the cache and clear the counters."""
        self._tags.fill(-1)
        self._stamps.fill(0)
        self._clock = 0
        self.statistics = LevelStatistics(name=self.config.name)

    def access(self, address: int) -> bool:
        """Access one byte address; return True on hit, False on miss.

        A miss allocates the line (write-allocate), evicting the LRU way.
        """
        line = address >> self._line_shift
        set_index = line % self._num_sets
        tag = line // self._num_sets
        self._clock += 1
        self.statistics.accesses += 1

        tags_row = self._tags[set_index]
        hit_ways = np.nonzero(tags_row == tag)[0]
        if hit_ways.size:
            self.statistics.hits += 1
            self._stamps[set_index, hit_ways[0]] = self._clock
            return True

        victim = int(np.argmin(self._stamps[set_index]))
        tags_row[victim] = tag
        self._stamps[set_index, victim] = self._clock
        return False


class HierarchySimulator:
    """A stack of cache levels in front of main memory.

    Parameters
    ----------
    config:
        The memory hierarchy to simulate; defaults can be taken from
        :data:`~repro.cache.hierarchy.IVY_BRIDGE_HIERARCHY` (optionally
        ``.scaled(...)`` to match a scaled-down workload).
    """

    def __init__(self, config: MemoryHierarchyConfig):
        self.config = config
        self.levels = [CacheSimulator(level) for level in config.levels]
        self.memory_accesses = 0
        self.total_cycles = 0

    def reset(self) -> None:
        """Clear all caches and counters."""
        for level in self.levels:
            level.reset()
        self.memory_accesses = 0
        self.total_cycles = 0

    def access(self, address: int) -> str:
        """Access one address and return the name of the level that served it."""
        for level in self.levels:
            hit = level.access(address)
            self.total_cycles += level.config.latency_cycles
            if hit:
                return level.config.name
        self.memory_accesses += 1
        self.total_cycles += self.config.memory_latency_cycles
        return "memory"

    def access_many(self, addresses: Iterable[int]) -> None:
        """Replay a whole address trace."""
        for address in addresses:
            self.access(int(address))

    # ------------------------------------------------------------------ #
    def miss_rate(self, level_name: str) -> float:
        """Miss rate of the named level (e.g. ``"L3"``)."""
        for level in self.levels:
            if level.config.name == level_name:
                return level.statistics.miss_rate
        raise KeyError(f"no cache level named {level_name!r}")

    def statistics(self) -> Dict[str, LevelStatistics]:
        """Per-level statistics keyed by level name."""
        return {level.config.name: level.statistics for level in self.levels}

    @property
    def total_accesses(self) -> int:
        """Number of addresses replayed so far."""
        return self.levels[0].statistics.accesses if self.levels else 0

    def average_latency(self) -> float:
        """Average modelled cycles per access (0 if nothing was replayed)."""
        if self.total_accesses == 0:
            return 0.0
        return self.total_cycles / self.total_accesses
