"""Memory-hierarchy description (the paper's Table 1).

The default configuration models the Intel Ivy Bridge machine of the paper:
a 32 KB L1 data cache (5 cycles), a 256 KB L2 (12 cycles), a 30 MB shared L3
(30 cycles) and main memory at 180+ cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["CacheLevelConfig", "MemoryHierarchyConfig", "IVY_BRIDGE_HIERARCHY"]


@dataclass(frozen=True)
class CacheLevelConfig:
    """One level of the cache hierarchy."""

    name: str
    size_bytes: int
    latency_cycles: int
    line_size: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.latency_cycles <= 0:
            raise ValueError("latency_cycles must be positive")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        num_lines = self.size_bytes // self.line_size
        if num_lines < self.associativity:
            raise ValueError("cache must hold at least one set")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return max(self.num_lines // self.associativity, 1)


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """A stack of cache levels backed by main memory."""

    levels: Tuple[CacheLevelConfig, ...]
    memory_latency_cycles: int = 180

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a hierarchy needs at least one cache level")
        if self.memory_latency_cycles <= 0:
            raise ValueError("memory_latency_cycles must be positive")
        sizes = [level.size_bytes for level in self.levels]
        if sizes != sorted(sizes):
            raise ValueError("cache levels must be ordered from smallest to largest")

    def level(self, name: str) -> CacheLevelConfig:
        """Return the level named ``name`` (e.g. ``"L3"``)."""
        for level in self.levels:
            if level.name == name:
                return level
        raise KeyError(f"no cache level named {name!r}")

    def scaled(self, factor: float) -> "MemoryHierarchyConfig":
        """Return a copy with every cache size multiplied by ``factor``.

        The reproduction runs on corpora thousands of times smaller than the
        paper's, so the count matrices would trivially fit in a real 30 MB L3.
        Scaling the cache sizes by the same factor as the data restores the
        paper's regime: the per-document O(K) vectors fit, the O(KV) and
        O(DK) matrices do not.  Latencies are left unchanged.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        levels = []
        for level in self.levels:
            size = max(int(level.size_bytes * factor), level.line_size * level.associativity)
            levels.append(
                CacheLevelConfig(
                    name=level.name,
                    size_bytes=size,
                    latency_cycles=level.latency_cycles,
                    line_size=level.line_size,
                    associativity=level.associativity,
                )
            )
        return MemoryHierarchyConfig(
            levels=tuple(levels), memory_latency_cycles=self.memory_latency_cycles
        )

    def table_rows(self) -> List[Dict[str, object]]:
        """Rows of the paper's Table 1 (latency and size per level)."""
        rows = [
            {
                "level": level.name,
                "latency_cycles": level.latency_cycles,
                "size_bytes": level.size_bytes,
            }
            for level in self.levels
        ]
        rows.append(
            {
                "level": "Main memory",
                "latency_cycles": self.memory_latency_cycles,
                "size_bytes": None,
            }
        )
        return rows


#: The Ivy Bridge configuration of Table 1.
IVY_BRIDGE_HIERARCHY = MemoryHierarchyConfig(
    levels=(
        CacheLevelConfig(name="L1D", size_bytes=32 * 1024, latency_cycles=5),
        CacheLevelConfig(name="L2", size_bytes=256 * 1024, latency_cycles=12),
        CacheLevelConfig(name="L3", size_bytes=30 * 1024 * 1024, latency_cycles=30, associativity=16),
    ),
    memory_latency_cycles=180,
)
