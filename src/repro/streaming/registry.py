"""A versioned registry of model snapshots with atomic swap and rollback.

:class:`ModelRegistry` is the hand-off point between online training and
serving: the trainer *publishes* immutable
:class:`~repro.serving.snapshot.ModelSnapshot`\\ s, each assigned a
monotonically increasing version, and servers *follow* the registry's
current pointer (see :meth:`repro.serving.server.TopicServer.attach_registry`).
The design mirrors a production model store:

* **Atomic pointer swap** — publishing installs the new version and moves
  the current pointer under one lock; readers always observe a complete
  version, never a half-published one.  On disk the pointer is a ``CURRENT``
  file replaced with :func:`os.replace` (atomic on POSIX), so a crashed
  publish can never leave a dangling pointer.
* **Retention / GC** — only the newest ``retain`` versions are kept (the
  current pointer is always kept, even after a rollback past the retention
  horizon); garbage-collected versions also have their files deleted.
* **Rollback** — :meth:`ModelRegistry.rollback` moves the current pointer
  back to any retained version without republishing, the escape hatch when
  a freshly-published model misbehaves.

Persistence is optional: with a ``directory`` every version is saved as a
normal snapshot (``v00001.npz`` + JSON sidecar) and the registry can be
reopened later with :meth:`ModelRegistry.open`.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs import get_telemetry
from repro.serving.snapshot import ModelSnapshot

__all__ = ["ModelRegistry", "PublishedVersion"]

#: On-disk name of the atomic current-version pointer.
_CURRENT_POINTER = "CURRENT"

#: Default retention window (versions kept for rollback).
_DEFAULT_RETAIN = 4


def _version_stem(version: int) -> str:
    return f"v{version:05d}"


@dataclass(frozen=True)
class PublishedVersion:
    """One immutable registry entry."""

    version: int
    snapshot: ModelSnapshot
    published_at: float
    metadata: Dict[str, Any] = field(default_factory=dict)


class ModelRegistry:
    """Thread-safe versioned store of model snapshots (see module docstring).

    Parameters
    ----------
    retain:
        Number of most-recent versions kept for rollback; older versions are
        garbage-collected at publish time (the current pointer is exempt).
    directory:
        Optional persistence directory; every published version is saved
        there and GC deletes the files of collected versions.

    Examples
    --------
    >>> registry = ModelRegistry(retain=2)
    >>> v1 = registry.publish(snapshot)            # doctest: +SKIP
    >>> registry.current().version                  # doctest: +SKIP
    1
    """

    def __init__(
        self,
        retain: int = _DEFAULT_RETAIN,
        directory: Optional[Union[str, Path]] = None,
    ) -> None:
        if retain < 1:
            raise ValueError(f"retain must be at least 1, got {retain}")
        self.retain = int(retain)
        self._lock = threading.RLock()
        self._versions: Dict[int, PublishedVersion] = {}
        self._current: Optional[int] = None
        self._next_version = 1
        self._directory: Optional[Path] = None
        if directory is not None:
            self._directory = Path(directory)
            self._directory.mkdir(parents=True, exist_ok=True)
            # A reused directory may hold versions from a previous run.
            # Numbering resumes past them so a publish can never overwrite
            # (and silently start serving over) another run's files; use
            # :meth:`open` instead to *adopt* the previous versions.
            existing = [
                int(stem.stem.lstrip("v"))
                for stem in self._directory.glob("v*.npz")
                if stem.stem.lstrip("v").isdigit()
            ]
            if existing:
                self._next_version = max(existing) + 1

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(
        self, snapshot: ModelSnapshot, **metadata: Any
    ) -> PublishedVersion:
        """Install ``snapshot`` as the new current version.

        Returns the :class:`PublishedVersion`; the snapshot's own metadata
        is preserved and the registry version is recorded alongside it.
        """
        if not isinstance(snapshot, ModelSnapshot):
            raise TypeError(
                f"publish expects a ModelSnapshot, got {type(snapshot).__name__}"
            )
        with self._lock:
            version = self._next_version
            self._next_version += 1
        # The registry version and publish metadata are merged into the
        # snapshot itself, so the in-memory entry and a reopened-from-disk
        # entry carry identical metadata.
        snapshot = snapshot.with_metadata(registry_version=version, **metadata)
        entry = PublishedVersion(
            version=version,
            snapshot=snapshot,
            published_at=time.time(),
            metadata=snapshot.metadata,
        )
        # The (potentially large) snapshot write happens OUTSIDE the lock so
        # readers — a server calling current() per request — are never
        # blocked behind disk I/O.
        if self._directory is not None:
            snapshot.save(self._directory / f"{_version_stem(version)}.npz")
        with self._lock:
            # The swap itself: one dict insert + one pointer assignment under
            # the lock.  Readers either see the old version or the new one.
            # Concurrent publishes may finish their saves out of order; the
            # pointer only ever moves forward to the highest finished version.
            self._versions[version] = entry
            if self._current is None or version > self._current:
                self._current = version
                if self._directory is not None:
                    self._write_pointer(version)
            collected, doomed = self._gc_locked()
        # Retired snapshot files (potentially large) are deleted after the
        # lock is released, for the same reason the save happens before it.
        for path in doomed:
            path.unlink(missing_ok=True)
        obs = get_telemetry()
        if obs.enabled:
            obs.count("registry.publishes")
            if collected:
                obs.count("registry.versions_collected", collected)
            obs.event(
                "registry_publish", version=version, collected_versions=collected
            )
        return entry

    def _write_pointer(self, version: int) -> None:
        """Atomically repoint the on-disk ``CURRENT`` file."""
        assert self._directory is not None
        fd, temp_path = tempfile.mkstemp(
            prefix=_CURRENT_POINTER, dir=self._directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"{version}\n")
            os.replace(temp_path, self._directory / _CURRENT_POINTER)
        except BaseException:
            Path(temp_path).unlink(missing_ok=True)
            raise

    def _gc_locked(self) -> Tuple[int, List[Path]]:
        """Drop versions beyond the retention horizon (never the current).

        Returns ``(collected, doomed)``: how many versions were collected,
        and the files of collected versions for the caller to delete *after*
        releasing the lock (empty without a persistence directory).
        """
        versions = sorted(self._versions)
        keep = set(versions[-self.retain :])
        if self._current is not None:
            keep.add(self._current)
        collected = 0
        doomed: List[Path] = []
        for version in versions:
            if version in keep:
                continue
            del self._versions[version]
            collected += 1
            if self._directory is not None:
                stem = self._directory / f"{_version_stem(version)}.npz"
                doomed.append(stem)
                doomed.append(stem.with_suffix(".npz.json"))
        return collected, doomed

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def current_version(self) -> Optional[int]:
        """The current version number (``None`` before the first publish)."""
        with self._lock:
            return self._current

    def current(self) -> Optional[PublishedVersion]:
        """The current entry, atomically (``None`` before the first publish)."""
        with self._lock:
            if self._current is None:
                return None
            return self._versions[self._current]

    def get(self, version: int) -> PublishedVersion:
        """The retained entry for ``version`` (:class:`KeyError` if collected)."""
        with self._lock:
            try:
                return self._versions[version]
            except KeyError:
                raise KeyError(
                    f"version {version} is not retained (have "
                    f"{sorted(self._versions)})"
                ) from None

    def versions(self) -> List[int]:
        """All retained version numbers, ascending."""
        with self._lock:
            return sorted(self._versions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)

    # ------------------------------------------------------------------ #
    # Rollback
    # ------------------------------------------------------------------ #
    def rollback(self, version: Optional[int] = None) -> PublishedVersion:
        """Move the current pointer back without republishing.

        ``version=None`` steps back to the newest retained version older
        than the current one; an explicit ``version`` must be retained.
        Future publishes keep numbering from the high-water mark, so a
        rollback can never cause a version number to be reused.
        """
        with self._lock:
            if self._current is None:
                raise RuntimeError("nothing published yet; cannot roll back")
            if version is None:
                older = [v for v in self._versions if v < self._current]
                if not older:
                    raise RuntimeError(
                        f"no retained version older than the current "
                        f"({self._current}) to roll back to"
                    )
                version = max(older)
            entry = self.get(int(version))
            previous = self._current
            self._current = entry.version
            if self._directory is not None:
                self._write_pointer(entry.version)
        obs = get_telemetry()
        if obs.enabled:
            obs.count("registry.rollbacks")
            obs.event(
                "registry_rollback", from_version=previous, to_version=entry.version
            )
        return entry

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls, directory: Union[str, Path], retain: Optional[int] = None
    ) -> "ModelRegistry":
        """Reopen a persisted registry: load retained versions + the pointer.

        The retention policy is not persisted, so pass the ``retain`` you
        originally configured; when omitted it defaults to the larger of the
        versions found on disk and the class default — reopening never
        immediately garbage-collects anything, and never silently tightens
        retention below the default either.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(f"registry directory not found: {directory}")
        found: Dict[int, ModelSnapshot] = {}
        mtimes: Dict[int, float] = {}
        for stem in sorted(directory.glob("v*.npz")):
            try:
                version = int(stem.stem.lstrip("v"))
            except ValueError:
                continue
            try:
                found[version] = ModelSnapshot.load(stem)
            except (FileNotFoundError, ValueError, KeyError, OSError):
                # A publish that crashed mid-write leaves a partial version
                # (e.g. the .npz without its sidecar).  Skip it: the intact
                # versions — and the CURRENT pointer, written only after a
                # complete save — must stay reachable.
                continue
            mtimes[version] = stem.stat().st_mtime
        registry = cls(
            retain=retain if retain is not None else max(len(found), _DEFAULT_RETAIN),
            directory=directory,
        )
        for version in sorted(found):
            snapshot = found[version]
            registry._versions[version] = PublishedVersion(
                version=version,
                snapshot=snapshot,
                published_at=mtimes[version],
                metadata=dict(snapshot.metadata),
            )
        if found:
            registry._next_version = max(found) + 1
            pointer = directory / _CURRENT_POINTER
            current = max(found)
            if pointer.exists():
                recorded = int(pointer.read_text(encoding="utf-8").strip())
                if recorded in found:
                    current = recorded
            registry._current = current
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"ModelRegistry(current={self._current}, "
                f"retained={sorted(self._versions)}, retain={self.retain})"
            )
