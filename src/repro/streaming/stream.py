"""Mini-batch ingestion of raw documents into the streaming pipeline.

:class:`DocumentStream` is the front door of :mod:`repro.streaming`: raw
token sequences (strings) or pre-encoded word-id arrays are pushed one
document at a time, encoded against a shared — and, with ``on_oov="add"``,
*growing* — :class:`~repro.corpus.vocabulary.Vocabulary`, and handed onward
as :class:`MiniBatch` objects of at most ``batch_docs`` documents.  The
mini-batch is the unit everything downstream operates on: the streaming
corpus appends one batch at a time, the online trainer folds one batch in
per update, and the registry publish cadence is counted in batches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.corpus.vocabulary import Vocabulary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.store import MappedCorpus

__all__ = ["DocumentStream", "MiniBatch", "StreamStats"]

#: One raw request: tokens (strings) or word ids (ints / arrays).
RawDocument = Union[np.ndarray, Sequence[int], Sequence[str]]


@dataclass(frozen=True)
class MiniBatch:
    """One closed ingestion batch: encoded documents plus arrival metadata.

    Attributes
    ----------
    documents:
        Per-document word-id arrays (``int64``), already encoded against the
        stream's vocabulary.  May contain empty documents (all tokens OOV
        under ``on_oov="drop"``, or genuinely empty input).
    doc_ids:
        Optional external identifiers, aligned with ``documents``.
    sequence:
        Zero-based index of this batch within the stream.
    closed_at:
        ``time.perf_counter()`` timestamp at which the batch was closed —
        the start of the ingest-to-servable latency clock.
    oov_dropped:
        Tokens dropped while encoding this batch (``on_oov="drop"`` only).
    """

    documents: List[np.ndarray]
    doc_ids: List[Optional[str]]
    sequence: int
    closed_at: float
    oov_dropped: int = 0

    @property
    def num_documents(self) -> int:
        """Number of documents in the batch."""
        return len(self.documents)

    @property
    def num_tokens(self) -> int:
        """Total encoded tokens in the batch."""
        return int(sum(doc.size for doc in self.documents))

    def __len__(self) -> int:
        return len(self.documents)


@dataclass
class StreamStats:
    """Running totals over everything the stream has encoded."""

    documents: int = 0
    tokens: int = 0
    oov_dropped: int = 0
    batches: int = 0
    words_added: int = 0

    def summary(self) -> str:
        """A one-line human-readable report."""
        return (
            f"{self.documents} documents / {self.tokens} tokens in "
            f"{self.batches} batches ({self.words_added} new words, "
            f"{self.oov_dropped} OOV dropped)"
        )


class DocumentStream:
    """Encode raw documents against a shared vocabulary and emit mini-batches.

    Parameters
    ----------
    vocabulary:
        The vocabulary every document is encoded against.  With the default
        ``on_oov="add"`` it grows as unseen words arrive (it must not be
        frozen); with ``"drop"`` unseen words are silently discarded (the
        right mode when replaying traffic against a frozen model).
    batch_docs:
        Number of documents per emitted :class:`MiniBatch`.
    on_oov:
        Vocabulary growth policy, forwarded to
        :meth:`~repro.corpus.vocabulary.Vocabulary.encode`.

    Examples
    --------
    >>> stream = DocumentStream(Vocabulary(), batch_docs=2)
    >>> stream.push(["the", "cat"]) is None
    True
    >>> batch = stream.push(["the", "dog"])
    >>> batch.num_documents
    2
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        batch_docs: int = 64,
        on_oov: str = "add",
    ) -> None:
        if batch_docs <= 0:
            raise ValueError(f"batch_docs must be positive, got {batch_docs}")
        if on_oov not in ("add", "drop", "error"):
            raise ValueError(
                f"on_oov must be 'add', 'drop' or 'error', got {on_oov!r}"
            )
        if on_oov == "add" and vocabulary.frozen:
            raise ValueError(
                "on_oov='add' requires an unfrozen vocabulary; encode "
                "against a frozen snapshot vocabulary with on_oov='drop'"
            )
        self.vocabulary = vocabulary
        self.batch_docs = int(batch_docs)
        self.on_oov = on_oov
        self.stats = StreamStats()
        self._pending_docs: List[np.ndarray] = []
        self._pending_ids: List[Optional[str]] = []
        self._pending_dropped = 0
        self._sequence = 0
        self._replay_source: Optional[_StoreReplay] = None

    # ------------------------------------------------------------------ #
    def _encode(self, document: RawDocument) -> np.ndarray:
        """Normalise one raw document to a word-id array."""
        if isinstance(document, np.ndarray) and document.dtype != object:
            ids = np.asarray(document, dtype=np.int64)
            if ids.size and (ids.min() < 0 or ids.max() >= self.vocabulary.size):
                raise ValueError(
                    f"word ids must be in [0, {self.vocabulary.size}), got "
                    f"range [{ids.min()}, {ids.max()}]"
                )
            return ids
        items = list(document)
        if any(isinstance(item, str) for item in items):
            before = len(items)
            ids = self.vocabulary.encode(items, on_oov=self.on_oov)
            if self.on_oov == "drop":
                self._pending_dropped += before - ids.size
            return ids
        return self._encode(np.asarray(items, dtype=np.int64))

    def push(
        self, document: RawDocument, doc_id: Optional[str] = None
    ) -> Optional[MiniBatch]:
        """Add one document; returns the closed batch once it fills."""
        vocab_before = self.vocabulary.size
        encoded = self._encode(document)
        self.stats.words_added += self.vocabulary.size - vocab_before
        self._pending_docs.append(encoded)
        self._pending_ids.append(doc_id)
        self.stats.documents += 1
        self.stats.tokens += int(encoded.size)
        if len(self._pending_docs) >= self.batch_docs:
            return self.flush()
        return None

    def flush(self) -> Optional[MiniBatch]:
        """Close and return the pending partial batch (``None`` if empty)."""
        if not self._pending_docs:
            return None
        batch = MiniBatch(
            documents=self._pending_docs,
            doc_ids=self._pending_ids,
            sequence=self._sequence,
            closed_at=time.perf_counter(),
            oov_dropped=self._pending_dropped,
        )
        self.stats.oov_dropped += self._pending_dropped
        self.stats.batches += 1
        self._pending_docs = []
        self._pending_ids = []
        self._pending_dropped = 0
        self._sequence += 1
        return batch

    @property
    def pending(self) -> int:
        """Documents waiting for the current batch to fill."""
        return len(self._pending_docs)

    @classmethod
    def from_store(
        cls,
        store: Union[str, Path, "MappedCorpus"],
        batch_docs: int = 64,
        vocabulary: Optional[Vocabulary] = None,
        on_oov: str = "add",
    ) -> "DocumentStream":
        """A stream that replays an on-disk corpus store as mini-batches.

        The disk replay source for :mod:`repro.streaming`: documents are
        read from the store in bounded chunks
        (:func:`repro.corpus.store.iter_store_documents`), never via a full
        ingestion, so replay memory stays flat in corpus size.  Drive it
        with :meth:`replay`.

        Parameters
        ----------
        store:
            A store directory path or an already-open
            :class:`~repro.corpus.store.MappedCorpus`.
        batch_docs:
            Documents per emitted :class:`MiniBatch`.
        vocabulary:
            ``None`` (default) seeds the stream with a fresh, unfrozen copy
            of the store's vocabulary and pushes raw id arrays — the cheap
            path, ids aligned with the store.  Passing a vocabulary (e.g. a
            live online trainer's) instead replays *decoded words*, so the
            target vocabulary performs its own growth or OOV policy.
        on_oov:
            Growth policy, as for the constructor.
        """
        from repro.corpus.store import MappedCorpus, open_store

        corpus = store if isinstance(store, MappedCorpus) else open_store(store)
        decode = vocabulary is not None
        if vocabulary is None:
            vocabulary = Vocabulary(corpus.vocabulary.words())
        stream = cls(vocabulary, batch_docs=batch_docs, on_oov=on_oov)
        stream._replay_source = _StoreReplay(corpus, decode=decode)
        return stream

    def replay(self) -> Iterator[MiniBatch]:
        """Yield every mini-batch of the attached store replay (one-shot)."""
        if self._replay_source is None:
            raise ValueError(
                "this stream has no replay source; build it with "
                "DocumentStream.from_store(...)"
            )
        source = self._replay_source
        self._replay_source = None
        return self.batches(source)

    def batches(self, documents: Iterable[RawDocument]) -> Iterator[MiniBatch]:
        """Drive the stream over an iterable, yielding every closed batch.

        The final partial batch is flushed and yielded too, so every pushed
        document reaches the consumer exactly once.
        """
        for document in documents:
            batch = self.push(document)
            if batch is not None:
                yield batch
        tail = self.flush()
        if tail is not None:
            yield tail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DocumentStream(batch_docs={self.batch_docs}, on_oov={self.on_oov!r}, "
            f"pending={self.pending}, V={self.vocabulary.size})"
        )


class _StoreReplay:
    """Bounded-memory document source over a mapped corpus store.

    Yields raw id arrays (``decode=False``) or decoded token lists
    (``decode=True``); either way the underlying reads are chunked
    ``np.fromfile`` calls, so iteration never pages the store into residency.
    """

    def __init__(self, corpus: "MappedCorpus", decode: bool) -> None:
        self._corpus = corpus
        self._decode = decode

    def __iter__(self) -> Iterator[RawDocument]:
        from repro.corpus.store import iter_store_documents

        vocabulary = self._corpus.vocabulary
        for word_ids in iter_store_documents(self._corpus):
            if self._decode:
                yield [vocabulary.word(int(w)) for w in word_ids]
            else:
                yield word_ids
