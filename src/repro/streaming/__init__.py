"""Streaming ingestion, online training and versioned hot-swap serving.

The batch pipeline (corpus → sampler → snapshot → server) assumes a frozen
corpus; this package closes the loop for *arriving* data, the path the
paper's cheap O(1) sampler makes affordable in the first place:

* :class:`~repro.streaming.stream.DocumentStream` — mini-batch ingestion of
  raw documents, growing the shared vocabulary online
  (``encode(on_oov="add")``).
* :class:`~repro.streaming.corpus.StreamingCorpus` — a growable token-major
  corpus whose kernel slab-bucket cache is maintained incrementally: an
  append rebuilds only the buckets it touched.
* :class:`~repro.streaming.online.OnlineTrainer` — warm-started slab-kernel
  Gibbs sweeps over a sliding window of recent documents, with retired
  documents' counts kept as exponentially-decayed external mass.
* :class:`~repro.streaming.registry.ModelRegistry` — versioned snapshot
  store with atomic pointer swap, retention/GC and rollback.
* :class:`~repro.streaming.pipeline.StreamingPipeline` — the ingest →
  update → publish → hot-swap loop, feeding
  :meth:`repro.serving.server.TopicServer.attach_registry`.

See ``examples/streaming_demo.py`` for the end-to-end walkthrough and
``benchmarks/bench_streaming.py`` for ingest-to-servable latency and
sustained throughput numbers (``BENCH_streaming.json``).
"""

from repro.streaming.corpus import StreamingCorpus
from repro.streaming.online import OnlineTrainer, OnlineTrainerConfig, OnlineUpdate
from repro.streaming.pipeline import IngestReport, StreamingPipeline
from repro.streaming.registry import ModelRegistry, PublishedVersion
from repro.streaming.stream import DocumentStream, MiniBatch, StreamStats

__all__ = [
    "DocumentStream",
    "IngestReport",
    "MiniBatch",
    "ModelRegistry",
    "OnlineTrainer",
    "OnlineTrainerConfig",
    "OnlineUpdate",
    "PublishedVersion",
    "StreamStats",
    "StreamingCorpus",
    "StreamingPipeline",
]
