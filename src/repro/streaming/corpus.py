"""A growable corpus that appends mini-batches and keeps kernel caches warm.

:class:`StreamingCorpus` extends :class:`~repro.corpus.corpus.Corpus` with an
:meth:`~StreamingCorpus.append` operation so arriving documents join the
token-major layout without rebuilding it from scratch:

* the flat token arrays live in capacity-doubling stores, so appends are
  amortised O(tokens appended);
* the word-major (CSC) permutation is *merged*, not re-sorted: new tokens are
  inserted at the end of their word's region (``O(T)`` memmove + ``O(B log
  B)`` batch sort instead of ``O(T log T)``), preserving the stable
  document-order-within-word layout of Sec. 5.2;
* the slab-bucket cache of :mod:`repro.kernels.buckets` is maintained
  **incrementally**: on the document axis the new documents' rows are
  appended to their power-of-two band buckets, and on the word axis only the
  buckets containing words that actually received tokens are rebuilt — every
  untouched bucket is reused as the *same object*, so a sampler running over
  the stream between appends pays only for the rows the append dirtied.

Any contiguous window of the stream is served by the inherited
:meth:`~repro.corpus.corpus.Corpus.slice` (a zero-copy view);
:meth:`~StreamingCorpus.window` returns the trailing ``num_docs`` documents,
or the streaming corpus itself when the window covers everything — which is
what keeps the incrementally-maintained buckets on the hot path while the
stream is still shorter than the training window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.corpus.corpus import Corpus, Document
from repro.corpus.vocabulary import Vocabulary
from repro.kernels.buckets import SlabBucket, build_buckets

__all__ = ["StreamingCorpus"]

#: Initial capacity (tokens) of the flat stores.
_INITIAL_CAPACITY = 1024


def _as_documents(
    documents: Sequence[Union[Document, np.ndarray, Sequence[int]]]
) -> List[Document]:
    out = []
    for doc in documents:
        if isinstance(doc, Document):
            out.append(doc)
        else:
            out.append(Document(np.asarray(doc, dtype=np.int64)))
    return out


def _merge_band(existing: Optional[SlabBucket], new: SlabBucket) -> SlabBucket:
    """Append ``new``'s rows to ``existing`` (same power-of-two band)."""
    if existing is None:
        return new
    return SlabBucket(
        rows=np.concatenate([existing.rows, new.rows]),
        tokens=np.concatenate([existing.tokens, new.tokens]),
        mask=np.concatenate([existing.mask, new.mask]),
        lengths=np.concatenate([existing.lengths, new.lengths]),
    )


class StreamingCorpus(Corpus):
    """A corpus that grows by mini-batch appends (see module docstring).

    Parameters
    ----------
    vocabulary:
        The shared vocabulary; typically unfrozen and grown by the ingestion
        layer (:class:`~repro.streaming.stream.DocumentStream`) before each
        append.  A fresh empty vocabulary is created when omitted.

    Notes
    -----
    Unlike :class:`~repro.corpus.corpus.Corpus`, a streaming corpus may be
    empty (zero documents) — samplers are only ever built over non-empty
    windows.  Views returned by :meth:`slice` (including partial
    :meth:`window` calls) are snapshots: they keep referencing the storage
    that backed them at creation time, so later appends never mutate a view
    handed to a sampler or server.  :meth:`window` covering the whole stream
    returns the *live* corpus itself, not a snapshot — slice explicitly if
    immutability is needed there.
    """

    def __init__(self, vocabulary: Optional[Vocabulary] = None) -> None:
        self._vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        self._documents: List[Document] = []
        self._token_store = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._token_doc_store = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._doc_offsets = np.zeros(1, dtype=np.int64)
        self._token_words = self._token_store[:0]
        self._token_docs = self._token_doc_store[:0]
        self._word_order = np.empty(0, dtype=np.int64)
        self._word_frequencies = np.zeros(self._vocabulary.size, dtype=np.int64)
        self._word_offsets = np.zeros(self._vocabulary.size + 1, dtype=np.int64)
        # Eager-maintenance mode: while True, every append merges the CSC
        # view and refreshes any built slab buckets in place.  Once a
        # consumer detaches (stop_incremental_maintenance), appends only
        # touch the token-major arrays and the CSC view is rebuilt lazily
        # on first use — keeping appends O(batch) for the stream's lifetime.
        self._csc_live = True
        self._csc_dirty = False
        #: Appends performed so far.
        self.appends = 0
        #: Per-axis counts of bucket objects reused as-is vs rebuilt across
        #: all appends — the observability hook the incremental-maintenance
        #: tests (and the streaming bench) read.
        self.bucket_reuses: Dict[str, int] = {"doc": 0, "word": 0}
        self.bucket_rebuilds: Dict[str, int] = {"doc": 0, "word": 0}

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def _ensure_capacity(self, num_tokens: int) -> None:
        if num_tokens <= self._token_store.size:
            return
        capacity = self._token_store.size
        while capacity < num_tokens:
            capacity *= 2
        # Old views (window slices) keep the old stores alive and unchanged.
        token_store = np.empty(capacity, dtype=np.int64)
        token_store[: self.num_tokens] = self._token_words
        doc_store = np.empty(capacity, dtype=np.int64)
        doc_store[: self.num_tokens] = self._token_docs
        self._token_store = token_store
        self._token_doc_store = doc_store

    def append(
        self, documents: Sequence[Union[Document, np.ndarray, Sequence[int]]]
    ) -> int:
        """Append ``documents`` to the stream; returns the tokens added.

        Word ids must be valid for the *current* vocabulary — grow the
        vocabulary first (``encode(on_oov="add")``), then append.
        """
        docs = _as_documents(documents)
        if not docs:
            return 0
        old_tokens = self.num_tokens
        old_docs = self.num_documents
        old_vocab = self._word_offsets.size - 1

        lengths = np.array([doc.length for doc in docs], dtype=np.int64)
        if lengths.sum():
            batch_words = np.concatenate(
                [doc.word_ids for doc in docs if doc.length]
            ).astype(np.int64)
        else:
            batch_words = np.empty(0, dtype=np.int64)
        if batch_words.size and batch_words.max() >= self._vocabulary.size:
            raise ValueError(
                f"word id {int(batch_words.max())} out of range for vocabulary "
                f"of size {self._vocabulary.size}"
            )

        new_tokens = old_tokens + int(lengths.sum())
        self._ensure_capacity(new_tokens)
        self._token_store[old_tokens:new_tokens] = batch_words
        self._token_doc_store[old_tokens:new_tokens] = np.repeat(
            np.arange(old_docs, old_docs + len(docs), dtype=np.int64), lengths
        )
        self._token_words = self._token_store[:new_tokens]
        self._token_docs = self._token_doc_store[:new_tokens]
        self._doc_offsets = np.concatenate(
            [self._doc_offsets, old_tokens + np.cumsum(lengths)]
        )
        self._documents.extend(docs)

        if self._csc_live:
            self._merge_word_axis(batch_words, old_tokens, old_vocab)
            self._update_bucket_cache(batch_words, old_docs)
        else:
            self._csc_dirty = True
            # Any buckets a kernel built since detaching are now stale.
            self.__dict__.pop("_slab_bucket_cache", None)
        self.appends += 1
        return new_tokens - old_tokens

    def _merge_word_axis(
        self, batch_words: np.ndarray, old_tokens: int, old_vocab: int
    ) -> None:
        """Merge the new tokens into the CSC view without a full re-sort.

        The old ``word_order`` is sorted by word id, stable in document
        order; every new token sorts after all old tokens of its word (its
        flat index is larger), so each lands exactly at the *end* of its
        word's old region — ``old_word_offsets[w + 1]`` — and new-word tokens
        land at the very end.  Ties within the batch keep batch order via a
        stable sort, so the merged permutation equals a stable argsort of the
        full token array.
        """
        live_vocab = self._vocabulary.size
        if batch_words.size:
            batch_sort = np.argsort(batch_words, kind="stable")
            sorted_words = batch_words[batch_sort]
            sorted_index = (old_tokens + batch_sort).astype(np.int64)
            if old_vocab:
                insert_at = np.where(
                    sorted_words < old_vocab,
                    self._word_offsets[np.minimum(sorted_words, old_vocab - 1) + 1],
                    old_tokens,
                )
            else:
                insert_at = np.full(sorted_words.size, old_tokens, dtype=np.int64)
            self._word_order = np.insert(self._word_order, insert_at, sorted_index)

        frequencies = np.zeros(live_vocab, dtype=np.int64)
        frequencies[:old_vocab] = self._word_frequencies
        if batch_words.size:
            frequencies += np.bincount(batch_words, minlength=live_vocab)
        self._word_frequencies = frequencies
        self._word_offsets = np.zeros(live_vocab + 1, dtype=np.int64)
        np.cumsum(frequencies, out=self._word_offsets[1:])

    # ------------------------------------------------------------------ #
    # Incremental slab-bucket maintenance
    # ------------------------------------------------------------------ #
    def _update_bucket_cache(self, batch_words: np.ndarray, old_docs: int) -> None:
        """Refresh any built slab buckets for the rows this append touched.

        Buckets are only maintained if a kernel already built them
        (:func:`~repro.kernels.buckets.corpus_buckets` memoises on this
        instance); otherwise the next kernel call builds them fresh.
        """
        cache = self.__dict__.get("_slab_bucket_cache")
        if not cache:
            return
        if "doc" in cache:
            cache["doc"] = self._append_doc_buckets(cache["doc"], old_docs)
        if "word" in cache:
            cache["word"] = self._rebuild_word_buckets(
                cache["word"], np.unique(batch_words)
            )

    def _append_doc_buckets(
        self, buckets: List[SlabBucket], old_docs: int
    ) -> List[SlabBucket]:
        """Append the new documents' rows to their band buckets.

        Existing rows never move on the document axis (token indices are
        append-only), so untouched bands keep their exact bucket objects.
        """
        by_len: Dict[int, SlabBucket] = {b.slab_len: b for b in buckets}
        touched = set()
        # Offsets of the appended suffix only; entry 0 is the absolute start
        # of the first new document, so positions are absolute token indices.
        for fresh in build_buckets(self._doc_offsets[old_docs:]):
            band = fresh.slab_len
            shifted = SlabBucket(
                rows=fresh.rows + old_docs,
                tokens=fresh.tokens,
                mask=fresh.mask,
                lengths=fresh.lengths,
            )
            by_len[band] = _merge_band(by_len.get(band), shifted)
            touched.add(band)
        self.bucket_rebuilds["doc"] += len(touched)
        self.bucket_reuses["doc"] += sum(
            1 for b in buckets if b.slab_len not in touched
        )
        return [by_len[band] for band in sorted(by_len)]

    def _rebuild_word_buckets(
        self, buckets: List[SlabBucket], affected_words: np.ndarray
    ) -> List[SlabBucket]:
        """Rebuild only the rows of words that received new tokens.

        A word with new tokens may change band (its frequency grew), so its
        row is removed from wherever it lived and re-bucketed from the merged
        CSC view; every bucket containing none of the affected words is
        reused untouched.
        """
        by_len: Dict[int, SlabBucket] = {}
        untouched = set()
        for bucket in buckets:
            keep = ~np.isin(bucket.rows, affected_words, assume_unique=False)
            if keep.all():
                by_len[bucket.slab_len] = bucket
                untouched.add(bucket.slab_len)
                continue
            self.bucket_rebuilds["word"] += 1
            if keep.any():
                by_len[bucket.slab_len] = SlabBucket(
                    rows=bucket.rows[keep],
                    tokens=bucket.tokens[keep],
                    mask=bucket.mask[keep],
                    lengths=bucket.lengths[keep],
                )
        for fresh in build_buckets(
            self._word_offsets, self._word_order, rows=affected_words
        ):
            band = fresh.slab_len
            if band in untouched:
                # The band was about to be reused as-is, but an affected word
                # migrated into it — it is a rebuild after all.
                untouched.discard(band)
                self.bucket_rebuilds["word"] += 1
            elif band not in by_len:
                self.bucket_rebuilds["word"] += 1
            by_len[band] = _merge_band(by_len.get(band), fresh)
        self.bucket_reuses["word"] += len(untouched)
        return [by_len[band] for band in sorted(by_len)]

    def stop_incremental_maintenance(self) -> None:
        """Drop the slab buckets and switch the CSC view to lazy rebuilds.

        Once a consumer stops sampling the stream corpus itself (e.g. the
        online trainer's window detaches into slice views, which carry their
        own caches and CSC permutations), the full-stream buckets and the
        per-append CSC merge are dead weight: both grow with the stream, so
        every append would keep paying O(stream) for structures nothing
        reads.  After this call, appends only touch the token-major arrays;
        the word-major view (``word_offsets``/``word_order``/word
        frequencies) is rebuilt on demand the next time something asks for
        it, and a later kernel call simply rebuilds its buckets from that.
        """
        self._csc_live = False
        self.__dict__.pop("_slab_bucket_cache", None)

    def _refresh_csc(self) -> None:
        """Bring the word-major view up to date before anyone reads it.

        Two staleness sources: lazy appends after
        :meth:`stop_incremental_maintenance` (full rebuild), and vocabulary
        growth *between* appends — the ingestion layer adds words at push
        time, before the batch is appended — which only needs zero-frequency
        padding for the new words (the permutation is untouched).
        """
        if self._csc_dirty:
            self._word_order = np.argsort(self._token_words, kind="stable")
            self._word_frequencies = np.bincount(
                self._token_words, minlength=self._vocabulary.size
            ).astype(np.int64)
            self._word_offsets = np.zeros(self._vocabulary.size + 1, dtype=np.int64)
            np.cumsum(self._word_frequencies, out=self._word_offsets[1:])
            self._csc_dirty = False
            return
        grown = self._vocabulary.size - (self._word_offsets.size - 1)
        if grown > 0:
            self._word_frequencies = np.concatenate(
                [self._word_frequencies, np.zeros(grown, dtype=np.int64)]
            )
            self._word_offsets = np.concatenate(
                [
                    self._word_offsets,
                    np.full(grown, self._word_offsets[-1], dtype=np.int64),
                ]
            )

    @property
    def word_offsets(self) -> np.ndarray:
        """CSC offsets (lazily refreshed after detached appends)."""
        self._refresh_csc()
        return self._word_offsets

    @property
    def word_order(self) -> np.ndarray:
        """CSC permutation (lazily refreshed after detached appends)."""
        self._refresh_csc()
        return self._word_order

    def word_frequencies(self) -> np.ndarray:
        """Per-word term frequencies (lazily refreshed)."""
        self._refresh_csc()
        return self._word_frequencies.copy()

    def word_token_indices(self, word_id: int) -> np.ndarray:
        """Token indices of ``word_id`` (lazily refreshed)."""
        self._refresh_csc()
        return super().word_token_indices(word_id)

    # ------------------------------------------------------------------ #
    # Windows
    # ------------------------------------------------------------------ #
    def window(self, num_docs: Optional[int] = None) -> Corpus:
        """The trailing ``num_docs`` documents as a corpus.

        Returns *this* corpus when the window covers the whole stream (so
        the incrementally-maintained bucket cache stays on the hot path),
        otherwise a zero-copy :meth:`~repro.corpus.corpus.Corpus.slice`
        snapshot of the tail.
        """
        if num_docs is not None and num_docs < 0:
            raise ValueError(f"num_docs must be non-negative, got {num_docs}")
        if num_docs is None or num_docs >= self.num_documents:
            return self
        return self.slice(self.num_documents - num_docs, self.num_documents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingCorpus(documents={self.num_documents}, "
            f"tokens={self.num_tokens}, vocabulary={self._vocabulary.size}, "
            f"appends={self.appends})"
        )
