"""End-to-end glue: ingest → online update → publish → hot-swap serving.

:class:`StreamingPipeline` wires the streaming pieces into the loop a
production deployment runs forever:

1. a mini-batch arrives (from a :class:`~repro.streaming.stream.DocumentStream`
   or any sequence of encoded documents);
2. the :class:`~repro.streaming.online.OnlineTrainer` appends it to the
   streaming corpus and runs the window sweeps;
3. every ``publish_every`` batches the refreshed model is exported and
   published to the :class:`~repro.streaming.registry.ModelRegistry`;
4. an attached :class:`~repro.serving.server.TopicServer` is nudged to
   hot-swap immediately, which bounds the **ingest-to-servable latency** —
   the wall-clock time from a batch entering the pipeline to a server
   answering queries with a model that has seen it.  Each
   :class:`IngestReport` records that latency; the streaming benchmark
   aggregates them into ``BENCH_streaming.json``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.corpus.corpus import Document
from repro.obs import get_telemetry
from repro.serving.server import TopicServer
from repro.streaming.online import OnlineTrainer, OnlineUpdate
from repro.streaming.registry import ModelRegistry, PublishedVersion
from repro.streaming.stream import MiniBatch

__all__ = ["IngestReport", "StreamingPipeline"]


@dataclass(frozen=True)
class IngestReport:
    """What one pipeline step did, with its latency breakdown."""

    update: OnlineUpdate
    published: Optional[PublishedVersion]
    #: Wall-clock seconds for append + window sweeps + (if due) publish,
    #: measured from :meth:`StreamingPipeline.ingest` entry — pure pipeline
    #: work, no queueing.
    ingest_seconds: float
    #: Seconds from batch *arrival* (``MiniBatch.closed_at``; call entry for
    #: plain sequences) until an attached server was serving a model
    #: containing this batch — queueing delay deliberately included.
    #: ``None`` when the step did not publish or no server is attached.
    ingest_to_servable_seconds: Optional[float]
    #: Seconds spent in registry publish + server refresh; ``None`` when the
    #: step did not publish.
    publish_seconds: Optional[float] = None


class StreamingPipeline:
    """Drive mini-batches through train → publish → hot-swap (module docstring).

    Parameters
    ----------
    trainer:
        The online trainer owning the streaming corpus and the model.
    registry:
        Version store to publish to; a fresh in-memory registry is created
        when omitted.
    server:
        Optional topic server to keep hot; it is attached to the registry
        and refreshed synchronously after every publish.
    publish_every:
        Publish cadence in mini-batches (1 = a fresh servable model per
        batch).
    report_history:
        How many recent :class:`IngestReport`\\ s to retain on
        :attr:`reports` — a bounded window, so a pipeline that runs forever
        does not grow without bound (``ingest`` always *returns* the full
        report; retention is only for post-hoc inspection).

    Examples
    --------
    >>> trainer = OnlineTrainer(num_topics=5, seed=0)      # doctest: +SKIP
    >>> pipeline = StreamingPipeline(trainer)               # doctest: +SKIP
    >>> report = pipeline.ingest(batch)                     # doctest: +SKIP
    >>> report.published.version                            # doctest: +SKIP
    1
    """

    def __init__(
        self,
        trainer: OnlineTrainer,
        registry: Optional[ModelRegistry] = None,
        server: Optional[TopicServer] = None,
        publish_every: int = 1,
        report_history: int = 256,
    ) -> None:
        if publish_every <= 0:
            raise ValueError(f"publish_every must be positive, got {publish_every}")
        if report_history < 0:
            raise ValueError(
                f"report_history must be non-negative, got {report_history}"
            )
        self.trainer = trainer
        self.registry = registry if registry is not None else ModelRegistry()
        self.server = server
        self.publish_every = int(publish_every)
        self.reports: Deque[IngestReport] = deque(maxlen=report_history)
        if server is not None:
            server.attach_registry(self.registry)

    # ------------------------------------------------------------------ #
    def ingest(
        self,
        batch: Union[MiniBatch, Sequence[Union[Document, np.ndarray, Sequence[int]]]],
        **publish_metadata: Any,
    ) -> IngestReport:
        """Run one full pipeline step for ``batch``; returns its report.

        For a :class:`~repro.streaming.stream.MiniBatch` the latency clock
        starts at the batch's ``closed_at`` timestamp — the moment the
        ingestion layer finished assembling it — so any queueing delay
        between the stream and this call is part of the measured
        ingest-to-servable latency.  Plain document sequences carry no
        arrival time and are clocked from call entry.
        """
        obs = get_telemetry()
        entered = time.perf_counter()
        arrival = batch.closed_at if isinstance(batch, MiniBatch) else entered
        published: Optional[PublishedVersion] = None
        servable: Optional[float] = None
        publish_seconds: Optional[float] = None
        with obs.span("ingest", batch=self.trainer.batches_ingested + 1):
            update = self.trainer.ingest(batch)
            # A publish needs a model: leading batches that carried no tokens
            # (empty documents, or everything OOV-dropped) defer it to the next
            # due batch instead of crashing the ingest loop on export.
            due = (
                self.trainer.batches_ingested % self.publish_every == 0
                and self.trainer.corpus.num_tokens > 0
            )
            if due:
                publish_started = time.perf_counter()
                with obs.span("publish", batch=update.batch_index):
                    published = self.registry.publish(
                        self.trainer.export_snapshot(),
                        batch_index=update.batch_index,
                        **publish_metadata,
                    )
                    if self.server is not None:
                        self.server.refresh()
                        servable = time.perf_counter() - arrival
                publish_seconds = time.perf_counter() - publish_started
        report = IngestReport(
            update=update,
            published=published,
            ingest_seconds=time.perf_counter() - entered,
            ingest_to_servable_seconds=servable,
            publish_seconds=publish_seconds,
        )
        if obs.enabled:
            self._record(obs, report)
        # Recorded to telemetry *before* this bounded-history append so the
        # report survives observably even after it rolls off the deque.
        self.reports.append(report)
        return report

    @staticmethod
    def _record(obs: Any, report: IngestReport) -> None:
        """Fold one report into the active telemetry (metrics + one event)."""
        update = report.update
        obs.count("streaming.batches_ingested")
        obs.count("streaming.documents_ingested", update.documents_added)
        obs.count("streaming.tokens_ingested", update.tokens_added)
        obs.observe("streaming.ingest_seconds", report.ingest_seconds)
        obs.observe("streaming.train_seconds", update.train_seconds)
        if report.publish_seconds is not None:
            obs.observe("streaming.publish_seconds", report.publish_seconds)
        if report.ingest_to_servable_seconds is not None:
            obs.observe(
                "streaming.ingest_to_servable_seconds",
                report.ingest_to_servable_seconds,
            )
        obs.event(
            "ingest_report",
            batch_index=update.batch_index,
            documents_added=update.documents_added,
            tokens_added=update.tokens_added,
            window_documents=update.window_documents,
            window_tokens=update.window_tokens,
            retired_documents=update.retired_documents,
            vocabulary_size=update.vocabulary_size,
            train_seconds=update.train_seconds,
            ingest_seconds=report.ingest_seconds,
            publish_seconds=report.publish_seconds,
            ingest_to_servable_seconds=report.ingest_to_servable_seconds,
            published_version=(
                report.published.version if report.published is not None else None
            ),
        )

    def run(
        self, batches: Iterable[Union[MiniBatch, Sequence]], **publish_metadata: Any
    ) -> List[IngestReport]:
        """Ingest every batch of an iterable; returns the per-batch reports."""
        return [self.ingest(batch, **publish_metadata) for batch in batches]

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingPipeline(batches={self.trainer.batches_ingested}, "
            f"current_version={self.registry.current_version}, "
            f"publish_every={self.publish_every})"
        )
