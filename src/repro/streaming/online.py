"""Online LDA training over a sliding window of the document stream.

:class:`OnlineTrainer` turns the batch samplers into a continuously-updating
model.  Each ingested mini-batch is appended to a
:class:`~repro.streaming.corpus.StreamingCorpus`, and a few Gibbs sweeps are
run over a sliding window of the most recent documents using the *existing*
slab kernels (:mod:`repro.kernels`) — the streaming layer adds no new
sampling math, only the bookkeeping that makes incremental refreshes sound:

* **Warm-started window sweeps** — per-token topic assignments persist
  across batches in a stream-aligned buffer, so each update resumes the
  chain where the previous batch left it instead of re-burning in; only the
  newly arrived tokens start from random topics.
* **Retired counts** — when a document ages out of the window its tokens'
  final assignments are folded into a float ``V x K`` "retired" word-topic
  matrix.  Window sweeps sample against ``retired + window`` counts (the
  AD-LDA / delayed-count device the data-parallel trainer already uses:
  retired mass is imported as frozen external counts), so old documents keep
  shaping Φ without being re-sampled.
* **Exponential decay** — the retired matrix is multiplied by ``decay`` per
  batch, so data ages out at a configurable half-life and the model tracks
  drift; ``decay=1`` keeps every document's mass forever, which makes the
  online model converge to the batch retrain on the same cumulative corpus
  (the parity the end-to-end test checks).

The trained model is published as an ordinary
:class:`~repro.serving.snapshot.ModelSnapshot`, so the whole serving stack —
registry, hot-swap server, inference engine — works on streaming models
unchanged.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence, Union
if TYPE_CHECKING:  # serving imports stay lazy at runtime (PR 5 guarantee)
    from repro.serving.snapshot import ModelSnapshot


import numpy as np

from repro.core.warplda import WarpLDA
from repro.corpus.corpus import Corpus, Document
from repro.corpus.vocabulary import Vocabulary
from repro.samplers.base import (
    resolve_hyperparameters,
    resolve_kernel,
    validate_hyperparameters,
)
from repro.samplers.registry import SAMPLER_REGISTRY
from repro.sampling.rng import RngLike, ensure_rng
from repro.streaming.corpus import StreamingCorpus
from repro.streaming.stream import MiniBatch

__all__ = ["OnlineTrainer", "OnlineTrainerConfig", "OnlineUpdate"]


@dataclass(frozen=True)
class OnlineTrainerConfig:
    """Knobs of the streaming update loop.

    Attributes
    ----------
    num_topics:
        Number of topics ``K`` (fixed for the lifetime of the stream).
    alpha, beta:
        Dirichlet hyper-parameters; ``alpha=None`` resolves to 50/K.
    sampler:
        Key into the training registry (``"cgs"``, ``"warplda"``, ...).
        Defaults to ``"cgs"`` — the exact-enumeration sampler mixes fastest
        per sweep, which matters when each batch only gets a few sweeps.
    kernel:
        ``"slab"`` (vectorised kernels, default), ``"scalar"``, or ``"jit"``
        (WarpLDA only; falls back to slab without numba); samplers without a
        slab path fall back to scalar automatically.
    threads:
        Worker threads for the slab kernels' bucket dispatch; ``None`` defers
        to the ``REPRO_THREADS`` environment variable (default 1).  Results
        are bit-identical for every thread count.
    window_docs:
        Sliding-window size in documents.  Documents beyond the window are
        retired into the decayed external counts.
    sweeps_per_batch:
        Gibbs sweeps over the window per ingested mini-batch.
    decay:
        Exponential factor applied to the retired counts once per batch;
        ``1.0`` disables ageing, smaller values forget old data faster.
    num_mh_steps:
        MH proposals per token (WarpLDA / LightLDA only).
    """

    num_topics: int = 20
    alpha: Optional[float] = None
    beta: float = 0.01
    sampler: str = "cgs"
    kernel: str = "slab"
    threads: Optional[int] = None
    window_docs: int = 1024
    sweeps_per_batch: int = 2
    decay: float = 1.0
    num_mh_steps: int = 2

    def __post_init__(self) -> None:
        if self.sampler not in SAMPLER_REGISTRY:
            raise ValueError(
                f"unknown sampler {self.sampler!r}; choose from "
                f"{sorted(SAMPLER_REGISTRY)}"
            )
        if self.alpha is not None and not isinstance(self.alpha, (int, float)):
            # The config is JSON-serialised into snapshot metadata; a
            # length-K alpha vector would train fine and then crash the save.
            raise ValueError(
                f"alpha must be a scalar or None, got {type(self.alpha).__name__}"
            )
        validate_hyperparameters(self.num_topics, self.alpha, self.beta)
        if self.window_docs <= 0:
            raise ValueError(f"window_docs must be positive, got {self.window_docs}")
        if self.sweeps_per_batch <= 0:
            raise ValueError(
                f"sweeps_per_batch must be positive, got {self.sweeps_per_batch}"
            )
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if self.num_mh_steps <= 0:
            raise ValueError(f"num_mh_steps must be positive, got {self.num_mh_steps}")
        if self.kernel not in ("slab", "scalar", "jit"):
            raise ValueError(
                f"kernel must be 'slab', 'scalar' or 'jit', got {self.kernel!r}"
            )
        if self.threads is not None and self.threads <= 0:
            raise ValueError(f"threads must be positive, got {self.threads}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (snapshot metadata, bench records)."""
        return asdict(self)


@dataclass(frozen=True)
class OnlineUpdate:
    """What one :meth:`OnlineTrainer.ingest` call did.

    ``window_documents``/``window_tokens`` count what this update swept —
    the previous window plus the arriving batch, i.e. at most
    ``window_docs + batch`` documents; ``retired_documents`` is how many of
    them aged out (after the sweep) into the decayed external counts.
    """

    batch_index: int
    documents_added: int
    tokens_added: int
    window_documents: int
    window_tokens: int
    retired_documents: int
    vocabulary_size: int
    train_seconds: float


class OnlineTrainer:
    """Fold arriving mini-batches into a continuously-fresh topic model.

    Parameters
    ----------
    config:
        An :class:`OnlineTrainerConfig`; overridden by keyword arguments.
    vocabulary:
        The (growing) vocabulary the stream encodes against; a fresh one is
        created when omitted.  Ignored when ``corpus`` is given.
    corpus:
        An existing *empty* :class:`StreamingCorpus` to ingest into.
    seed:
        Seed or generator driving assignment initialisation and every
        window sweep; one seed makes the whole stream reproducible.

    Examples
    --------
    >>> trainer = OnlineTrainer(num_topics=5, window_docs=100, seed=0)
    >>> vocab = trainer.corpus.vocabulary
    >>> update = trainer.ingest([vocab.encode(t.split(), on_oov="add")
    ...                          for t in ["cats purr", "dogs bark"]])
    >>> update.documents_added
    2
    >>> trainer.export_snapshot().num_topics
    5
    """

    def __init__(
        self,
        config: Optional[OnlineTrainerConfig] = None,
        vocabulary: Optional[Vocabulary] = None,
        corpus: Optional[StreamingCorpus] = None,
        seed: RngLike = None,
        **config_kwargs: Any,
    ) -> None:
        if config is None:
            config = OnlineTrainerConfig(**config_kwargs)
        else:
            if config_kwargs:
                raise ValueError("pass either config or keyword arguments, not both")
            warnings.warn(
                "OnlineTrainer(config=...) is deprecated; declare the model "
                "with repro.api.ModelSpec / repro.api.LDA, or use "
                "OnlineTrainer.from_config(config, ...)",
                DeprecationWarning,
                stacklevel=2,
            )
        if corpus is None:
            corpus = StreamingCorpus(vocabulary)
        elif corpus.num_documents:
            raise ValueError(
                "OnlineTrainer requires an empty StreamingCorpus; ingest "
                "existing documents through ingest() so they are trained on"
            )
        self.config = config
        self.corpus = corpus
        self.rng = ensure_rng(seed)
        self.num_topics = config.num_topics
        self.alpha, self.alpha_sum, self.beta, _ = resolve_hyperparameters(
            config.num_topics, config.alpha, config.beta, vocabulary_size=1
        )
        # Stream-aligned per-token assignments (capacity-doubling store).
        self._assignment_store = np.empty(1024, dtype=np.int64)
        # Decayed word-topic counts of documents that aged out of the window.
        self._retired = np.zeros((corpus.vocabulary_size, self.num_topics))
        # Documents [0, _retired_docs) are folded into the retired counts;
        # documents [_retired_docs, D) are the live window.
        self._retired_docs = 0
        self.batches_ingested = 0
        self.documents_ingested = 0
        self.tokens_ingested = 0
        self.train_seconds = 0.0

    @classmethod
    def from_config(
        cls,
        config: OnlineTrainerConfig,
        vocabulary: Optional[Vocabulary] = None,
        corpus: Optional[StreamingCorpus] = None,
        seed: RngLike = None,
    ) -> "OnlineTrainer":
        """Build a trainer from a pre-validated :class:`OnlineTrainerConfig`.

        This is the lowering target of :class:`repro.api.ModelSpec` (and the
        replacement for the deprecated ``OnlineTrainer(config=...)``
        spelling); the two produce bit-identical trainers for the same
        config and seed.
        """
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return cls(config=config, vocabulary=vocabulary, corpus=corpus, seed=seed)

    # ------------------------------------------------------------------ #
    # Internal state helpers
    # ------------------------------------------------------------------ #
    @property
    def assignments(self) -> np.ndarray:
        """Per-token topic assignments for the whole stream (live view)."""
        return self._assignment_store[: self.corpus.num_tokens]

    def _grow_assignments(self, old_tokens: int) -> None:
        total = self.corpus.num_tokens
        if total > self._assignment_store.size:
            capacity = self._assignment_store.size
            while capacity < total:
                capacity *= 2
            store = np.empty(capacity, dtype=np.int64)
            store[:old_tokens] = self._assignment_store[:old_tokens]
            self._assignment_store = store
        added = total - old_tokens
        if added:
            self._assignment_store[old_tokens:total] = self.rng.integers(
                self.num_topics, size=added
            )

    def _grow_retired(self) -> None:
        vocab_size = self.corpus.vocabulary_size
        if vocab_size > self._retired.shape[0]:
            grown = np.zeros((vocab_size, self.num_topics))
            grown[: self._retired.shape[0]] = self._retired
            self._retired = grown

    def _retire_documents(self, new_start: int) -> int:
        """Fold documents ``[_retired_docs, new_start)`` into the retired counts."""
        retired = new_start - self._retired_docs
        if retired <= 0:
            return 0
        offsets = self.corpus.doc_offsets
        start, stop = int(offsets[self._retired_docs]), int(offsets[new_start])
        np.add.at(
            self._retired,
            (self.corpus.token_words[start:stop], self.assignments[start:stop]),
            1.0,
        )
        self._retired_docs = new_start
        return retired

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        batch: Union[MiniBatch, Sequence[Union[Document, np.ndarray, Sequence[int]]]],
    ) -> OnlineUpdate:
        """Append one mini-batch and run the window sweeps.

        ``batch`` is a :class:`~repro.streaming.stream.MiniBatch` or any
        sequence of encoded documents (word-id arrays / ``Document``).  The
        vocabulary must already contain every id (the ingestion layer grows
        it at encode time).
        """
        documents = batch.documents if isinstance(batch, MiniBatch) else list(batch)
        started = time.perf_counter()
        old_tokens = self.corpus.num_tokens
        added_tokens = self.corpus.append(documents)
        self._grow_assignments(old_tokens)
        self._grow_retired()
        if self.config.decay < 1.0 and self._retired.any():
            self._retired *= self.config.decay

        # Sweep over everything not yet retired — the previous window plus
        # the arriving batch — and only *then* retire down to the new window
        # start.  Retiring first would fold the new tokens' random initial
        # assignments into the retired counts unsampled whenever a batch is
        # larger than the window (pure noise, never corrected).
        num_docs = self.corpus.num_documents
        sweep_start = self._retired_docs
        window = (
            self.corpus
            if sweep_start == 0
            else self.corpus.slice(sweep_start, num_docs)
        )
        if sweep_start > 0:
            # The training window has detached from the stream for good
            # (sweep_start only grows): sweeps now run over slice views with
            # their own bucket caches and CSC permutations, so stop paying
            # to maintain — and stop retaining — the full-stream versions.
            self.corpus.stop_incremental_maintenance()
        window_token_start = int(self.corpus.doc_offsets[sweep_start])
        warm = self.assignments[window_token_start:]
        if window.num_tokens:
            self._sweep_window(window, warm)

        window_start = max(0, num_docs - self.config.window_docs)
        retired_now = self._retire_documents(window_start)

        elapsed = time.perf_counter() - started
        self.batches_ingested += 1
        self.documents_ingested += len(documents)
        self.tokens_ingested += added_tokens
        self.train_seconds += elapsed
        return OnlineUpdate(
            batch_index=self.batches_ingested - 1,
            documents_added=len(documents),
            tokens_added=added_tokens,
            window_documents=window.num_documents,
            window_tokens=window.num_tokens,
            retired_documents=retired_now,
            vocabulary_size=self.corpus.vocabulary_size,
            train_seconds=elapsed,
        )

    def _sweep_window(self, window: Corpus, warm: np.ndarray) -> None:
        """Run the configured sweeps over ``window``, warm-started at ``warm``.

        The retired counts enter as frozen external mass — exactly the
        epoch-frozen external counts of the data-parallel trainer, with the
        window playing the role of the local shard — and the refined
        assignments are written back into the stream-aligned buffer.
        """
        config = self.config
        external = np.rint(self._retired).astype(np.int64)
        sampler_cls = SAMPLER_REGISTRY[config.sampler]
        if sampler_cls is WarpLDA:
            model = WarpLDA(
                window,
                num_topics=config.num_topics,
                num_mh_steps=config.num_mh_steps,
                alpha=config.alpha,
                beta=config.beta,
                kernel=config.kernel,
                threads=config.threads,
                seed=self.rng,
            )
            model.assignments[:] = warm
            model.topic_counts = np.bincount(
                model.assignments, minlength=config.num_topics
            )
            if external.any():
                model.set_external_counts(external)
            model.fit(config.sweeps_per_batch)
            warm[:] = model.assignments
            return
        kernel = resolve_kernel(sampler_cls, config.kernel)
        kwargs: Dict[str, Any] = {
            "alpha": config.alpha,
            "beta": config.beta,
            "seed": self.rng,
            "kernel": kernel,
            "threads": config.threads,
        }
        if config.sampler == "lightlda":
            kwargs["num_mh_steps"] = config.num_mh_steps
        sampler = sampler_cls(window, config.num_topics, **kwargs)
        sampler.state.assignments[:] = warm
        sampler.state.recompute_counts()
        if external.any():
            # word_topic was just rebuilt from the warm assignments, so it
            # *is* the window's local contribution — no second count pass.
            sampler.state.import_global_word_topic(
                external + sampler.state.word_topic
            )
        sampler.invalidate_caches()
        sampler.fit(config.sweeps_per_batch)
        warm[:] = sampler.state.assignments

    # ------------------------------------------------------------------ #
    # Model access
    # ------------------------------------------------------------------ #
    def word_topic_counts(self, vocab_size: Optional[int] = None) -> np.ndarray:
        """The model's effective ``V x K`` counts: retired (decayed) + window.

        ``vocab_size`` defaults to the live vocabulary size, which may be
        *larger* than anything ingested so far — the ingestion layer grows
        the shared vocabulary at push time, before the batch reaches this
        trainer.  Words never ingested simply have zero counts.
        """
        if vocab_size is None:
            vocab_size = self.corpus.vocabulary_size
        counts = np.zeros((vocab_size, self.num_topics))
        counts[: self._retired.shape[0]] = self._retired
        offsets = self.corpus.doc_offsets
        start = int(offsets[self._retired_docs]) if self.corpus.num_documents else 0
        if self.corpus.num_tokens > start:
            np.add.at(
                counts,
                (self.corpus.token_words[start:], self.assignments[start:]),
                1.0,
            )
        return counts

    def phi(self, vocab_size: Optional[int] = None) -> np.ndarray:
        """Posterior-mean topic-word distributions Φ (``K x V``)."""
        if vocab_size is None:
            vocab_size = self.corpus.vocabulary_size
        if vocab_size == 0:
            raise ValueError("cannot compute phi before any vocabulary exists")
        counts = self.word_topic_counts(vocab_size).T + self.beta
        return counts / counts.sum(axis=1, keepdims=True)

    def export_snapshot(
        self, extra_metadata: Optional[Dict[str, Any]] = None
    ) -> "ModelSnapshot":
        """Freeze the current online model into a serving snapshot.

        Safe to call while the ingestion layer keeps growing the shared
        vocabulary: the export captures the vocabulary as a fixed prefix and
        sizes Φ to match, so pushed-but-not-yet-ingested words never
        desynchronise Φ from the snapshot vocabulary.
        """
        from repro.serving.snapshot import ModelSnapshot

        if self.batches_ingested == 0 or self.corpus.num_tokens == 0:
            raise ValueError("cannot export a snapshot before ingesting any tokens")
        words = self.corpus.vocabulary.words()
        metadata: Dict[str, Any] = {
            "sampler": f"Online[{self.config.sampler}]",
            "batches_ingested": self.batches_ingested,
            "num_documents": int(self.corpus.num_documents),
            "num_tokens": int(self.corpus.num_tokens),
            "window_docs": self.config.window_docs,
            "decay": self.config.decay,
        }
        if extra_metadata:
            metadata.update(extra_metadata)
        return ModelSnapshot(
            phi=self.phi(vocab_size=len(words)),
            alpha=self.alpha,
            beta=self.beta,
            vocabulary=Vocabulary(words),
            metadata=metadata,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineTrainer(sampler={self.config.sampler!r}, "
            f"K={self.num_topics}, batches={self.batches_ingested}, "
            f"D={self.corpus.num_documents}, V={self.corpus.vocabulary_size})"
        )
