"""``python -m repro`` — the unified, spec-driven command line.

Thin executable wrapper around :mod:`repro.api.cli`; see that module (or
``python -m repro --help``) for the subcommands: ``train``, ``stream``,
``serve`` and ``eval``.
"""

from __future__ import annotations

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
