"""Reporting helpers shared by the benchmark harness."""

from repro.report.tables import format_series, format_table

__all__ = ["format_series", "format_table"]
