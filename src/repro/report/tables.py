"""Plain-text table and series formatting for benchmark output.

The benchmark harness prints the rows / series of every paper table and
figure; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Union

__all__ = ["format_table", "format_series"]

Cell = Union[str, int, float, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Cell]], title: str = "") -> str:
    """Format a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_cell(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Iterable[float]], x_label: str, x_values: Iterable[float],
    title: str = ""
) -> str:
    """Format named y-series over shared x-values as a table."""
    x_list = list(x_values)
    rows: List[Dict[str, Cell]] = []
    materialised = {name: list(values) for name, values in series.items()}
    for index, x_value in enumerate(x_list):
        row: Dict[str, Cell] = {x_label: x_value}
        for name, values in materialised.items():
            row[name] = values[index] if index < len(values) else None
        rows.append(row)
    return format_table(rows, title=title)
