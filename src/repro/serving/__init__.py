"""Model serving: snapshots, batched unseen-document inference, topic server.

The training layer (:mod:`repro.samplers`, :mod:`repro.core`) produces models;
this package turns them into something deployable:

* :class:`~repro.serving.snapshot.ModelSnapshot` — an immutable, persistable
  freeze of Φ, α, β and the vocabulary (``model.export_snapshot()``).
* :class:`~repro.serving.infer.InferenceEngine` — batched θ inference for
  unseen documents, via vectorised EM fold-in or WarpLDA-style MH fold-in.
* :class:`~repro.serving.server.TopicServer` — a micro-batching front end
  with an LRU result cache and throughput/latency statistics.

See ``examples/serving_demo.py`` for the end-to-end flow and
``benchmarks/bench_serving_throughput.py`` for the serving benchmark.
"""

from repro.serving.infer import InferenceEngine, em_fold_in, mh_fold_in
from repro.serving.server import LRUCache, ServerStats, TopicServer
from repro.serving.snapshot import ModelSnapshot

__all__ = [
    "InferenceEngine",
    "LRUCache",
    "ModelSnapshot",
    "ServerStats",
    "TopicServer",
    "em_fold_in",
    "mh_fold_in",
]
