"""A micro-batching topic server over a frozen model snapshot.

:class:`TopicServer` is the front door of the serving layer: requests (raw
token documents or pre-encoded id arrays) are answered with folded-in θ rows.
Three production mechanisms sit between a request and the
:class:`~repro.serving.infer.InferenceEngine`:

* **Micro-batching** — requests are collected and dispatched to the engine in
  batches of at most ``max_batch_size``, amortising the vectorised kernels
  across concurrent requests instead of paying per-document overheads.  Use
  :meth:`TopicServer.submit` + :meth:`TopicServer.flush` for the queueing
  flow, or :meth:`TopicServer.infer_batch` to serve a ready batch in one call.
* **Result caching** — an LRU cache keyed on the document's bag of words.
  Fold-in is exchangeable (token order never enters the math), so two
  permutations of the same document share one cache entry; repeated requests
  (the common case under heavy traffic) skip inference entirely.
* **Observability** — per-request latencies and batch sizes are recorded and
  summarised as throughput plus p50/p95/p99 latency percentiles in
  :meth:`TopicServer.stats`.
* **Hot-swap serving** — :meth:`TopicServer.attach_registry` subscribes the
  server to a :class:`~repro.streaming.registry.ModelRegistry`.  When the
  registry's current version moves, the server swaps in a fresh engine over
  the new snapshot *between micro-batches*: a dispatched micro-batch always
  finishes against the snapshot it started with, the result cache (keyed on
  the old model's θ) is dropped, and requests keep flowing throughout.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.obs import Histogram, get_telemetry
from repro.sampling.rng import RngLike
from repro.serving.infer import InferenceEngine

if TYPE_CHECKING:  # avoids the serving <-> streaming import cycle at runtime
    from repro.streaming.registry import ModelRegistry

__all__ = ["LRUCache", "ServerStats", "TopicServer", "bow_key"]

#: Cache key type: the sorted ``(word_id, count)`` pairs of a document.
BowKey = Tuple[Tuple[int, int], ...]

DocumentLike = Union[np.ndarray, Sequence[int], Sequence[str]]


def bow_key(word_ids: np.ndarray) -> BowKey:
    """The cache key of a document: its bag of words as sorted pairs.

    Canonicalisation contract (relied on by the server's LRU cache):

    * **order-insensitive** — any permutation of the same tokens maps to the
      same key, matching the exchangeability of fold-in inference (token
      order never enters the math);
    * **multiplicity-exact** — repeated tokens are keyed by their counts, so
      ``[a, a, b]`` and ``[a, b, b]`` can never alias;
    * **collision-free** — keys are the exact sorted ``(word_id, count)``
      pairs as plain ints, not hashes, so two distinct bags always produce
      distinct keys regardless of the input array's dtype.
    """
    unique, counts = np.unique(np.asarray(word_ids, dtype=np.int64), return_counts=True)
    return tuple((int(word), int(count)) for word, count in zip(unique, counts))


class LRUCache:
    """A fixed-capacity least-recently-used map from bag-of-words keys to θ."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = int(capacity)
        #: Entries dropped because the cache was full (cleared resets count
        #: nothing — evictions are a lifetime counter, cache clears are not
        #: evictions).
        self.evictions = 0
        self._entries: "OrderedDict[BowKey, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: BowKey) -> bool:
        return key in self._entries

    def get(self, key: BowKey) -> Optional[np.ndarray]:
        """Return the cached θ row for ``key`` (marking it recently used)."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key: BowKey, value: np.ndarray) -> None:
        """Insert ``key``, evicting the least-recently-used entry if full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


#: Sliding-window size for per-request latency records: percentiles are
#: computed over the most recent ``LATENCY_WINDOW`` requests only, keeping
#: memory O(1) under sustained traffic.  The window is a deque, so the
#: (window+1)-th request silently drops the oldest record — percentiles
#: always describe *recent* traffic, never the full lifetime.
LATENCY_WINDOW = 8192


@dataclass
class ServerStats:
    """Aggregate serving statistics since construction (or :meth:`reset`)."""

    requests: int = 0
    cache_hits: int = 0
    batches: int = 0
    documents_inferred: int = 0
    tokens_inferred: int = 0
    inference_seconds: float = 0.0
    #: Live cache occupancy and lifetime eviction count, synced from the
    #: server's LRU cache by :meth:`TopicServer.stats`.
    cache_size: int = 0
    cache_evictions: int = 0
    #: Registry hot-swaps performed, and the version currently served
    #: (``None`` when no registry is attached or nothing is published).
    hot_swaps: int = 0
    served_version: Optional[int] = None
    #: Per-request wall-clock latencies in seconds (cache hits included),
    #: most recent :data:`LATENCY_WINDOW` requests only.  A request's latency
    #: is the duration of the serving call that answered it — under
    #: micro-batching every request in a call waits for the whole call.
    latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW)
    )

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def throughput_docs_per_s(self) -> float:
        return (
            self.documents_inferred / self.inference_seconds
            if self.inference_seconds > 0
            else 0.0
        )

    @property
    def throughput_tokens_per_s(self) -> float:
        return (
            self.tokens_inferred / self.inference_seconds
            if self.inference_seconds > 0
            else 0.0
        )

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of the per-request latencies, in milliseconds.

        Computed through :class:`repro.obs.Histogram` so serving reports the
        *same* deterministic rank-then-interpolate percentiles as every other
        layer's telemetry (one rule everywhere, not ``np.percentile`` here
        and bucket interpolation there).  Pinned behavior:

        * **0 samples** (zero requests, or a fresh
          :meth:`TopicServer.reset_stats`): every percentile is exactly
          ``0.0`` — never an exception on the empty window.
        * **1 sample**: every percentile is exactly that sample (the
          histogram clamps interpolation to the observed min/max).
        * **2 samples**: p50 lands on rank 1 (the lower sample's bucket) and
          interpolates to that bucket's position, clamped into the observed
          range — never ``np.percentile``'s midpoint average of the two raw
          samples, and never below the smaller or above the larger sample.
        * **window boundary**: only the most recent :data:`LATENCY_WINDOW`
          records enter — the (window+1)-th request evicts the oldest, so a
          latency spike ages out of the percentiles after one full window.
        """
        if not self.latencies:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        histogram = Histogram()
        for seconds in self.latencies:
            histogram.record(seconds)
        return {
            f"p{q}_ms": histogram.percentile(q) * 1e3 for q in (50, 95, 99)
        }

    def summary(self) -> str:
        """A one-block human-readable report.

        The model-version line only appears for registry-served models
        (``served_version`` set); plain snapshot servers keep the original
        report shape.
        """
        pct = self.latency_percentiles()
        version_lines = (
            [
                f"model version       {self.served_version} "
                f"({self.hot_swaps} hot swaps)"
            ]
            if self.served_version is not None
            else []
        )
        return "\n".join(
            [
                f"requests            {self.requests}",
                f"cache hits          {self.cache_hits} "
                f"({self.cache_hit_rate:.1%})",
                f"cache               {self.cache_size} entries, "
                f"{self.cache_evictions} evictions",
                f"micro-batches       {self.batches}",
                *version_lines,
                f"documents inferred  {self.documents_inferred}",
                f"tokens inferred     {self.tokens_inferred}",
                f"throughput          {self.throughput_docs_per_s:.1f} docs/s, "
                f"{self.throughput_tokens_per_s:.0f} tokens/s",
                f"latency             p50 {pct['p50_ms']:.2f} ms, "
                f"p95 {pct['p95_ms']:.2f} ms, p99 {pct['p99_ms']:.2f} ms",
            ]
        )


class TopicServer:
    """Serve θ inference requests with micro-batching and an LRU cache.

    Parameters
    ----------
    engine:
        The inference engine (and, through it, the frozen snapshot) to serve.
    max_batch_size:
        Maximum number of documents dispatched to the engine per micro-batch.
    cache_capacity:
        LRU result-cache capacity in documents; ``0`` disables caching.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import WarpLDA
    >>> from repro.corpus import load_preset
    >>> from repro.serving import InferenceEngine, TopicServer
    >>> corpus = load_preset("nytimes_like", scale=0.05, seed=0)
    >>> snapshot = WarpLDA(corpus, num_topics=10, seed=0).fit(5).export_snapshot()
    >>> server = TopicServer(InferenceEngine(snapshot))
    >>> theta = server.infer_batch([corpus.document_words(0)])
    >>> theta.shape
    (1, 10)
    """

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch_size: int = 64,
        cache_capacity: int = 4096,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        self.engine = engine
        self.max_batch_size = int(max_batch_size)
        self.cache = LRUCache(cache_capacity)
        self.stats_ = ServerStats()
        self._queue: List[np.ndarray] = []
        self._closed = False
        self._registry: Optional[ModelRegistry] = None
        #: Registry version currently served (``None`` = the engine the
        #: server was constructed with, or no registry attached).
        self.served_version: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Registry hot-swap
    # ------------------------------------------------------------------ #
    @classmethod
    def from_registry(
        cls,
        registry: "ModelRegistry",
        strategy: str = "em",
        num_iterations: int = 30,
        num_mh_steps: int = 2,
        seed: RngLike = None,
        **server_kwargs: Any,
    ) -> "TopicServer":
        """Build a server over a registry's current version and follow it.

        The registry must have at least one published version.
        """
        entry = registry.current()
        if entry is None:
            raise ValueError(
                "registry has no published version; publish a snapshot first"
            )
        engine = InferenceEngine(
            entry.snapshot,
            strategy=strategy,
            num_iterations=num_iterations,
            num_mh_steps=num_mh_steps,
            seed=seed,
        )
        server = cls(engine, **server_kwargs)
        # The constructor engine *is* the current version: record it before
        # attaching so adoption is not miscounted (or rebuilt) as a hot swap.
        server.served_version = entry.version
        server.attach_registry(registry)
        return server

    def attach_registry(self, registry: "ModelRegistry") -> None:
        """Follow ``registry``: serve its current version, swap as it moves.

        The swap happens *between micro-batches* (checked at the start of
        every serving call and between dispatched micro-batches within one
        call), so a micro-batch that is already in flight always completes
        against the snapshot it started with.  If nothing is published yet,
        the server keeps its constructor engine until a version appears.
        """
        self._registry = registry
        self.refresh()

    def detach_registry(self) -> None:
        """Stop following the registry; the current engine keeps serving."""
        self._registry = None

    def refresh(self) -> bool:
        """Swap in the registry's current version if it moved; True if swapped.

        Called automatically by the serving paths; call it directly to bound
        the ingest-to-servable latency without waiting for the next request.
        """
        if self._registry is None:
            return False
        entry = self._registry.current()
        if entry is None or entry.version == self.served_version:
            return False
        self.engine = InferenceEngine(
            entry.snapshot,
            strategy=self.engine.strategy,
            num_iterations=self.engine.num_iterations,
            num_mh_steps=self.engine.num_mh_steps,
            seed=self.engine.rng,
        )
        # Cached θ rows were folded in under the old Φ; drop them (this is a
        # model change, not a capacity eviction).
        self.cache.clear()
        previous = self.served_version
        self.served_version = entry.version
        self.stats_.hot_swaps += 1
        obs = get_telemetry()
        if obs.enabled:
            obs.count("serving.hot_swaps")
            obs.event(
                "server_hot_swap", from_version=previous, to_version=entry.version
            )
        return True

    # ------------------------------------------------------------------ #
    # Request intake
    # ------------------------------------------------------------------ #
    def _encode_one(self, document: DocumentLike) -> np.ndarray:
        """Normalise one request to a word-id array (OOV tokens dropped)."""
        if isinstance(document, np.ndarray):
            return np.asarray(document, dtype=np.int64)
        items = list(document)
        if any(isinstance(item, str) for item in items):
            return self.engine.snapshot.vocabulary.encode(items, on_oov="drop")
        return np.asarray(items, dtype=np.int64)

    def submit(self, document: DocumentLike) -> int:
        """Enqueue one request; returns its index into the next :meth:`flush`."""
        self._ensure_open()
        self._queue.append(self._encode_one(document))
        return len(self._queue) - 1

    @property
    def pending(self) -> int:
        """Number of queued, not yet flushed, requests."""
        return len(self._queue)

    def flush(self) -> np.ndarray:
        """Serve every queued request and clear the queue.

        Returns the ``pending x K`` θ matrix, rows aligned with the indices
        returned by :meth:`submit`.
        """
        self._ensure_open()
        queue, self._queue = self._queue, []
        return self._serve(queue)

    def infer_batch(self, documents: Sequence[DocumentLike]) -> np.ndarray:
        """Serve a ready batch of requests in one call (queue bypassed)."""
        self._ensure_open()
        return self._serve([self._encode_one(doc) for doc in documents])

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; a closed server rejects requests."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("TopicServer is closed")

    def close(self) -> Optional[np.ndarray]:
        """Shut the server down, **draining** queued requests first.

        Requests accepted by :meth:`submit` are promises: a shutdown must
        answer them, not drop them (the `repro.service` worker pool relies on
        this when recycling a worker mid-swap — whatever the worker queued is
        served on the outgoing snapshot before the process moves on).  The
        drained ``pending x K`` θ matrix is returned, rows aligned with the
        indices :meth:`submit` handed out; ``None`` when nothing was queued.
        Closing detaches any registry and is idempotent; subsequent
        :meth:`submit` / :meth:`flush` / :meth:`infer_batch` calls raise
        :class:`RuntimeError`.
        """
        if self._closed:
            return None
        drained: Optional[np.ndarray] = None
        if self._queue:
            drained = self.flush()
        self._registry = None
        self._closed = True
        return drained

    def __enter__(self) -> "TopicServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Serving core
    # ------------------------------------------------------------------ #
    def _serve(self, documents: List[np.ndarray]) -> np.ndarray:
        obs = get_telemetry()
        self.refresh()
        call_engine = self.engine
        num_topics = call_engine.num_topics
        theta = np.zeros((len(documents), num_topics))
        if not documents:
            return theta

        request_started = time.perf_counter()
        cache_hits_before = self.stats_.cache_hits
        keys = [bow_key(doc) for doc in documents]
        misses: List[int] = []
        # First occurrence of each missing key infers; duplicates within the
        # batch piggyback on it, counted as cache hits.
        miss_key_to_row: Dict[BowKey, int] = {}
        duplicate_rows: List[Tuple[int, int]] = []
        for row, key in enumerate(keys):
            cached = self.cache.get(key)
            if cached is not None:
                theta[row] = cached
                self.stats_.cache_hits += 1
            elif key in miss_key_to_row:
                duplicate_rows.append((row, miss_key_to_row[key]))
                self.stats_.cache_hits += 1
            else:
                miss_key_to_row[key] = row
                misses.append(row)

        for start in range(0, len(misses), self.max_batch_size):
            if start:
                # Between micro-batches is the hot-swap point: a new registry
                # version published mid-call serves the remaining batches.
                self.refresh()
            # The dispatched micro-batch runs against one engine even if a
            # swap lands while it is in flight.  A mid-call swap to a model
            # with a *different topic count* cannot fill this call's θ rows:
            # the rest of the call stays on the engine it started with (the
            # swap still holds for future calls), and those rows are not
            # cached — they would poison the new model's cache.
            engine = self.engine
            cacheable = engine.num_topics == num_topics
            if not cacheable:
                engine = call_engine
            batch_rows = misses[start : start + self.max_batch_size]
            batch_docs = [documents[row] for row in batch_rows]
            if self._registry is not None:
                # Registry-served models can move underneath a request: a
                # rollback (or a request encoded just before a swap) may
                # leave ids the dispatched snapshot has never seen.  Those
                # words are out-of-vocabulary *for this model* — drop them,
                # exactly like encode-time OOV handling, instead of letting
                # the engine reject the whole batch.
                vocab_size = engine.snapshot.vocabulary_size
                batch_docs = [
                    doc if doc.size == 0 or doc.max() < vocab_size
                    else doc[doc < vocab_size]
                    for doc in batch_docs
                ]
            batch_started = time.perf_counter()
            batch_theta = engine.infer_ids(batch_docs)
            elapsed = time.perf_counter() - batch_started
            self.stats_.batches += 1
            self.stats_.documents_inferred += len(batch_rows)
            self.stats_.tokens_inferred += int(sum(doc.size for doc in batch_docs))
            self.stats_.inference_seconds += elapsed
            if obs.enabled:
                obs.observe("serving.batch_seconds", elapsed)
                obs.observe("serving.batch_size", len(batch_rows))
            for row, theta_row in zip(batch_rows, batch_theta):
                theta[row] = theta_row
                if cacheable:
                    cache_row = theta_row.copy()
                    cache_row.flags.writeable = False
                    self.cache.put(keys[row], cache_row)

        for row, source_row in duplicate_rows:
            theta[row] = theta[source_row]

        # Every request in this call observed the full call duration.
        call_latency = time.perf_counter() - request_started
        self.stats_.requests += len(documents)
        self.stats_.latencies.extend([call_latency] * len(documents))
        if obs.enabled:
            obs.count("serving.requests", len(documents))
            obs.count(
                "serving.cache_hits",
                self.stats_.cache_hits - cache_hits_before,
            )
            # Same latency accounting as ServerStats: each request in the
            # call observed the whole call.
            for _ in range(len(documents)):
                obs.observe("serving.request_seconds", call_latency)
        return theta

    # ------------------------------------------------------------------ #
    def stats(self) -> ServerStats:
        """The live statistics object (see :class:`ServerStats`).

        Cache occupancy, eviction count and the served registry version are
        synced from their owners on every call, so the returned object is
        always current.
        """
        self.stats_.cache_size = len(self.cache)
        self.stats_.cache_evictions = self.cache.evictions
        self.stats_.served_version = self.served_version
        return self.stats_

    def reset_stats(self) -> None:
        """Zero all counters and latency records (cache is kept)."""
        self.stats_ = ServerStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TopicServer(K={self.engine.num_topics}, "
            f"max_batch_size={self.max_batch_size}, cached={len(self.cache)}, "
            f"requests={self.stats_.requests})"
        )
