"""Immutable model snapshots: the unit of deployment for serving.

Training (the samplers in :mod:`repro.samplers` and :mod:`repro.core`) and
serving (:mod:`repro.serving.infer`, :mod:`repro.serving.server`) meet at a
single artefact: a :class:`ModelSnapshot` freezing the topic-word
distributions Φ, the Dirichlet hyper-parameters and the vocabulary at a point
in the training trajectory.  A snapshot is

* **immutable** — the arrays are marked read-only, so a server holding a
  snapshot can never be corrupted by a concurrently training sampler;
* **self-contained** — the vocabulary travels with Φ, so unseen documents can
  be encoded (with OOV handling) without access to the training corpus;
* **persistent** — :meth:`ModelSnapshot.save` writes a ``.npz`` with the
  numeric state plus a human-readable JSON sidecar with the vocabulary and
  hyper-parameters, and :meth:`ModelSnapshot.load` round-trips it bit-exactly.

Every trained sampler exposes ``export_snapshot()`` (see
:class:`repro.samplers.base.LDASampler` and :class:`repro.core.warplda.WarpLDA`),
so the serving layer is uniform across algorithms.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.corpus.vocabulary import Vocabulary

__all__ = ["ModelSnapshot"]

#: On-disk format version written to the JSON sidecar.
SNAPSHOT_FORMAT_VERSION = 1


def _sidecar_path(path: Path) -> Path:
    """The JSON sidecar written next to the ``.npz`` array file."""
    return path.with_suffix(path.suffix + ".json") if path.suffix != ".json" else path


class ModelSnapshot:
    """A frozen topic model: Φ, hyper-parameters and the vocabulary.

    Parameters
    ----------
    phi:
        The ``K x V`` topic-word distributions; every row must sum to one.
    alpha:
        Scalar or length-``K`` document Dirichlet parameter.
    beta:
        Symmetric word Dirichlet parameter.
    vocabulary:
        The training vocabulary; ``V`` must equal ``vocabulary.size``.  The
        snapshot stores a frozen copy so later lookups can never grow it.
    metadata:
        Optional JSON-compatible provenance (sampler name, iterations, ...).
    """

    __slots__ = ("_phi", "_alpha", "_beta", "_vocabulary", "_metadata")

    def __init__(
        self,
        phi: np.ndarray,
        alpha: Union[float, np.ndarray],
        beta: float,
        vocabulary: Vocabulary,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        phi = np.array(phi, dtype=np.float64, copy=True)
        if phi.ndim != 2:
            raise ValueError(f"phi must be a K x V matrix, got shape {phi.shape}")
        num_topics, vocab_size = phi.shape
        if vocab_size != vocabulary.size:
            raise ValueError(
                f"phi has {vocab_size} columns but the vocabulary has "
                f"{vocabulary.size} words"
            )
        if np.any(phi < 0):
            raise ValueError("phi entries must be non-negative")
        row_sums = phi.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-6):
            raise ValueError("phi rows must each sum to one")

        alpha_vector = np.array(alpha, dtype=np.float64, copy=True)
        if alpha_vector.ndim == 0:
            alpha_vector = np.full(num_topics, float(alpha_vector))
        if alpha_vector.shape != (num_topics,):
            raise ValueError(
                f"alpha must be a scalar or length-{num_topics} vector, got "
                f"shape {alpha_vector.shape}"
            )
        if np.any(alpha_vector <= 0):
            raise ValueError("alpha entries must be positive")
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")

        phi.flags.writeable = False
        alpha_vector.flags.writeable = False
        self._phi = phi
        self._alpha = alpha_vector
        self._beta = float(beta)
        self._vocabulary = Vocabulary(vocabulary.words()).freeze()
        self._metadata = dict(metadata) if metadata else {}

    # ------------------------------------------------------------------ #
    # Read-only accessors
    # ------------------------------------------------------------------ #
    @property
    def phi(self) -> np.ndarray:
        """The frozen ``K x V`` topic-word distributions (read-only view)."""
        return self._phi

    @property
    def alpha(self) -> np.ndarray:
        """The length-``K`` document Dirichlet parameter (read-only view)."""
        return self._alpha

    @property
    def alpha_sum(self) -> float:
        """``sum(alpha)``, the fold-in normaliser."""
        return float(self._alpha.sum())

    @property
    def beta(self) -> float:
        """The symmetric word Dirichlet parameter."""
        return self._beta

    @property
    def vocabulary(self) -> Vocabulary:
        """The frozen training vocabulary."""
        return self._vocabulary

    @property
    def metadata(self) -> Dict[str, Any]:
        """Provenance recorded at export time (a copy)."""
        return dict(self._metadata)

    @property
    def num_topics(self) -> int:
        """Number of topics ``K``."""
        return int(self._phi.shape[0])

    @property
    def vocabulary_size(self) -> int:
        """Number of words ``V``."""
        return int(self._phi.shape[1])

    # ------------------------------------------------------------------ #
    # Construction from trained models
    # ------------------------------------------------------------------ #
    @classmethod
    def from_model(cls, model: Any, extra_metadata: Optional[Dict[str, Any]] = None) -> "ModelSnapshot":
        """Freeze any trained sampler exposing ``phi()`` / ``alpha`` / ``beta``.

        Works for every :class:`~repro.samplers.base.LDASampler` subclass and
        for :class:`~repro.core.warplda.WarpLDA`; both also expose this as
        ``model.export_snapshot()``.
        """
        metadata = {
            "sampler": getattr(model, "name", type(model).__name__),
            "iterations": int(getattr(model, "iterations_completed", 0)),
            "num_documents": int(model.corpus.num_documents),
            "num_tokens": int(model.corpus.num_tokens),
        }
        if extra_metadata:
            metadata.update(extra_metadata)
        return cls(
            phi=model.phi(),
            alpha=model.alpha,
            beta=model.beta,
            vocabulary=model.corpus.vocabulary,
            metadata=metadata,
        )

    @classmethod
    def adopt(
        cls,
        phi: np.ndarray,
        alpha: np.ndarray,
        beta: float,
        vocabulary: Vocabulary,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> "ModelSnapshot":
        """Wrap already-frozen arrays into a snapshot **without copying**.

        The constructor's defensive ``np.array(..., copy=True)`` is what makes
        ordinary snapshots safe to hand around, but it defeats shared-memory
        serving: a worker attaching the one phi copy in a
        ``multiprocessing.shared_memory`` segment must keep its θ math backed
        by that buffer, not a private duplicate.  ``adopt`` is that zero-copy
        path.  The caller vouches for the distributional invariants (the
        arrays come from a snapshot that already validated them); this method
        still enforces the *structural* contract so an adopted snapshot is
        indistinguishable from a constructed one:

        * ``phi`` is a read-only float64 ``K x V`` matrix;
        * ``alpha`` is a read-only float64 length-``K`` vector;
        * ``beta`` is positive and ``V`` matches the vocabulary.
        """
        phi = np.asarray(phi)
        alpha = np.asarray(alpha)
        if phi.ndim != 2 or phi.dtype != np.float64:
            raise ValueError(
                f"adopt requires a float64 K x V phi, got {phi.dtype} {phi.shape}"
            )
        num_topics, vocab_size = phi.shape
        if alpha.shape != (num_topics,) or alpha.dtype != np.float64:
            raise ValueError(
                f"adopt requires a float64 length-{num_topics} alpha, got "
                f"{alpha.dtype} {alpha.shape}"
            )
        if phi.flags.writeable or alpha.flags.writeable:
            raise ValueError("adopt requires read-only arrays (writeable=False)")
        if vocab_size != vocabulary.size:
            raise ValueError(
                f"phi has {vocab_size} columns but the vocabulary has "
                f"{vocabulary.size} words"
            )
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        snapshot = object.__new__(cls)
        snapshot._phi = phi
        snapshot._alpha = alpha
        snapshot._beta = float(beta)
        snapshot._vocabulary = vocabulary if vocabulary.frozen else Vocabulary(vocabulary.words()).freeze()
        snapshot._metadata = dict(metadata) if metadata else {}
        return snapshot

    def with_metadata(self, **extra: Any) -> "ModelSnapshot":
        """Return a copy of this snapshot with extra provenance merged in.

        Snapshots are immutable, so provenance added after export — which
        checkpoint a resumed run came from, which deployment served it —
        always produces a new snapshot instead of mutating a served one.
        """
        merged = {**self._metadata, **extra}
        return ModelSnapshot(
            phi=self._phi,
            alpha=self._alpha,
            beta=self._beta,
            vocabulary=self._vocabulary,
            metadata=merged,
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Write the snapshot to ``path`` (``.npz``) plus a JSON sidecar.

        Returns the array-file path actually written.  The sidecar lands next
        to it as ``<path>.json`` and holds everything non-numeric: format
        version, β, the vocabulary and the metadata.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, phi=self._phi, alpha=self._alpha)
        sidecar = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "beta": self._beta,
            "num_topics": self.num_topics,
            "vocabulary": self._vocabulary.to_serializable(),
            "metadata": self._metadata,
        }
        _sidecar_path(path).write_text(
            json.dumps(sidecar, indent=2, sort_keys=True), encoding="utf-8"
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ModelSnapshot":
        """Load a snapshot previously written by :meth:`save`."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
        sidecar_file = _sidecar_path(path)
        if not path.exists():
            raise FileNotFoundError(f"snapshot array file not found: {path}")
        if not sidecar_file.exists():
            raise FileNotFoundError(f"snapshot sidecar not found: {sidecar_file}")
        sidecar = json.loads(sidecar_file.read_text(encoding="utf-8"))
        version = sidecar.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported snapshot format version {version!r} "
                f"(expected {SNAPSHOT_FORMAT_VERSION})"
            )
        with np.load(path) as arrays:
            phi = arrays["phi"]
            alpha = arrays["alpha"]
        vocabulary = Vocabulary.from_serializable(sidecar["vocabulary"])
        return cls(
            phi=phi,
            alpha=alpha,
            beta=float(sidecar["beta"]),
            vocabulary=vocabulary,
            metadata=sidecar.get("metadata", {}),
        )

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ModelSnapshot):
            return NotImplemented
        return (
            np.array_equal(self._phi, other._phi)
            and np.array_equal(self._alpha, other._alpha)
            and self._beta == other._beta
            and self._vocabulary == other._vocabulary
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelSnapshot(K={self.num_topics}, V={self.vocabulary_size}, "
            f"beta={self._beta}, sampler={self._metadata.get('sampler')!r})"
        )
