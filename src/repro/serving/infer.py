"""Batched θ inference for unseen documents against a frozen snapshot.

Two fold-in strategies are offered, both operating on a
:class:`~repro.serving.snapshot.ModelSnapshot`:

* **EM fold-in** (``strategy="em"``) — the classic fixed-point update of the
  document-topic proportions with Φ held fixed, vectorised across a whole
  batch: documents are collapsed to bags of unique words, grouped into
  power-of-two size buckets (padding contributes exact zeros), and each
  update becomes two batched matrix-vector products.  Mathematically
  equivalent to the per-document loop it replaces, several times faster on
  realistic batches (see ``benchmarks/bench_serving_throughput.py``).
* **MH fold-in** (``strategy="mh"``) — WarpLDA's own trick applied to
  serving: per-token topic assignments are refined with Metropolis-Hastings
  steps whose proposal is the doc-proposal mixture of Sec. 4.3 (random
  positioning over the document's current assignments, mixed with the α
  prior).  Because the proposal is the document factor of the target and Φ is
  frozen, the acceptance rate collapses to ``min{1, φ_t,w / φ_s,w}`` — O(1)
  per step, no per-document K-vector beyond the final count.  The whole batch
  is processed as one flat token array, exactly the corpus layout the
  training passes use.

Out-of-vocabulary tokens are dropped at encode time via the snapshot's frozen
:class:`~repro.corpus.vocabulary.Vocabulary`; documents that end up empty
receive the prior mean ``α / ᾱ``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.kernels.proposals import positioning_mixture_proposal, token_layout
from repro.sampling.alias import AliasTable
from repro.sampling.rng import RngLike, ensure_rng
from repro.serving.snapshot import ModelSnapshot

__all__ = ["InferenceEngine", "em_fold_in", "mh_fold_in", "perplexity_from_theta"]

#: Cap on ``K * batch * padded_length`` float64 elements materialised at once
#: by the EM kernel.  Kept small (~1 MB) so the per-chunk working set stays
#: cache-resident across the iteration loop — measured fastest among 1-64 MB
#: caps; batching is for amortising call overheads, not for huge tensors.
_MAX_EM_ELEMENTS = 1 << 17


def _prior_mean(alpha: np.ndarray) -> np.ndarray:
    return alpha / alpha.sum()


def perplexity_from_theta(
    documents: Sequence[np.ndarray],
    theta: np.ndarray,
    phi: np.ndarray,
) -> float:
    """Perplexity of word-id documents under folded-in θ rows and fixed Φ.

    The single scoring path shared by the serving layer and
    :func:`repro.evaluation.perplexity.held_out_perplexity`.  Empty documents
    (zero-token bags — empty to begin with, or emptied by OOV dropping) are
    excluded from the token denominator: they carry no evidence, so they must
    neither crash the normalisation nor dilute the average.  Token
    probabilities are clamped at 1e-300 so a zero-probability token yields a
    huge-but-finite perplexity rather than ``inf``/NaN.

    Raises
    ------
    ValueError
        If no document contributes any token (there is nothing to score).
    """
    log_likelihood = 0.0
    total_tokens = 0
    for row, words in enumerate(documents):
        if words.size == 0:
            continue
        token_probs = theta[row] @ phi[:, words]
        token_probs = np.maximum(token_probs, 1e-300)
        log_likelihood += float(np.log(token_probs).sum())
        total_tokens += int(words.size)
    if total_tokens == 0:
        raise ValueError(
            "no tokens to score (every document is empty or out-of-vocabulary)"
        )
    return float(np.exp(-log_likelihood / total_tokens))


def _as_id_arrays(documents: Sequence[Union[np.ndarray, Sequence[int]]]) -> List[np.ndarray]:
    return [np.asarray(doc, dtype=np.int64) for doc in documents]


def em_fold_in(
    documents: Sequence[np.ndarray],
    phi: np.ndarray,
    alpha: np.ndarray,
    num_iterations: int = 30,
) -> np.ndarray:
    """Vectorised EM fold-in of θ for a batch of documents with Φ fixed.

    Parameters
    ----------
    documents:
        Per-document word-id arrays (may be empty; ids must be < ``V``).
    phi:
        The frozen ``K x V`` topic-word distributions.
    alpha:
        The length-``K`` document Dirichlet parameter.
    num_iterations:
        Number of fixed-point updates per document.

    Returns
    -------
    numpy.ndarray
        ``B x K`` matrix of folded-in document-topic proportions.
    """
    phi = np.asarray(phi, dtype=np.float64)
    if phi.ndim != 2:
        raise ValueError("phi must be a K x V matrix")
    if num_iterations <= 0:
        raise ValueError("num_iterations must be positive")
    num_topics = phi.shape[0]
    alpha = np.asarray(alpha, dtype=np.float64)
    if alpha.shape != (num_topics,):
        raise ValueError(f"alpha must have shape ({num_topics},), got {alpha.shape}")

    documents = _as_id_arrays(documents)
    theta = np.tile(_prior_mean(alpha), (len(documents), 1))

    # The fixed-point update only sees each document through its word counts,
    # so work in bag-of-words form: L tokens collapse to U ≤ L unique words
    # weighted by their counts.  Group documents into power-of-two buckets of
    # U; within a bucket pad with word id 0 under a zero count, so padded
    # positions contribute exact zeros to every sum.
    bags = [np.unique(doc, return_counts=True) for doc in documents]
    buckets = {}
    for index, (unique_words, _) in enumerate(bags):
        if unique_words.size == 0:
            continue
        padded = 1 << int(unique_words.size - 1).bit_length()
        buckets.setdefault(padded, []).append(index)

    for padded_length, indices in buckets.items():
        chunk_size = max(1, _MAX_EM_ELEMENTS // (num_topics * padded_length))
        for start in range(0, len(indices), chunk_size):
            chunk = indices[start : start + chunk_size]
            theta[chunk] = _em_bucket(
                [bags[i] for i in chunk], padded_length, phi, alpha, num_iterations
            )
    return theta


def _em_bucket(
    bags: List[Tuple[np.ndarray, np.ndarray]],
    padded_length: int,
    phi: np.ndarray,
    alpha: np.ndarray,
    num_iterations: int,
) -> np.ndarray:
    """Run the fixed-point updates for one padded bucket of word bags."""
    batch = len(bags)
    num_topics = phi.shape[0]
    words = np.zeros((batch, padded_length), dtype=np.int64)
    counts = np.zeros((batch, padded_length), dtype=np.float64)
    for row, (unique_words, word_counts) in enumerate(bags):
        words[row, : unique_words.size] = unique_words
        counts[row, : unique_words.size] = word_counts

    # B x U x K word probabilities (fixed across iterations).  Splitting the
    # per-word responsibility into its θ factor turns each fixed-point update
    # into two batched matrix-vector products over this tensor — no
    # K·B·U-sized temporaries, and BLAS does the reductions:
    #   norm_u   = Σ_k φ_k,u θ_k
    #   scores_k = Σ_u (count_u / norm_u) φ_k,u
    #   θ'_k     ∝ θ_k · scores_k + α_k
    word_probs = phi.T[words]
    proportions = np.full((batch, num_topics), 1.0 / num_topics)
    for _ in range(num_iterations):
        normaliser = (word_probs @ proportions[:, :, None])[:, :, 0]
        normaliser[normaliser == 0] = 1e-300
        ratio = counts / normaliser
        scores = (ratio[:, None, :] @ word_probs)[:, 0, :]
        proportions = proportions * scores + alpha
        proportions /= proportions.sum(axis=1, keepdims=True)
    return proportions


def mh_fold_in(
    documents: Sequence[np.ndarray],
    phi: np.ndarray,
    alpha: np.ndarray,
    num_sweeps: int = 30,
    num_mh_steps: int = 2,
    rng: RngLike = None,
) -> np.ndarray:
    """WarpLDA-style MH fold-in of θ for a batch of documents with Φ fixed.

    Per sweep, every token takes ``num_mh_steps`` Metropolis-Hastings steps.
    The proposal is the doc-proposal mixture of the paper's Sec. 4.3 — with
    probability ``L_d / (L_d + ᾱ)`` the assignment of a uniformly random
    token of the same document (random positioning), otherwise a draw from
    the α prior.  With Φ frozen the proposal cancels the document factor of
    the target, so acceptance is ``min{1, φ_t,w / φ_s,w}``.
    """
    phi = np.asarray(phi, dtype=np.float64)
    if phi.ndim != 2:
        raise ValueError("phi must be a K x V matrix")
    if num_sweeps <= 0:
        raise ValueError("num_sweeps must be positive")
    if num_mh_steps <= 0:
        raise ValueError("num_mh_steps must be positive")
    num_topics = phi.shape[0]
    alpha = np.asarray(alpha, dtype=np.float64)
    if alpha.shape != (num_topics,):
        raise ValueError(f"alpha must have shape ({num_topics},), got {alpha.shape}")
    rng = ensure_rng(rng)

    documents = _as_id_arrays(documents)
    batch = len(documents)
    alpha_sum = float(alpha.sum())
    theta = np.tile(_prior_mean(alpha), (batch, 1))

    lengths = np.array([doc.size for doc in documents], dtype=np.int64)
    nonempty = np.flatnonzero(lengths)
    if nonempty.size == 0:
        return theta

    # Flatten the non-empty documents into one mini-corpus (CSR layout), the
    # same token-major form the training kernels stream over; the layout and
    # the Sec. 4.3 mixture proposal come from the shared kernel layer.
    flat_words = np.concatenate([documents[i] for i in nonempty])
    _, token_doc, token_offset, token_length = token_layout(lengths[nonempty])
    num_flat_tokens = flat_words.size

    alpha_symmetric = bool(np.allclose(alpha, alpha[0]))
    alpha_alias = None if alpha_symmetric else AliasTable(alpha)
    doc_weight = token_length / (token_length + alpha_sum)

    # log φ of the current assignment, kept incrementally; acceptance compares
    # log φ to avoid 0/0 when both proposals have zero mass.
    log_phi = np.log(np.maximum(phi, 1e-300))
    assignments = rng.integers(num_topics, size=num_flat_tokens)
    current_logp = log_phi[assignments, flat_words]

    for _ in range(num_sweeps):
        for _ in range(num_mh_steps):
            proposed = positioning_mixture_proposal(
                assignments,
                token_offset,
                token_length,
                doc_weight,
                num_topics,
                rng,
                alpha_alias=alpha_alias,
            )
            proposed_logp = log_phi[proposed, flat_words]
            accept = np.log(rng.random(num_flat_tokens)) < proposed_logp - current_logp
            assignments = np.where(accept, proposed, assignments)
            current_logp = np.where(accept, proposed_logp, current_logp)

    doc_topic = np.zeros((nonempty.size, num_topics), dtype=np.float64)
    np.add.at(doc_topic, (token_doc, assignments), 1.0)
    doc_topic += alpha
    doc_topic /= doc_topic.sum(axis=1, keepdims=True)
    theta[nonempty] = doc_topic
    return theta


class InferenceEngine:
    """Batched unseen-document inference against a frozen snapshot.

    Parameters
    ----------
    snapshot:
        The frozen model to serve.
    strategy:
        ``"em"`` (vectorised fixed-point fold-in, deterministic) or ``"mh"``
        (WarpLDA-style Metropolis-Hastings fold-in, stochastic).
    num_iterations:
        EM fixed-point updates, or MH sweeps, per batch.
    num_mh_steps:
        MH steps per token per sweep (``strategy="mh"`` only).
    seed:
        Seed or generator for the MH chain (``strategy="mh"`` only).

    Examples
    --------
    >>> from repro import WarpLDA
    >>> from repro.corpus import load_preset
    >>> from repro.serving import InferenceEngine
    >>> corpus = load_preset("nytimes_like", scale=0.05, seed=0)
    >>> snapshot = WarpLDA(corpus, num_topics=10, seed=0).fit(5).export_snapshot()
    >>> engine = InferenceEngine(snapshot)
    >>> theta = engine.infer_ids([corpus.document_words(0)])
    >>> theta.shape
    (1, 10)
    """

    STRATEGIES = ("em", "mh")

    def __init__(
        self,
        snapshot: ModelSnapshot,
        strategy: str = "em",
        num_iterations: int = 30,
        num_mh_steps: int = 2,
        seed: RngLike = None,
    ) -> None:
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"strategy must be one of {self.STRATEGIES}, got {strategy!r}"
            )
        if num_iterations <= 0:
            raise ValueError(f"num_iterations must be positive, got {num_iterations}")
        if num_mh_steps <= 0:
            raise ValueError(f"num_mh_steps must be positive, got {num_mh_steps}")
        self.snapshot = snapshot
        self.strategy = strategy
        self.num_iterations = int(num_iterations)
        self.num_mh_steps = int(num_mh_steps)
        self.rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #
    @property
    def num_topics(self) -> int:
        """Number of topics ``K`` of the underlying snapshot."""
        return self.snapshot.num_topics

    def encode(
        self, token_documents: Sequence[Sequence[str]]
    ) -> Tuple[List[np.ndarray], int]:
        """Map token documents to id arrays, dropping OOV tokens.

        Returns the per-document id arrays and the total number of dropped
        out-of-vocabulary tokens.
        """
        vocabulary = self.snapshot.vocabulary
        encoded = []
        dropped = 0
        for tokens in token_documents:
            tokens = list(tokens)
            ids = vocabulary.encode(tokens, on_oov="drop")
            dropped += len(tokens) - ids.size
            encoded.append(ids)
        return encoded, dropped

    def infer_ids(
        self, documents: Sequence[Union[np.ndarray, Sequence[int]]]
    ) -> np.ndarray:
        """Infer θ for documents given as word-id arrays.

        Empty documents receive the prior mean ``α / ᾱ``.  Returns a ``B x K``
        matrix whose rows sum to one.
        """
        documents = _as_id_arrays(documents)
        if not documents:
            return np.zeros((0, self.num_topics))
        vocab_size = self.snapshot.vocabulary_size
        for doc in documents:
            if doc.size and (doc.min() < 0 or doc.max() >= vocab_size):
                raise ValueError(
                    f"word ids must be in [0, {vocab_size}), got range "
                    f"[{doc.min()}, {doc.max()}]"
                )
        if self.strategy == "em":
            return em_fold_in(
                documents, self.snapshot.phi, self.snapshot.alpha, self.num_iterations
            )
        return mh_fold_in(
            documents,
            self.snapshot.phi,
            self.snapshot.alpha,
            num_sweeps=self.num_iterations,
            num_mh_steps=self.num_mh_steps,
            rng=self.rng,
        )

    def infer_tokens(self, token_documents: Sequence[Sequence[str]]) -> np.ndarray:
        """Infer θ for raw token documents; OOV tokens are dropped."""
        encoded, _ = self.encode(token_documents)
        return self.infer_ids(encoded)

    def held_out_perplexity(
        self, documents: Sequence[Union[np.ndarray, Sequence[int], Sequence[str]]]
    ) -> float:
        """Held-out perplexity of ``documents`` under the frozen snapshot.

        Documents may be raw token sequences (OOV tokens are dropped via the
        snapshot vocabulary) or word-id arrays.  Documents that are empty —
        or become empty after OOV dropping — receive the prior-proportional
        θ and are *excluded from the token denominator*, so an all-OOV
        request can never drag the average through a zero-token bag.

        Raises
        ------
        ValueError
            If no document contributes any in-vocabulary token (there is
            nothing to score).
        """
        encoded: List[np.ndarray] = []
        for document in documents:
            if isinstance(document, np.ndarray):
                encoded.append(np.asarray(document, dtype=np.int64))
                continue
            items = list(document)
            if any(isinstance(item, str) for item in items):
                encoded.append(
                    self.snapshot.vocabulary.encode(items, on_oov="drop")
                )
            else:
                encoded.append(np.asarray(items, dtype=np.int64))

        theta = self.infer_ids(encoded)
        return perplexity_from_theta(encoded, theta, self.snapshot.phi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InferenceEngine(strategy={self.strategy!r}, K={self.num_topics}, "
            f"iterations={self.num_iterations})"
        )
