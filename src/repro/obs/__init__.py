"""``repro.obs`` — zero-dependency metrics and tracing for every hot layer.

The paper's claims are quantitative (tokens/s, MH acceptance rates, per-phase
cost, multi-worker scaling); this package is the shared substrate that makes
those quantities observable in *any* run, not just the benchmark scripts:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms with
  deterministic p50/p95/p99, and bounded series (:mod:`repro.obs.metrics`);
* :class:`Telemetry` + :func:`get_telemetry` — ``span()`` context-manager
  tracing to JSONL with nesting, the process-wide active instance, and
  worker-payload absorption for the parallel trainer
  (:mod:`repro.obs.trace`);
* :func:`render_report` — the human-readable end-of-run digest
  (:mod:`repro.obs.report`).

The default active telemetry is a no-op: un-instrumented runs pay one global
lookup and an ``enabled`` check per probe site.  Enable it per run with
``ModelSpec(telemetry=...)``, ``--telemetry PATH`` on the CLI, or directly::

    from repro.obs import Telemetry, use_telemetry

    with Telemetry("trace.jsonl") as obs, use_telemetry(obs):
        model.fit(100)
    print(obs.registry.to_json())

Everything here is stdlib-only, so importing it from lazily-loaded layers
(serving, streaming) never widens their import footprint.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)
from repro.obs.report import render_report
from repro.obs.trace import Telemetry, get_telemetry, set_telemetry, use_telemetry

__all__ = [
    "DEFAULT_BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Series",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "render_report",
]
