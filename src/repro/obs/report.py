"""Human-readable rendering of a metrics registry — the end-of-run report."""

from __future__ import annotations

from typing import List

from repro.obs.metrics import MetricsRegistry

__all__ = ["render_report"]


def _fmt(value: float) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    if abs(value) >= 1000:
        return f"{value:,.1f}"
    return f"{value:.4g}"


def render_report(registry: MetricsRegistry, title: str = "telemetry") -> str:
    """A plain-text digest of ``registry`` (what the CLI prints after a run).

    Sections appear only when non-empty: counters as totals, gauges as their
    last value, histograms as count/mean/p50/p95/p99/max rows, series as
    ``last (n=observed)`` with the mean of the retained window.
    """
    data = registry.to_dict()
    lines: List[str] = [f"== {title} report =="]

    if data["counters"]:
        lines.append("counters:")
        for name, value in data["counters"].items():
            lines.append(f"  {name:<44} {_fmt(value)}")
    if data["gauges"]:
        lines.append("gauges:")
        for name, value in data["gauges"].items():
            lines.append(f"  {name:<44} {_fmt(value)}")
    if data["histograms"]:
        lines.append("histograms:                                    "
                     "count      mean       p50       p95       p99       max")
        for name, summary in data["histograms"].items():
            if not summary.get("count"):
                lines.append(f"  {name:<44} 0")
                continue
            lines.append(
                f"  {name:<44} "
                f"{summary['count']:>6} "
                f"{summary['mean']:>9.4g} "
                f"{summary['p50']:>9.4g} "
                f"{summary['p95']:>9.4g} "
                f"{summary['p99']:>9.4g} "
                f"{summary['max']:>9.4g}"
            )
    if data["series"]:
        lines.append("series:")
        for name, payload in data["series"].items():
            values = payload["values"]
            if not values:
                lines.append(f"  {name:<44} (empty)")
                continue
            window_mean = sum(values) / len(values)
            lines.append(
                f"  {name:<44} last={_fmt(values[-1])} "
                f"mean={_fmt(window_mean)} (n={payload['observed']})"
            )
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
