"""Span tracing, the active-telemetry global, and cross-process absorption.

The shape of the layer
----------------------
A :class:`Telemetry` owns a :class:`~repro.obs.metrics.MetricsRegistry` and a
JSONL event sink (a file, or an in-memory buffer for worker processes that
ship their events home).  Instrumented code never holds a reference to it;
it asks for the process-wide active instance:

>>> from repro.obs import get_telemetry
>>> obs = get_telemetry()
>>> if obs.enabled:
...     obs.count("sampler.tokens_sampled", 1024)

The default active instance is a shared no-op whose methods do nothing and
whose ``span`` returns a reusable null context manager — an un-instrumented
run pays one module-global lookup and an attribute check per probe site, which
the overhead micro-test in ``tests/test_obs.py`` bounds at ≤3% of a sampler
sweep.  Hot loops gate on ``obs.enabled``; coarse-grained sites (one probe per
batch or request) may call ``obs.span(...)`` / ``obs.event(...)``
unconditionally.

JSONL schema
------------
One JSON object per line, two event types::

    {"type": "span",  "name": ..., "id": N, "parent": M|null, "depth": D,
     "start": <unix time>, "seconds": <duration>, "attrs": {...}}
    {"type": "event", "name": ..., "id": N, "parent": M|null, "depth": D,
     "time": <unix time>, "attrs": {...}}

Spans are written when they *close* (their duration is only known then), so a
parent's line appears after its children's; reconstruct the tree from
``parent``/``id``, not line order.  ``depth`` is denormalised for cheap
eyeballing and log filtering.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
]


class _NullSpan:
    """A reusable, re-entrant no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _NoopTelemetry:
    """The disabled default: every probe is a no-op.

    ``enabled`` is False so hot loops can skip even the cheap calls; the
    remaining methods exist so coarse probe sites need no conditional at all.
    """

    __slots__ = ()
    enabled = False
    registry = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields: Any) -> None:
        return None

    def count(self, name: str, amount: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def record(self, name: str, value: float) -> None:
        return None

    def absorb(self, payload: Optional[Mapping[str, Any]]) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<noop telemetry>"


class Telemetry:
    """An enabled telemetry session: metrics registry + JSONL event sink.

    Parameters
    ----------
    trace_path:
        Where to write the JSONL event stream.  ``None`` buffers events in
        memory instead — the worker-process mode, whose buffer travels home
        via :meth:`export_payload` / :meth:`absorb`.
    registry:
        An existing registry to record into (a fresh one by default).
    metrics_path:
        Optional path where :meth:`close` writes the final metrics JSON
        digest; the CLI derives it from the trace path
        (``out.jsonl`` → ``out.metrics.json``).
    """

    enabled = True

    def __init__(
        self,
        trace_path: Optional[Union[str, Path]] = None,
        registry: Optional[MetricsRegistry] = None,
        metrics_path: Optional[Union[str, Path]] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace_path = Path(trace_path) if trace_path is not None else None
        self.metrics_path = Path(metrics_path) if metrics_path is not None else None
        self.events: List[Dict[str, Any]] = []
        self._handle = None
        if self.trace_path is not None:
            self.trace_path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.trace_path, "w", encoding="utf-8")
        self._write_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Spans and events
    # ------------------------------------------------------------------ #
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[int]:
        """Time a block; emits one ``span`` line and a duration histogram.

        The span nests under whichever span is currently open on this thread,
        and its duration is also recorded into the ``span.<name>.seconds``
        histogram so percentiles are available without replaying the trace.
        """
        stack = self._stack()
        span_id = next(self._ids)
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(span_id)
        start_wall = time.time()
        start = time.perf_counter()
        try:
            yield span_id
        finally:
            seconds = time.perf_counter() - start
            stack.pop()
            self.registry.histogram(f"span.{name}.seconds").record(seconds)
            self._emit(
                {
                    "type": "span",
                    "name": name,
                    "id": span_id,
                    "parent": parent,
                    "depth": depth,
                    "start": start_wall,
                    "seconds": seconds,
                    "attrs": attrs,
                }
            )

    def event(self, name: str, **fields: Any) -> None:
        """Emit a point-in-time event attached to the current span."""
        stack = self._stack()
        self._emit(
            {
                "type": "event",
                "name": name,
                "id": next(self._ids),
                "parent": stack[-1] if stack else None,
                "depth": len(stack),
                "time": time.time(),
                "attrs": fields,
            }
        )

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._handle is not None:
            line = json.dumps(record, default=str)
            with self._write_lock:
                if not self._closed:
                    self._handle.write(line + "\n")
        else:
            with self._write_lock:
                self.events.append(record)

    # ------------------------------------------------------------------ #
    # Metric shorthands (mirror the no-op surface)
    # ------------------------------------------------------------------ #
    def count(self, name: str, amount: float = 1) -> None:
        self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).record(value)

    def record(self, name: str, value: float) -> None:
        self.registry.series(name).record(value)

    # ------------------------------------------------------------------ #
    # Cross-process aggregation
    # ------------------------------------------------------------------ #
    def export_payload(self) -> Dict[str, Any]:
        """Everything a worker ships home: metrics state + buffered events."""
        with self._write_lock:
            events = list(self.events)
        return {"metrics": self.registry.state_dict(), "events": events}

    def absorb(self, payload: Optional[Mapping[str, Any]]) -> None:
        """Fold a worker's :meth:`export_payload` into this telemetry.

        Metrics merge exactly (counters add, histograms add bucket-wise);
        the worker's events are re-emitted here with fresh ids, re-parented
        under the currently open span, and their depths shifted accordingly —
        so a worker's ``shard → sweep → word_phase`` subtree lands intact
        under the master's ``epoch`` span.
        """
        if not payload:
            return
        metrics = payload.get("metrics")
        if metrics:
            self.registry.merge(metrics)
        events = payload.get("events")
        if not events:
            return
        stack = self._stack()
        graft_parent = stack[-1] if stack else None
        base_depth = len(stack)
        # Two passes: spans are written child-before-parent, so every old id
        # must be mapped before any parent reference is rewritten.
        id_map: Dict[int, int] = {}
        for event in events:
            old_id = event.get("id")
            if old_id is not None:
                id_map[old_id] = next(self._ids)
        for event in events:
            rewritten = dict(event)
            old_id = rewritten.get("id")
            rewritten["id"] = id_map.get(old_id, next(self._ids))
            old_parent = rewritten.get("parent")
            rewritten["parent"] = (
                id_map[old_parent] if old_parent in id_map else graft_parent
            )
            rewritten["depth"] = rewritten.get("depth", 0) + base_depth
            self._emit(rewritten)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush and close the sink; write the metrics digest if requested."""
        if self._closed:
            return
        with self._write_lock:
            self._closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None
        if self.metrics_path is not None:
            self.metrics_path.parent.mkdir(parents=True, exist_ok=True)
            self.metrics_path.write_text(
                self.registry.to_json() + "\n", encoding="utf-8"
            )

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sink = str(self.trace_path) if self.trace_path else "<buffer>"
        return f"Telemetry(sink={sink}, metrics={len(self.registry)})"


_NOOP = _NoopTelemetry()
_active: Any = _NOOP
_active_lock = threading.Lock()


def get_telemetry() -> Any:
    """The process-wide active telemetry (the shared no-op by default)."""
    return _active


def set_telemetry(telemetry: Optional[Telemetry]) -> Any:
    """Install ``telemetry`` as the active instance (``None`` → no-op)."""
    global _active
    with _active_lock:
        _active = telemetry if telemetry is not None else _NOOP
        return _active


@contextmanager
def use_telemetry(telemetry: Optional[Telemetry]) -> Iterator[Any]:
    """Scoped activation: install, yield, restore the previous instance."""
    previous = _active
    installed = set_telemetry(telemetry)
    try:
        yield installed
    finally:
        set_telemetry(previous if previous is not _NOOP else None)
