"""Process-local metric instruments and the registry that owns them.

Everything here is plain stdlib — no numpy, no third-party imports — so the
telemetry layer can be imported from any module (including the lazily-imported
serving and streaming layers) without widening their import footprint.

Instrument model
----------------
* :class:`Counter` — monotonically increasing totals (tokens sampled, MH
  proposals accepted, registry publishes).
* :class:`Gauge` — a last-written value (current shard skew, cache size).
* :class:`Histogram` — fixed-bucket latency/duration distribution with
  deterministic p50/p95/p99 extraction (see :meth:`Histogram.percentile` for
  the exact, test-pinned interpolation rule).
* :class:`Series` — a bounded sequence of raw observations in arrival order
  (per-sweep tokens/s, per-iteration MH acceptance rates — the Fig. 8
  quantities), kept when the *trajectory* matters, not just the distribution.

Instruments are single-writer: one thread (or process) owns each registry and
concurrent writers aggregate by shipping :meth:`MetricsRegistry.state_dict`
payloads to an owner that calls :meth:`MetricsRegistry.merge` — that is how
the parallel trainer's workers report without locks on the hot path.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "DEFAULT_BUCKET_BOUNDS",
]

#: Default histogram bucket upper bounds: powers of two from ~1 µs to 64 s.
#: Log-spaced so one bucket layout covers everything from a single slab-chunk
#: kernel call to a full training epoch; values beyond the last bound land in
#: an implicit overflow bucket.  Fixed (rather than adaptive) bounds are what
#: make histograms mergeable across processes and runs.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(2.0**e for e in range(-20, 7))

#: Default retention of a :class:`Series` (observations, not seconds).
DEFAULT_SERIES_MAXLEN = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        self.value += amount


class Gauge:
    """A last-written value (``None`` until first set)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution with deterministic percentile extraction.

    Parameters
    ----------
    bounds:
        Ascending bucket *upper* bounds; an implicit overflow bucket catches
        values above the last bound.  Two histograms merge only if their
        bounds are identical, so instrumented code should stick to the
        default layout unless it has a reason not to.

    Percentile rule (pinned by ``tests/test_obs.py``)
    -------------------------------------------------
    ``percentile(q)`` finds the bucket containing the q-th cumulative rank
    ``r = clamp(q/100 * count, 1, count)`` and linearly interpolates between
    the bucket's edges by the rank's position inside the bucket; the result is
    then clamped to the observed ``[min, max]``.  The clamp is what makes the
    small-sample cases exact: with one observation every percentile *is* that
    observation, and no percentile can ever leave the observed range — unlike
    ``np.percentile`` on a raw sample window, the answer depends only on the
    bucket counts, so it is identical run-to-run and across merged processes.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKET_BOUNDS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly ascending")
        # One slot per bound plus the overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[self._bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def _bucket_index(self, value: float) -> int:
        # Linear scan beats bisect for the typical "latencies cluster in a
        # few adjacent buckets" case only when starting near the target;
        # bisect is O(log n) worst-case and branch-predictable — use it.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile under the documented interpolation rule."""
        if self.count == 0:
            return 0.0
        rank = min(max((q / 100.0) * self.count, 1.0), float(self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self.max
                )
                fraction = (rank - cumulative) / bucket_count
                value = lower + fraction * (upper - lower)
                return min(max(value, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - unreachable (count > 0)

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def summary(self) -> Dict[str, float]:
        """The JSON-facing digest: count, sum, mean, min/max, p50/p95/p99."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class Series:
    """A bounded, ordered sequence of raw observations."""

    __slots__ = ("values", "observed")

    def __init__(self, maxlen: int = DEFAULT_SERIES_MAXLEN) -> None:
        self.values: Deque[float] = deque(maxlen=maxlen)
        #: Total observations ever recorded (survives window rollover).
        self.observed = 0

    def record(self, value: float) -> None:
        self.values.append(float(value))
        self.observed += 1

    @property
    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None


class MetricsRegistry:
    """A named collection of instruments with JSON / Prometheus export.

    Instruments are created on first access (``registry.counter("x").inc()``)
    and a name permanently belongs to the instrument kind that created it —
    reusing ``"x"`` as a gauge after it was a counter raises, which catches
    instrumentation typos early instead of silently forking the data.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, Series] = {}

    # ------------------------------------------------------------------ #
    # Instrument access
    # ------------------------------------------------------------------ #
    def _claim(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
            "series": self._series,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} is already a {other_kind}, "
                    f"cannot reuse it as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._claim(name, "counter")
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._claim(name, "gauge")
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_BUCKET_BOUNDS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._claim(name, "histogram")
            instrument = self._histograms[name] = Histogram(bounds)
        return instrument

    def series(self, name: str, maxlen: int = DEFAULT_SERIES_MAXLEN) -> Series:
        instrument = self._series.get(name)
        if instrument is None:
            self._claim(name, "series")
            instrument = self._series[name] = Series(maxlen)
        return instrument

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
            + len(self._series)
        )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The human/JSON-facing digest (histograms as percentile summaries)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
            "series": {
                n: {"observed": s.observed, "values": list(s.values)}
                for n, s in sorted(self._series.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def state_dict(self) -> Dict[str, Any]:
        """Lossless, pickle/JSON-safe form for :meth:`merge` (worker shipping)."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for n, h in self._histograms.items()
            },
            "series": {
                n: {"maxlen": s.values.maxlen, "values": list(s.values),
                    "observed": s.observed}
                for n, s in self._series.items()
            },
        }

    def merge(self, state: Mapping[str, Any]) -> None:
        """Fold a :meth:`state_dict` payload into this registry.

        Counters add, gauges take the payload's value (last writer wins),
        histograms add bucket-wise (bounds must match), series extend in
        payload order.  Merging is how N workers' metrics reach the master
        without loss — exact-count behavior is pinned by the parallel-trainer
        telemetry tests.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, data in state.get("histograms", {}).items():
            incoming = Histogram(data["bounds"])
            incoming.bucket_counts = list(data["bucket_counts"])
            incoming.count = data["count"]
            incoming.total = data["total"]
            incoming.min = data["min"]
            incoming.max = data["max"]
            self.histogram(name, bounds=data["bounds"]).merge(incoming)
        for name, data in state.get("series", {}).items():
            series = self.series(name, maxlen=data.get("maxlen") or
                                 DEFAULT_SERIES_MAXLEN)
            for value in data["values"]:
                series.record(value)
            # Rolled-over observations are part of the total even though
            # their values are gone.
            series.observed += data.get("observed", len(data["values"])) - len(
                data["values"]
            )

    # ------------------------------------------------------------------ #
    # Prometheus-style text exposition
    # ------------------------------------------------------------------ #
    @staticmethod
    def _prom_name(name: str) -> str:
        cleaned = "".join(
            ch if ch.isalnum() or ch == "_" else "_" for ch in name
        )
        if cleaned and cleaned[0].isdigit():
            cleaned = "_" + cleaned
        return cleaned

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4).

        Counters and gauges map directly; histograms emit the standard
        cumulative ``_bucket{le="..."}`` / ``_sum`` / ``_count`` triple; a
        series is summarised as a gauge holding its most recent value (the
        full trajectory lives in :meth:`to_dict`, not the scrape).
        """
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            prom = self._prom_name(name)
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            if gauge.value is None:
                continue
            prom = self._prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {gauge.value}")
        for name, series in sorted(self._series.items()):
            if series.last is None:
                continue
            prom = self._prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {series.last}")
        for name, histogram in sorted(self._histograms.items()):
            prom = self._prom_name(name)
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, bucket_count in zip(
                histogram.bounds, histogram.bucket_counts
            ):
                cumulative += bucket_count
                lines.append(f'{prom}_bucket{{le="{bound!r}"}} {cumulative}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{prom}_sum {histogram.total if histogram.count else 0.0}")
            lines.append(f"{prom}_count {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)}, "
            f"series={len(self._series)})"
        )
