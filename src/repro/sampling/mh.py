"""Generic Metropolis–Hastings machinery (Alg. 1 of the paper).

The LDA samplers implement their MH steps inline for speed, but this module
provides the reference implementation used in tests to validate that the
specialised acceptance-rate formulas (Eq. 7) agree with the generic rule
``π = min{1, p(x̂) q(x|x̂) / (p(x) q(x̂|x))}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.sampling.rng import RngLike, ensure_rng

__all__ = ["MetropolisHastings", "mh_accept", "mh_acceptance_probability"]


def mh_acceptance_probability(
    target_current: float,
    target_proposed: float,
    proposal_current_given_proposed: float,
    proposal_proposed_given_current: float,
) -> float:
    """Return ``min{1, p(x̂) q(x|x̂) / (p(x) q(x̂|x))}``.

    All four arguments are unnormalised densities; shared normalising
    constants cancel.
    """
    if target_current < 0 or target_proposed < 0:
        raise ValueError("target densities must be non-negative")
    if proposal_current_given_proposed < 0 or proposal_proposed_given_current < 0:
        raise ValueError("proposal densities must be non-negative")
    denominator = target_current * proposal_proposed_given_current
    if denominator <= 0:
        # The proposed state is always accepted if the current state has zero
        # density under the target (the chain should escape immediately).
        return 1.0
    ratio = (target_proposed * proposal_current_given_proposed) / denominator
    return min(1.0, ratio)


def mh_accept(
    target_current: float,
    target_proposed: float,
    proposal_current_given_proposed: float,
    proposal_proposed_given_current: float,
    rng: RngLike = None,
) -> bool:
    """Flip the MH acceptance coin for a single proposed move."""
    probability = mh_acceptance_probability(
        target_current,
        target_proposed,
        proposal_current_given_proposed,
        proposal_proposed_given_current,
    )
    rng = ensure_rng(rng)
    return rng.random() < probability


@dataclass
class MetropolisHastings:
    """A generic MH chain over integer states.

    Parameters
    ----------
    target:
        Unnormalised target density ``p(x)``.
    propose:
        Draws ``x̂ ~ q(·|x)`` given the current state.
    proposal_density:
        Evaluates ``q(x̂|x)``.
    rng:
        Seed or generator for reproducibility.
    """

    target: Callable[[int], float]
    propose: Callable[[int, np.random.Generator], int]
    proposal_density: Callable[[int, int], float]
    rng: RngLike = None
    accepted: int = field(default=0, init=False)
    proposed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.rng)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposals accepted so far (0 if none proposed)."""
        if self.proposed == 0:
            return 0.0
        return self.accepted / self.proposed

    def step(self, state: int) -> int:
        """Perform one MH step from ``state`` and return the next state."""
        candidate = self.propose(state, self._rng)
        self.proposed += 1
        accept = mh_accept(
            target_current=self.target(state),
            target_proposed=self.target(candidate),
            proposal_current_given_proposed=self.proposal_density(state, candidate),
            proposal_proposed_given_current=self.proposal_density(candidate, state),
            rng=self._rng,
        )
        if accept:
            self.accepted += 1
            return candidate
        return state

    def run(self, initial_state: int, steps: int) -> List[int]:
        """Run ``steps`` MH steps and return the visited states (excluding
        the initial state)."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        states = []
        state = initial_state
        for _ in range(steps):
            state = self.step(state)
            states.append(state)
        return states
