"""Low-level sampling primitives used throughout the library.

The WarpLDA paper builds on three sampling tools (Sec. 2.2):

* **Alias sampling** (:class:`~repro.sampling.alias.AliasTable`) — O(1) draws
  from a fixed discrete distribution after O(K) construction.
* **Mixture-of-multinomials decomposition**
  (:func:`~repro.sampling.discrete.sample_mixture`) — draw from ``p(x) ∝ A_x +
  B_x`` by first flipping a Bernoulli coin between the two components.
* **Metropolis–Hastings chains** (:class:`~repro.sampling.mh.MetropolisHastings`)
  — the generic Alg. 1 of the paper.

The F+ tree (:class:`~repro.sampling.ftree.FPlusTree`) is the data structure
used by the F+LDA baseline for exact sampling with cheap single-weight updates.
"""

from repro.sampling.alias import AliasTable
from repro.sampling.discrete import (
    sample_discrete,
    sample_mixture,
    sample_unnormalized,
)
from repro.sampling.ftree import FPlusTree
from repro.sampling.mh import MetropolisHastings, mh_accept
from repro.sampling.rng import ensure_rng

__all__ = [
    "AliasTable",
    "FPlusTree",
    "MetropolisHastings",
    "ensure_rng",
    "mh_accept",
    "sample_discrete",
    "sample_mixture",
    "sample_unnormalized",
]
