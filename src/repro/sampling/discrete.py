"""Plain discrete sampling helpers.

These functions cover the "slow but exact" paths used by the collapsed Gibbs
baseline (O(K) per token) and the mixture-of-multinomials decomposition used by
the MH proposals (Sec. 2.2 of the paper).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.sampling.rng import RngLike, ensure_rng

__all__ = [
    "sample_discrete",
    "sample_unnormalized",
    "sample_mixture",
    "categorical_from_counts",
]


def sample_unnormalized(weights: np.ndarray, rng: RngLike = None) -> int:
    """Draw one index proportional to non-negative ``weights`` (O(K)).

    This is the naive enumeration sampler used by plain CGS.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
    total = weights.sum()
    if total <= 0 or not np.isfinite(total):
        raise ValueError("weights must sum to a positive finite value")
    rng = ensure_rng(rng)
    target = rng.random() * total
    cumulative = np.cumsum(weights)
    return int(np.searchsorted(cumulative, target, side="right"))


def sample_discrete(probabilities: np.ndarray, rng: RngLike = None) -> int:
    """Draw one index from a normalised probability vector."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    total = probabilities.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"probabilities must sum to 1, got {total}")
    return sample_unnormalized(probabilities, rng)


def sample_mixture(
    weight_a: float,
    weight_b: float,
    sample_a: Callable[[], int],
    sample_b: Callable[[], int],
    rng: RngLike = None,
) -> Tuple[int, bool]:
    """Sample from ``p(x) ∝ A_x + B_x`` via the mixture decomposition.

    ``weight_a`` and ``weight_b`` are the normalisers ``Z_A = Σ_k A_k`` and
    ``Z_B = Σ_k B_k``.  A Bernoulli coin with success probability
    ``Z_A / (Z_A + Z_B)`` chooses the component, then the corresponding
    component sampler is invoked.

    Returns
    -------
    (sample, used_first):
        The drawn index and whether component A was used.
    """
    if weight_a < 0 or weight_b < 0:
        raise ValueError("mixture weights must be non-negative")
    total = weight_a + weight_b
    if total <= 0:
        raise ValueError("at least one mixture weight must be positive")
    rng = ensure_rng(rng)
    if rng.random() * total < weight_a:
        return sample_a(), True
    return sample_b(), False


def categorical_from_counts(
    counts: np.ndarray, smoothing: float, rng: RngLike = None
) -> int:
    """Draw a topic proportional to ``counts_k + smoothing`` (O(K)).

    A convenience used by the exact proposal samplers in tests to
    cross-validate the O(1) alias / positioning paths.
    """
    counts = np.asarray(counts, dtype=np.float64)
    return sample_unnormalized(counts + smoothing, rng)
