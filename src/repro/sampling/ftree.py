"""F+ tree: exact sampling from a mutable discrete distribution.

F+LDA (Yu et al., WWW 2015) samples the dense term ``α_k (C_wk + β)/(C_k + β̄)``
exactly using an *F+ tree*: a complete binary tree whose leaves hold the
per-topic weights and whose internal nodes hold subtree sums.  Sampling walks
from the root down (O(log K)), and updating a single weight walks from a leaf
up (O(log K)) — much cheaper than rebuilding an alias table after every count
update.

This implementation stores the tree in a flat array (1-indexed heap layout).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.sampling.rng import RngLike, ensure_rng

__all__ = ["FPlusTree"]


class FPlusTree:
    """Complete binary tree over ``K`` non-negative weights with subtree sums.

    Parameters
    ----------
    weights:
        Initial non-negative weights; may be all zero (sampling then raises
        until at least one weight is positive).
    """

    __slots__ = ("_size", "_capacity", "_tree")

    def __init__(self, weights: Union[Sequence[float], np.ndarray]):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
        if weights.size == 0:
            raise ValueError("weights must be non-empty")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")

        self._size = int(weights.size)
        capacity = 1
        while capacity < self._size:
            capacity *= 2
        self._capacity = capacity
        tree = np.zeros(2 * capacity, dtype=np.float64)
        tree[capacity : capacity + self._size] = weights
        for node in range(capacity - 1, 0, -1):
            tree[node] = tree[2 * node] + tree[2 * node + 1]
        self._tree = tree

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of leaves ``K``."""
        return self._size

    @property
    def total(self) -> float:
        """Sum of all weights (the normaliser)."""
        return float(self._tree[1])

    def weight(self, index: int) -> float:
        """Return the current weight of leaf ``index``."""
        self._check_index(index)
        return float(self._tree[self._capacity + index])

    def weights(self) -> np.ndarray:
        """Return a copy of all leaf weights."""
        return self._tree[self._capacity : self._capacity + self._size].copy()

    # ------------------------------------------------------------------ #
    def update(self, index: int, new_weight: float) -> None:
        """Set leaf ``index`` to ``new_weight`` in O(log K)."""
        self._check_index(index)
        if new_weight < 0 or not np.isfinite(new_weight):
            raise ValueError(f"weight must be finite and non-negative, got {new_weight}")
        node = self._capacity + index
        delta = new_weight - self._tree[node]
        # Store the leaf exactly (delta propagation would lose tiny values to
        # rounding); ancestors accumulate the delta.
        self._tree[node] = new_weight
        node //= 2
        while node >= 1:
            self._tree[node] += delta
            node //= 2

    def add(self, index: int, delta: float) -> None:
        """Add ``delta`` to leaf ``index`` in O(log K)."""
        self._check_index(index)
        new_weight = self._tree[self._capacity + index] + delta
        if new_weight < -1e-9:
            raise ValueError(
                f"update would make weight negative: leaf {index} -> {new_weight}"
            )
        self.update(index, max(new_weight, 0.0))

    # ------------------------------------------------------------------ #
    def sample(self, rng: RngLike = None) -> int:
        """Draw a leaf index with probability proportional to its weight."""
        total = self._tree[1]
        if total <= 0:
            raise ValueError("cannot sample from an all-zero F+ tree")
        rng = ensure_rng(rng)
        return self._descend(rng.random() * total)

    def sample_many(self, count: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``count`` independent leaves (the tree is not modified)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        total = self._tree[1]
        if total <= 0:
            raise ValueError("cannot sample from an all-zero F+ tree")
        rng = ensure_rng(rng)
        targets = rng.random(count) * total
        return np.fromiter(
            (self._descend(target) for target in targets), dtype=np.int64, count=count
        )

    # ------------------------------------------------------------------ #
    def _descend(self, target: float) -> int:
        node = 1
        while node < self._capacity:
            left = 2 * node
            left_sum = self._tree[left]
            if target < left_sum:
                node = left
            else:
                target -= left_sum
                node = left + 1
        index = node - self._capacity
        # Guard against landing on a zero-padded leaf due to rounding.
        if index >= self._size:
            index = self._size - 1
        return int(index)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise IndexError(f"leaf index {index} out of range [0, {self._size})")

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FPlusTree(size={self._size}, total={self.total:.4g})"
