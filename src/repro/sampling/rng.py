"""Random-number-generator helpers.

Every stochastic component in the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None`` and normalises it through
:func:`ensure_rng`.  This keeps experiments reproducible end to end: a single
integer seed passed to a sampler fully determines its trajectory.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def seed_from_deprecated_rng(seed: RngLike, rng: RngLike, where: str) -> RngLike:
    """Fold the deprecated ``rng=`` keyword into the canonical ``seed=``.

    The corpus helpers historically called their seed parameter ``rng=``
    while the samplers called it ``seed=``; every entry point now accepts
    ``seed=`` and routes ``rng=`` through here: passing ``rng=`` still works
    but emits a :class:`DeprecationWarning`, and passing both is an error.

    ``stacklevel=3`` points the warning at the caller of the public helper
    (caller → helper → this function).
    """
    if rng is None:
        return seed
    if seed is not None:
        raise ValueError(f"{where}: pass seed= or the deprecated rng=, not both")
    warnings.warn(
        f"{where}(rng=...) is deprecated; pass seed= instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return rng


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for fresh OS entropy, an ``int`` or
        :class:`numpy.random.SeedSequence` to seed a new generator, or an
        existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used by the simulated cluster so that every worker has its own stream while
    the whole run stays reproducible from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a sequence from the generator state deterministically.
        sequence = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def export_rng_state(rng: np.random.Generator) -> dict:
    """Freeze a generator's full state into a JSON-compatible dict.

    Together with :func:`restore_rng_state` this is what makes training
    checkpoints bit-exact: a resumed run continues the exact random stream the
    interrupted run would have produced.
    """
    state = rng.bit_generator.state
    return {"bit_generator": state["bit_generator"], "state": dict(state)}


def restore_rng_state(state: dict) -> np.random.Generator:
    """Rebuild a generator from :func:`export_rng_state` output."""
    name = state.get("bit_generator")
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None or not isinstance(bit_generator_cls, type):
        raise ValueError(f"unknown bit generator {name!r}")
    bit_generator = bit_generator_cls()
    bit_generator.state = state["state"]
    return np.random.Generator(bit_generator)
