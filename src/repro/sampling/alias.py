"""Walker's alias method for O(1) sampling from a discrete distribution.

The alias table is the workhorse of the MH-based samplers (AliasLDA,
LightLDA, WarpLDA's word proposal): after an O(K) construction, each draw
costs O(1) — pick one of K bins uniformly, then pick one of the (at most) two
outcomes stored in that bin.

The implementation below uses the standard two-stack (small / large)
construction and is fully vectorised for batched draws.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.sampling.rng import RngLike, ensure_rng

__all__ = ["AliasTable"]


class AliasTable:
    """Alias table over an (unnormalised) weight vector.

    Parameters
    ----------
    weights:
        Non-negative weights of the ``K`` outcomes; they do not need to be
        normalised.  At least one weight must be positive.

    Examples
    --------
    >>> table = AliasTable([1.0, 2.0, 1.0])
    >>> rng = np.random.default_rng(0)
    >>> int(table.draw(rng)) in {0, 1, 2}
    True
    """

    __slots__ = ("_prob", "_alias", "_n", "_total")

    def __init__(self, weights: Union[Sequence[float], np.ndarray]):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
        if weights.size == 0:
            raise ValueError("weights must be non-empty")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0.0:
            raise ValueError("at least one weight must be positive")

        n = weights.size
        self._n = n
        self._total = total
        # Scaled so that the average bin holds exactly probability 1.
        # Normalise *before* multiplying by n: with a subnormal total,
        # ``n / total`` overflows to inf and ``0 * inf`` poisons the table
        # with NaNs, while ``weights / total`` is always finite.
        scaled = (weights / total) * n
        prob = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)

        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Remaining bins are full (probability 1); numerical leftovers only.
        for i in small:
            prob[i] = 1.0
        for i in large:
            prob[i] = 1.0

        self._prob = prob
        self._alias = alias

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of outcomes ``K``."""
        return self._n

    @property
    def total_weight(self) -> float:
        """Sum of the weights used to build the table (the normaliser)."""
        return self._total

    def probabilities(self) -> np.ndarray:
        """Return the normalised probability of each outcome.

        Reconstructed from the table itself; useful for testing that the
        construction preserved the distribution exactly.
        """
        probs = np.zeros(self._n, dtype=np.float64)
        np.add.at(probs, np.arange(self._n), self._prob)
        np.add.at(probs, self._alias, 1.0 - self._prob)
        return probs / self._n

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def draw(self, rng: RngLike = None) -> int:
        """Draw a single outcome in O(1)."""
        rng = ensure_rng(rng)
        bin_index = int(rng.integers(self._n))
        if rng.random() < self._prob[bin_index]:
            return bin_index
        return int(self._alias[bin_index])

    def draw_many(self, count: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``count`` outcomes as a vectorised batch.

        Equivalent to ``count`` independent calls to :meth:`draw` but performed
        with whole-array operations, which is what the NumPy-vectorised
        WarpLDA phases use.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(rng)
        bins = rng.integers(self._n, size=count)
        accept = rng.random(count) < self._prob[bins]
        return np.where(accept, bins, self._alias[bins]).astype(np.int64)

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AliasTable(size={self._n}, total_weight={self._total:.4g})"
