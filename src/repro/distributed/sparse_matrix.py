"""The ``AddEntry`` / ``VisitByRow`` / ``VisitByColumn`` framework (Fig. 2).

The framework owns a ``D x V`` sparse matrix whose entries carry per-token
data (for WarpLDA: the topic assignment plus the ``M`` proposals).  Exactly as
in Sec. 5.2, only one copy of the entry data is stored, laid out in CSC order
(grouped by column, sorted by row inside each column); rows are visited
through an index array of pointers into that CSC storage, so ``VisitByRow``
performs indirect — but cache-line-friendly — accesses while
``VisitByColumn`` is fully sequential.

User-defined operations receive a writable view of the entry data of one row
(or column); mutations are written back into the single underlying store, so a
subsequent visit in the other order observes them.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = ["SparseMatrixFramework"]

#: Signature of a user-defined operation: ``op(index, data) -> None`` where
#: ``data`` is an ``(n_entries, data_width)`` array that may be modified in
#: place.
Operation = Callable[[int, np.ndarray], None]


class SparseMatrixFramework:
    """In-process implementation of the distributed sparse-matrix interface.

    Parameters
    ----------
    num_rows, num_cols:
        Matrix dimensions (documents x words for WarpLDA).
    data_width:
        Number of integers stored per entry (``M + 1`` for WarpLDA).
    """

    def __init__(self, num_rows: int, num_cols: int, data_width: int = 1):
        if num_rows <= 0 or num_cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        if data_width <= 0:
            raise ValueError("data_width must be positive")
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        self.data_width = int(data_width)
        self._pending_rows: list[int] = []
        self._pending_cols: list[int] = []
        self._pending_data: list[np.ndarray] = []
        self._built = False

        # Populated by build():
        self._data: Optional[np.ndarray] = None          # CSC-ordered entry data
        self._entry_rows: Optional[np.ndarray] = None    # row id of each CSC entry
        self._entry_cols: Optional[np.ndarray] = None    # column id of each CSC entry
        self._col_offsets: Optional[np.ndarray] = None   # CSC column offsets
        self._row_pointers: Optional[np.ndarray] = None  # PCSR: entry index per row
        self._row_offsets: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_entry(self, row: int, col: int, data) -> None:
        """Add one entry at ``(row, col)`` with its per-entry data.

        Only valid before :meth:`build`.  Multiple entries may share a cell.
        """
        if self._built:
            raise RuntimeError("add_entry is only valid before build()")
        if not 0 <= row < self.num_rows:
            raise IndexError(f"row {row} out of range [0, {self.num_rows})")
        if not 0 <= col < self.num_cols:
            raise IndexError(f"col {col} out of range [0, {self.num_cols})")
        data = np.asarray(data, dtype=np.int64).reshape(-1)
        if data.shape != (self.data_width,):
            raise ValueError(
                f"entry data must have width {self.data_width}, got {data.shape}"
            )
        self._pending_rows.append(int(row))
        self._pending_cols.append(int(col))
        self._pending_data.append(data)

    def build(self) -> "SparseMatrixFramework":
        """Freeze the structure and lay the data out in CSC order."""
        if self._built:
            return self
        if not self._pending_rows:
            raise ValueError("cannot build an empty sparse matrix")
        rows = np.array(self._pending_rows, dtype=np.int64)
        cols = np.array(self._pending_cols, dtype=np.int64)
        data = np.vstack(self._pending_data)

        # CSC order: group by column, sorted by row id inside each column
        # (the "entries sorted by row id" layout of Sec. 5.2).
        order = np.lexsort((rows, cols))
        self._entry_rows = rows[order]
        self._entry_cols = cols[order]
        self._data = data[order].copy()

        col_counts = np.bincount(self._entry_cols, minlength=self.num_cols)
        self._col_offsets = np.zeros(self.num_cols + 1, dtype=np.int64)
        np.cumsum(col_counts, out=self._col_offsets[1:])

        # Row pointers: for every row, the indices of its entries in the CSC
        # storage, themselves ordered by column (a stable sort keeps the CSC
        # order as the tiebreak).
        row_order = np.argsort(self._entry_rows, kind="stable")
        self._row_pointers = row_order
        row_counts = np.bincount(self._entry_rows, minlength=self.num_rows)
        self._row_offsets = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(row_counts, out=self._row_offsets[1:])

        self._pending_rows = []
        self._pending_cols = []
        self._pending_data = []
        self._built = True
        return self

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_entries(self) -> int:
        """Total number of entries (tokens)."""
        if self._built:
            return int(self._data.shape[0])
        return len(self._pending_rows)

    def row_size(self, row: int) -> int:
        """Number of entries in ``row``."""
        self._require_built()
        return int(self._row_offsets[row + 1] - self._row_offsets[row])

    def col_size(self, col: int) -> int:
        """Number of entries in ``col``."""
        self._require_built()
        return int(self._col_offsets[col + 1] - self._col_offsets[col])

    def row_entry_indices(self, row: int) -> np.ndarray:
        """CSC entry indices of ``row`` (the PCSR pointers)."""
        self._require_built()
        return self._row_pointers[self._row_offsets[row] : self._row_offsets[row + 1]]

    def col_entry_indices(self, col: int) -> np.ndarray:
        """CSC entry indices of ``col`` (contiguous)."""
        self._require_built()
        return np.arange(self._col_offsets[col], self._col_offsets[col + 1])

    def entry_data(self) -> np.ndarray:
        """The underlying ``(num_entries, data_width)`` data array (live view)."""
        self._require_built()
        return self._data

    def entry_rows(self) -> np.ndarray:
        """Row id of every CSC entry (read-only view)."""
        self._require_built()
        return self._entry_rows

    def entry_cols(self) -> np.ndarray:
        """Column id of every CSC entry (read-only view)."""
        self._require_built()
        return self._entry_cols

    # ------------------------------------------------------------------ #
    # Visitors
    # ------------------------------------------------------------------ #
    def visit_by_row(self, operation: Operation) -> None:
        """Call ``operation(row, data)`` for every non-empty row.

        ``data`` is an ``(n, data_width)`` array of the row's entries (in
        column order); in-place modifications are scattered back into the
        store after the call returns.
        """
        self._require_built()
        for row in range(self.num_rows):
            indices = self.row_entry_indices(row)
            if indices.size == 0:
                continue
            view = self._data[indices]
            operation(row, view)
            self._data[indices] = view

    def visit_by_column(self, operation: Operation) -> None:
        """Call ``operation(col, data)`` for every non-empty column."""
        self._require_built()
        for col in range(self.num_cols):
            start, stop = self._col_offsets[col], self._col_offsets[col + 1]
            if start == stop:
                continue
            view = self._data[start:stop]
            operation(col, view)
            # view is a slice (no copy); assignment back is a no-op but kept
            # for symmetry with visit_by_row and future layouts.
            self._data[start:stop] = view

    # ------------------------------------------------------------------ #
    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("call build() before using the matrix")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_corpus(cls, corpus, data_width: int = 1) -> "SparseMatrixFramework":
        """Build the token matrix ``Y`` of a corpus (one entry per token).

        Each entry's data is initialised to zeros; WarpLDA fills it with the
        topic assignment and proposals.
        """
        framework = cls(corpus.num_documents, corpus.vocabulary_size, data_width)
        zeros = np.zeros(data_width, dtype=np.int64)
        for doc, word in zip(
            corpus.token_documents.tolist(), corpus.token_words.tolist()
        ):
            framework.add_entry(doc, word, zeros)
        return framework.build()
