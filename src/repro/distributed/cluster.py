"""Simulated cluster execution of WarpLDA (Sec. 5.3, Fig. 6).

Because WarpLDA's counts are delayed for a whole iteration, a synchronous
distributed execution computes *exactly* the same update as the
single-process sampler — the partitioning only changes who computes what and
what must be communicated.  The simulation therefore runs the real sampler
for the model state and uses a cost model for the time axis:

* per-iteration **compute** time is the measured single-process iteration time
  divided by the modelled speedup of the worker count (including the load
  imbalance of the chosen column partitioning);
* per-iteration **communication** time is the volume of entry data that must
  move between the row layout and the column layout (everything except the
  diagonal blocks), divided by the aggregate network bandwidth, reduced by the
  fraction hidden through the block-level computation/communication overlap of
  Sec. 5.3.2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.warplda import WarpLDA, WarpLDAConfig
from repro.corpus.corpus import Corpus
from repro.distributed.partition import (
    imbalance_index,
    partition_loads,
    partition_words_greedy,
)
from repro.distributed.scaling import MACHINE_SCALING_MODEL, ScalingModel
from repro.evaluation.convergence import ConvergenceTracker
from repro.sampling.rng import RngLike

__all__ = ["ClusterConfig", "SimulatedCluster", "DistributedWarpLDA"]


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of the simulated cluster.

    Attributes
    ----------
    num_workers:
        Number of MPI workers (machines).
    network_bandwidth_bytes:
        Aggregate all-to-all bandwidth in bytes/second.
    overlap_fraction:
        Fraction of communication hidden behind computation by the B x B block
        pipeline of Sec. 5.3.2 (0 = fully exposed, 1 = fully hidden).
    bytes_per_entry:
        Wire size of one token's entry (assignment + M proposals).
    scaling_model:
        Compute-speedup model for the worker count.
    """

    num_workers: int
    network_bandwidth_bytes: float = 1e9
    overlap_fraction: float = 0.7
    bytes_per_entry: int = 24
    scaling_model: ScalingModel = MACHINE_SCALING_MODEL

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.network_bandwidth_bytes <= 0:
            raise ValueError("network_bandwidth_bytes must be positive")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError("overlap_fraction must be in [0, 1]")
        if self.bytes_per_entry <= 0:
            raise ValueError("bytes_per_entry must be positive")


class SimulatedCluster:
    """Partitioning plus the per-iteration time model."""

    def __init__(self, corpus: Corpus, config: ClusterConfig):
        self.corpus = corpus
        self.config = config
        word_sizes = corpus.word_frequencies()
        doc_sizes = corpus.document_lengths()
        self.column_assignment = partition_words_greedy(word_sizes, config.num_workers)
        self.row_assignment = partition_words_greedy(doc_sizes, config.num_workers)
        self.column_loads = partition_loads(
            word_sizes, self.column_assignment, config.num_workers
        )
        self.row_loads = partition_loads(
            doc_sizes, self.row_assignment, config.num_workers
        )

    # ------------------------------------------------------------------ #
    @property
    def column_imbalance(self) -> float:
        """Imbalance index of the word partitioning (Fig. 4's metric)."""
        return imbalance_index(self.column_loads)

    @property
    def row_imbalance(self) -> float:
        """Imbalance index of the document partitioning."""
        return imbalance_index(self.row_loads)

    def communication_bytes_per_iteration(self) -> float:
        """Entry data crossing workers per iteration (two re-partitions)."""
        off_diagonal_fraction = (self.config.num_workers - 1) / self.config.num_workers
        per_exchange = (
            self.corpus.num_tokens * self.config.bytes_per_entry * off_diagonal_fraction
        )
        return 2.0 * per_exchange

    def iteration_time(self, single_process_seconds: float) -> float:
        """Modelled wall-clock seconds of one distributed iteration."""
        if single_process_seconds < 0:
            raise ValueError("single_process_seconds must be non-negative")
        speedup = self.config.scaling_model.speedup(self.config.num_workers)
        # Stragglers: the slowest worker holds the barrier, so compute time is
        # inflated by the partitioning imbalance.
        straggler_factor = 1.0 + max(self.column_imbalance, self.row_imbalance)
        compute = single_process_seconds / speedup * straggler_factor
        communication = (
            self.communication_bytes_per_iteration()
            / self.config.network_bandwidth_bytes
            * (1.0 - self.config.overlap_fraction)
        )
        if self.config.num_workers == 1:
            communication = 0.0
        return compute + communication

    def predicted_speedup(self, single_process_seconds: float) -> float:
        """Modelled speedup of this cluster over the single-process sampler.

        ``single_process_seconds / iteration_time(...)`` — the number the
        real data-parallel trainer (:mod:`repro.training`) can be validated
        against; ``benchmarks/bench_parallel_training.py`` prints predicted
        and measured side by side.
        """
        if single_process_seconds <= 0:
            raise ValueError("single_process_seconds must be positive")
        return single_process_seconds / self.iteration_time(single_process_seconds)

    def prediction_error(
        self, single_process_seconds: float, measured_parallel_seconds: float
    ) -> float:
        """Relative error of the modelled iteration time vs a measurement.

        Positive means the model predicted a *slower* iteration than
        measured.  This is the simulator-validation hook: a real
        :class:`~repro.training.parallel.ParallelTrainer` run supplies the
        measurement.
        """
        if measured_parallel_seconds <= 0:
            raise ValueError("measured_parallel_seconds must be positive")
        predicted = self.iteration_time(single_process_seconds)
        return (predicted - measured_parallel_seconds) / measured_parallel_seconds

    def summary(self) -> Dict[str, float]:
        """Partitioning and communication summary for reports."""
        return {
            "num_workers": float(self.config.num_workers),
            "column_imbalance": self.column_imbalance,
            "row_imbalance": self.row_imbalance,
            "comm_bytes_per_iteration": self.communication_bytes_per_iteration(),
        }


class DistributedWarpLDA:
    """WarpLDA executed under the simulated cluster's time model.

    The model state evolves exactly as the single-process :class:`WarpLDA`
    (delayed updates make the distributed execution equivalent); only the
    reported elapsed time per iteration comes from the cluster model.
    """

    name = "DistributedWarpLDA"

    def __init__(
        self,
        corpus: Corpus,
        cluster_config: ClusterConfig,
        num_topics: int = 10,
        num_mh_steps: int = 2,
        alpha: Optional[float] = None,
        beta: float = 0.01,
        seed: RngLike = None,
    ):
        self.cluster = SimulatedCluster(corpus, cluster_config)
        self.sampler = WarpLDA(
            corpus,
            num_topics=num_topics,
            num_mh_steps=num_mh_steps,
            alpha=alpha,
            beta=beta,
            seed=seed,
        )
        self.corpus = corpus
        self.num_topics = num_topics
        self.modelled_seconds = 0.0

    def fit(
        self,
        num_iterations: int,
        tracker: Optional[ConvergenceTracker] = None,
        evaluate_every: int = 1,
    ) -> "DistributedWarpLDA":
        """Run ``num_iterations`` iterations, recording modelled elapsed time."""
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        if tracker is not None:
            tracker.start()
        for _ in range(num_iterations):
            start = time.perf_counter()
            self.sampler.run_iteration()
            measured = time.perf_counter() - start
            self.modelled_seconds += self.cluster.iteration_time(measured)
            iteration = self.sampler.iterations_completed
            if tracker is not None and iteration % evaluate_every == 0:
                tracker.record(
                    iteration=iteration,
                    log_likelihood=self.sampler.log_likelihood(),
                    tokens_processed=iteration * self.corpus.num_tokens,
                    elapsed_seconds=self.modelled_seconds,
                )
        return self

    # Convenience passthroughs ------------------------------------------------
    def log_likelihood(self) -> float:
        """Log joint likelihood of the current state."""
        return self.sampler.log_likelihood()

    def phi(self) -> np.ndarray:
        """Topic-word distributions of the current state."""
        return self.sampler.phi()

    def theta(self) -> np.ndarray:
        """Document-topic proportions of the current state."""
        return self.sampler.theta()
