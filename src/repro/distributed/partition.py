"""Balanced partitioning of rows and columns (Sec. 5.3.2, Fig. 4).

Column (word) partitioning is hard because term frequencies follow a power
law: the most frequent word alone can exceed a partition's fair share.  The
paper compares three strategies:

* **static** — shuffle the words, then give every partition the same *number
  of words*;
* **dynamic** — keep the words in order but cut the sequence into contiguous
  slices with roughly the same *number of tokens*;
* **greedy** — sort words by frequency (descending) and repeatedly assign the
  next word to the currently lightest partition.

Balance is measured by the **imbalance index**
``max(partition load) / mean(partition load) - 1`` (0 is perfect).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.sampling.rng import RngLike, ensure_rng

__all__ = [
    "contiguous_shards",
    "imbalance_by_strategy",
    "imbalance_index",
    "partition_words_static",
    "partition_words_dynamic",
    "partition_words_greedy",
    "partition_documents_balanced",
    "partition_loads",
]


def imbalance_index(loads: np.ndarray) -> float:
    """``max(load) / mean(load) - 1`` of per-partition loads."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("loads must be non-empty")
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    mean = loads.mean()
    if mean == 0:
        return 0.0
    return float(loads.max() / mean - 1.0)


def partition_loads(sizes: np.ndarray, assignment: np.ndarray, num_partitions: int) -> np.ndarray:
    """Total size per partition for a given item → partition assignment."""
    sizes = np.asarray(sizes, dtype=np.int64)
    assignment = np.asarray(assignment, dtype=np.int64)
    if sizes.shape != assignment.shape:
        raise ValueError("sizes and assignment must have the same shape")
    return np.bincount(assignment, weights=sizes, minlength=num_partitions)


def _validate(sizes: np.ndarray, num_partitions: int) -> np.ndarray:
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.ndim != 1 or sizes.size == 0:
        raise ValueError("sizes must be a non-empty 1-D array")
    if np.any(sizes < 0):
        raise ValueError("sizes must be non-negative")
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return sizes


def partition_words_static(
    sizes: np.ndarray, num_partitions: int, rng: RngLike = None
) -> np.ndarray:
    """Random shuffle, equal number of *words* per partition."""
    sizes = _validate(sizes, num_partitions)
    rng = ensure_rng(rng)
    order = rng.permutation(sizes.size)
    assignment = np.empty(sizes.size, dtype=np.int64)
    # Words dealt out in contiguous chunks of (approximately) equal count.
    boundaries = np.linspace(0, sizes.size, num_partitions + 1).astype(np.int64)
    for partition in range(num_partitions):
        assignment[order[boundaries[partition] : boundaries[partition + 1]]] = partition
    return assignment


def partition_words_dynamic(sizes: np.ndarray, num_partitions: int) -> np.ndarray:
    """Contiguous slices, each with roughly the same number of tokens."""
    sizes = _validate(sizes, num_partitions)
    total = int(sizes.sum())
    target = total / num_partitions if num_partitions else 0
    assignment = np.empty(sizes.size, dtype=np.int64)
    partition = 0
    load = 0
    for word in range(sizes.size):
        # Close the current slice when it has reached its fair share and
        # there are still partitions left for the remaining words.
        if load >= target and partition < num_partitions - 1:
            partition += 1
            load = 0
        assignment[word] = partition
        load += int(sizes[word])
    return assignment


def partition_words_greedy(sizes: np.ndarray, num_partitions: int) -> np.ndarray:
    """Longest-processing-time greedy assignment (the paper's algorithm)."""
    sizes = _validate(sizes, num_partitions)
    assignment = np.empty(sizes.size, dtype=np.int64)
    loads = np.zeros(num_partitions, dtype=np.int64)
    for word in np.argsort(sizes)[::-1]:
        partition = int(np.argmin(loads))
        assignment[word] = partition
        loads[partition] += int(sizes[word])
    return assignment


def partition_documents_balanced(lengths: np.ndarray, num_partitions: int) -> np.ndarray:
    """Greedy balanced partitioning of rows (documents) by token count."""
    return partition_words_greedy(lengths, num_partitions)


def contiguous_shards(sizes: np.ndarray, num_partitions: int) -> np.ndarray:
    """Cut items into contiguous ranges with roughly equal total size.

    This is the dynamic strategy restricted to *ranges*: the result is the
    ``num_partitions + 1`` boundary array such that shard ``p`` owns items
    ``[boundaries[p], boundaries[p + 1])``.  Contiguity is what makes the
    shards cheap corpus views (:meth:`repro.corpus.corpus.Corpus.slice`), the
    layout data-parallel training shards documents with.  Every shard gets at
    least one item, so ``num_partitions`` must not exceed ``len(sizes)``.
    """
    sizes = _validate(sizes, num_partitions)
    if num_partitions > sizes.size:
        raise ValueError(
            f"cannot cut {sizes.size} items into {num_partitions} non-empty "
            f"contiguous shards"
        )
    cumulative = np.cumsum(sizes)
    targets = cumulative[-1] * np.arange(1, num_partitions) / num_partitions
    cuts = np.searchsorted(cumulative, targets, side="left") + 1
    boundaries = np.empty(num_partitions + 1, dtype=np.int64)
    boundaries[0] = 0
    boundaries[-1] = sizes.size
    # Clamp so every shard keeps at least one item even when a single item
    # exceeds the fair share (power-law document lengths make that real).
    for partition in range(1, num_partitions):
        low = boundaries[partition - 1] + 1
        high = sizes.size - (num_partitions - partition)
        boundaries[partition] = min(max(int(cuts[partition - 1]), low), high)
    return boundaries


def imbalance_by_strategy(
    sizes: np.ndarray,
    partition_counts: Iterable[int],
    rng: RngLike = 0,
) -> Dict[str, List[float]]:
    """Fig. 4: imbalance index of each strategy for each partition count."""
    sizes = np.asarray(sizes, dtype=np.int64)
    rng = ensure_rng(rng)
    results: Dict[str, List[float]] = {"static": [], "dynamic": [], "greedy": []}
    for num_partitions in partition_counts:
        static = partition_words_static(sizes, num_partitions, rng)
        dynamic = partition_words_dynamic(sizes, num_partitions)
        greedy = partition_words_greedy(sizes, num_partitions)
        results["static"].append(
            imbalance_index(partition_loads(sizes, static, num_partitions))
        )
        results["dynamic"].append(
            imbalance_index(partition_loads(sizes, dynamic, num_partitions))
        )
        results["greedy"].append(
            imbalance_index(partition_loads(sizes, greedy, num_partitions))
        )
    return results
