"""The distributed sparse-matrix framework and cluster simulation (Sec. 5).

The paper implements WarpLDA on top of a purpose-built framework whose only
data structure is a distributed ``D x V`` sparse matrix manipulated through
three methods — ``AddEntry``, ``VisitByRow`` and ``VisitByColumn`` — storing a
single CSC copy of the data plus row pointers.  This package provides:

* :mod:`repro.distributed.sparse_matrix` — an in-process implementation of
  that framework (used by the distributed WarpLDA driver);
* :mod:`repro.distributed.partition` — the static / dynamic / greedy
  partitioning strategies and the imbalance index of Fig. 4;
* :mod:`repro.distributed.cluster` — a simulated multi-worker cluster with a
  communication/computation performance model (Fig. 6, Fig. 9b);
* :mod:`repro.distributed.scaling` — the thread/machine scaling model used
  for Fig. 9.
"""

from repro.distributed.cluster import ClusterConfig, DistributedWarpLDA, SimulatedCluster
from repro.distributed.partition import (
    imbalance_index,
    partition_documents_balanced,
    partition_words_dynamic,
    partition_words_greedy,
    partition_words_static,
)
from repro.distributed.scaling import ScalingModel, machine_scaling_curve, thread_scaling_curve
from repro.distributed.sparse_matrix import SparseMatrixFramework

__all__ = [
    "ClusterConfig",
    "DistributedWarpLDA",
    "ScalingModel",
    "SimulatedCluster",
    "SparseMatrixFramework",
    "imbalance_index",
    "machine_scaling_curve",
    "partition_documents_balanced",
    "partition_words_dynamic",
    "partition_words_greedy",
    "partition_words_static",
    "thread_scaling_curve",
]
