"""Analytic scaling model for threads, machines and cluster throughput (Fig. 9).

Absolute throughput cannot be meaningfully reproduced in Python, so the
multi-core and multi-machine results are reproduced with a contention-style
performance model

.. math:: \\text{speedup}(n) = \\frac{n}{1 + \\gamma (n - 1)}

where the contention coefficient γ captures memory-bandwidth saturation and
NUMA effects (threads) or communication and straggler overhead (machines).
The default coefficients are calibrated so the model passes through the
paper's reported points — 17x on 24 cores (Fig. 9a), 13.5x on 16 machines
(Fig. 9b) — and the same model extrapolates the 256-machine throughput run
(Fig. 9d).  The per-unit base throughput is measured, not assumed: callers
pass the single-worker token rate obtained from an actual run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

__all__ = ["ScalingModel", "thread_scaling_curve", "machine_scaling_curve"]


@dataclass(frozen=True)
class ScalingModel:
    """Contention-based speedup model.

    Attributes
    ----------
    contention:
        The γ coefficient: 0 gives perfect linear scaling, larger values
        saturate earlier.
    numa_penalty:
        Multiplicative efficiency penalty applied beyond ``numa_boundary``
        workers (models the cross-socket accesses of Sec. 5.3.1 that the
        paper's NUMA-aware placement mostly, but not completely, removes).
    numa_boundary:
        Number of workers per NUMA domain (cores per socket / workers per
        machine group).
    """

    contention: float = 0.018
    numa_penalty: float = 1.0
    numa_boundary: int = 0

    def __post_init__(self) -> None:
        if self.contention < 0:
            raise ValueError("contention must be non-negative")
        if not 0 < self.numa_penalty <= 1.0:
            raise ValueError("numa_penalty must be in (0, 1]")
        if self.numa_boundary < 0:
            raise ValueError("numa_boundary must be non-negative")

    def speedup(self, num_workers: int) -> float:
        """Modelled speedup over one worker."""
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        speedup = num_workers / (1.0 + self.contention * (num_workers - 1))
        if self.numa_boundary and num_workers > self.numa_boundary:
            speedup *= self.numa_penalty
        return float(speedup)

    def efficiency(self, num_workers: int) -> float:
        """Parallel efficiency (speedup / workers)."""
        return self.speedup(num_workers) / num_workers

    def throughput(self, num_workers: int, single_worker_throughput: float) -> float:
        """Modelled aggregate throughput (tokens/s) of ``num_workers`` workers."""
        if single_worker_throughput <= 0:
            raise ValueError("single_worker_throughput must be positive")
        return single_worker_throughput * self.speedup(num_workers)

    def curve(
        self, worker_counts: Iterable[int], single_worker_throughput: float
    ) -> List[Dict[str, float]]:
        """Speedup/throughput rows for a sweep of worker counts."""
        rows = []
        for count in worker_counts:
            rows.append(
                {
                    "workers": float(count),
                    "speedup": self.speedup(count),
                    "efficiency": self.efficiency(count),
                    "throughput": self.throughput(count, single_worker_throughput),
                }
            )
        return rows


#: Model calibrated to Fig. 9a (24 cores -> ~17x, 2-socket NUMA machine).
THREAD_SCALING_MODEL = ScalingModel(contention=0.018, numa_penalty=0.98, numa_boundary=12)

#: Model calibrated to Fig. 9b (16 machines -> ~13.5x).
MACHINE_SCALING_MODEL = ScalingModel(contention=0.0125)


def thread_scaling_curve(
    single_core_throughput: float,
    core_counts: Iterable[int] = (1, 6, 12, 24),
    model: ScalingModel = THREAD_SCALING_MODEL,
) -> List[Dict[str, float]]:
    """Fig. 9a: multi-threading speedup and throughput on one machine."""
    return model.curve(core_counts, single_core_throughput)


def machine_scaling_curve(
    single_machine_throughput: float,
    machine_counts: Iterable[int] = (1, 2, 4, 8, 16),
    model: ScalingModel = MACHINE_SCALING_MODEL,
) -> List[Dict[str, float]]:
    """Fig. 9b/9d: multi-machine speedup and aggregate throughput."""
    return model.curve(machine_counts, single_machine_throughput)
