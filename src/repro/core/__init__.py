"""The paper's contribution: the WarpLDA sampler and its ablation variants.

:class:`~repro.core.warplda.WarpLDA` implements the MCEM algorithm of Sec. 4
(Alg. 2): delayed count updates, an O(1) Metropolis-Hastings kernel per token,
and the reordered document / word phases that keep the randomly accessed
memory per document (or word) down to O(K).

:mod:`repro.core.variants` contains the Fig. 7 ablation chain — LightLDA with
progressively more of WarpLDA's ingredients (delayed word counts, delayed
document counts, the simplified word proposal).
"""

from repro.core.warplda import (
    WarpLDA,
    WarpLDAConfig,
    doc_proposal_acceptance,
    word_proposal_acceptance,
)
from repro.core.variants import AblationVariant, DelayedUpdateLightLDA, make_ablation_suite

__all__ = [
    "AblationVariant",
    "DelayedUpdateLightLDA",
    "WarpLDA",
    "WarpLDAConfig",
    "doc_proposal_acceptance",
    "make_ablation_suite",
    "word_proposal_acceptance",
]
