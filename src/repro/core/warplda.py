"""WarpLDA: the MCEM, cache-efficient, O(1)-per-token LDA sampler (Sec. 4).

Algorithm summary (Alg. 2 of the paper)
---------------------------------------
WarpLDA keeps, per token, the current topic assignment ``z`` and ``M`` topic
proposals.  One iteration is two passes over the tokens:

* **Word phase** (tokens visited word-by-word).  For each word ``w``: compute
  ``c_w`` on the fly from the topic assignments of the word's tokens; run the
  MH chain that *accepts or rejects the doc proposals* drawn in the previous
  document phase, using the acceptance rate
  ``π_doc = min{1, (C_wt+β)(C_s+β̄) / ((C_ws+β)(C_t+β̄))}``; recompute ``c_w``
  from the updated assignments; then draw ``M`` fresh *word proposals*
  ``q_word(k) ∝ C_wk + β`` for every token of the word.
* **Document phase** (tokens visited document-by-document).  Symmetric: accept
  or reject the word proposals with
  ``π_word = min{1, (C_dt+α_t)(C_s+β̄) / ((C_ds+α_s)(C_t+β̄))}``, then draw
  ``M`` fresh *doc proposals* ``q_doc(k) ∝ C_dk + α_k``.

Counts are **delayed**: within a phase the counts used by the acceptance rates
are the ones computed at the start of the phase (the MCEM E-step keeps Θ and Φ
fixed), which is what makes the reordering legal.  No count matrix is ever
stored — only the per-word / per-document count vector of the row or column
currently being processed, plus the global K-vector ``c_k``.  This is exactly
the property that shrinks the randomly accessed memory per document to O(K).

Implementation notes
--------------------
* Two execution paths share the algorithm.  The default ``kernel="slab"``
  path runs each phase over the bucketed slab matrices of
  :mod:`repro.kernels` — whole groups of words/documents processed by single
  NumPy operations (see :mod:`repro.kernels.warp`).  Because the counts are
  delayed for the duration of a phase, the slab chain has identical per-row
  transition kernels to the scalar formulation; only the RNG consumption
  order differs.  ``kernel="scalar"`` keeps the original row-by-row loop
  (each word/document vectorised over its own tokens) as the correctness
  oracle.
* The doc proposal is drawn by *random positioning* (pick the assignment of a
  uniformly random token of the document) mixed with the prior α; the word
  proposal by random positioning mixed with the uniform distribution implied
  by the symmetric β, or optionally from a dense alias table
  (``word_proposal="alias"``), matching the two O(1) strategies of Sec. 4.3.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.corpus.corpus import Corpus
from repro.evaluation.convergence import ConvergenceTracker
from repro.evaluation.likelihood import log_joint_likelihood_from_assignments
from repro.kernels.buckets import corpus_buckets
from repro.kernels.warp import document_phase as slab_document_phase
from repro.kernels.warp import word_phase as slab_word_phase
from repro.obs import get_telemetry
from repro.samplers.base import resolve_hyperparameters, validate_hyperparameters
from repro.sampling.alias import AliasTable
from repro.sampling.rng import RngLike, ensure_rng, export_rng_state, restore_rng_state

__all__ = [
    "WarpLDA",
    "WarpLDAConfig",
    "doc_proposal_acceptance",
    "word_proposal_acceptance",
]


def doc_proposal_acceptance(
    word_count_current: np.ndarray,
    word_count_proposed: np.ndarray,
    topic_count_current: np.ndarray,
    topic_count_proposed: np.ndarray,
    beta: float,
    beta_sum: float,
) -> np.ndarray:
    """Acceptance rate π_doc of Eq. (7) for doc-proposal moves (vectorised).

    All count arguments are the *delayed* counts of the state (``current``,
    subscript ``k``) and the proposal (``proposed``, subscript ``k'``).
    """
    ratio = (
        (word_count_proposed + beta)
        * (topic_count_current + beta_sum)
        / ((word_count_current + beta) * (topic_count_proposed + beta_sum))
    )
    return np.minimum(1.0, ratio)


def word_proposal_acceptance(
    doc_count_current: np.ndarray,
    doc_count_proposed: np.ndarray,
    alpha_current: np.ndarray,
    alpha_proposed: np.ndarray,
    topic_count_current: np.ndarray,
    topic_count_proposed: np.ndarray,
    beta_sum: float,
) -> np.ndarray:
    """Acceptance rate π_word of Eq. (7) for word-proposal moves (vectorised)."""
    ratio = (
        (doc_count_proposed + alpha_proposed)
        * (topic_count_current + beta_sum)
        / ((doc_count_current + alpha_current) * (topic_count_proposed + beta_sum))
    )
    return np.minimum(1.0, ratio)


@dataclass(frozen=True)
class WarpLDAConfig:
    """Configuration of a WarpLDA run.

    Attributes
    ----------
    num_topics:
        Number of topics ``K``.
    num_mh_steps:
        The paper's ``M``: number of proposals stored per token and MH steps
        per phase.  The paper uses 1-4 for WarpLDA (Fig. 8).
    alpha:
        Symmetric scalar or length-K document Dirichlet parameter; ``None``
        resolves to 50/K.
    beta:
        Symmetric word Dirichlet parameter (0.01 in the paper; 0.001 for the
        1M-topic ClueWeb run).
    word_proposal:
        ``"mixture"`` (random positioning + uniform, the default) or
        ``"alias"`` (dense alias table per word).
    doc_proposal:
        ``"mixture"`` (random positioning + prior draw).  Kept as an explicit
        knob for the ablation benches.
    kernel:
        ``"slab"`` (the default: bucketed whole-bucket NumPy execution, see
        :mod:`repro.kernels.warp`), ``"jit"`` (the slab path with the MH
        inner chains compiled by numba when importable — bit-identical to
        ``"slab"``, silently falling back to it without numba; see
        :mod:`repro.kernels.jit`) or ``"scalar"`` (the legacy row-by-row
        loop, kept as the correctness oracle).
    threads:
        Worker threads for the slab/jit kernel phases (bucket chunks run
        concurrently on :mod:`repro.kernels.pool`).  ``None`` defers to the
        ``REPRO_THREADS`` environment variable (default 1).  The trajectory
        is bit-identical for every thread count.
    """

    num_topics: int
    num_mh_steps: int = 2
    alpha: Optional[Union[float, np.ndarray]] = None
    beta: float = 0.01
    word_proposal: str = "mixture"
    doc_proposal: str = "mixture"
    kernel: str = "slab"
    threads: Optional[int] = None

    def __post_init__(self) -> None:
        validate_hyperparameters(self.num_topics, self.alpha, self.beta)
        if self.num_mh_steps <= 0:
            raise ValueError(f"num_mh_steps must be positive, got {self.num_mh_steps}")
        if self.word_proposal not in ("mixture", "alias"):
            raise ValueError(
                f"word_proposal must be 'mixture' or 'alias', got {self.word_proposal!r}"
            )
        if self.doc_proposal not in ("mixture",):
            raise ValueError(
                f"doc_proposal must be 'mixture', got {self.doc_proposal!r}"
            )
        if self.kernel not in ("slab", "scalar", "jit"):
            raise ValueError(
                f"kernel must be 'slab', 'scalar' or 'jit', got {self.kernel!r}"
            )
        if self.threads is not None and self.threads <= 0:
            raise ValueError(f"threads must be positive, got {self.threads}")


class WarpLDA:
    """The WarpLDA sampler.

    Parameters
    ----------
    corpus:
        Corpus to train on.
    num_topics:
        Number of topics ``K`` (ignored if ``config`` is given).
    num_mh_steps:
        The paper's ``M`` (ignored if ``config`` is given).
    alpha, beta:
        Dirichlet hyper-parameters (see :class:`WarpLDAConfig`).
    word_proposal:
        Word-proposal strategy, ``"mixture"`` or ``"alias"``.
    kernel:
        Execution path: ``"slab"`` (default), ``"jit"`` or ``"scalar"``
        (see :class:`WarpLDAConfig`).
    threads:
        Worker threads for the slab/jit phases; ``None`` defers to
        ``REPRO_THREADS``.  Bit-identical results for every thread count.
    seed:
        Seed or generator controlling the full trajectory.
    config:
        A pre-built :class:`WarpLDAConfig`; overrides the individual keyword
        arguments.

    Examples
    --------
    >>> from repro.corpus import load_preset
    >>> corpus = load_preset("nytimes_like", scale=0.05, seed=0)
    >>> model = WarpLDA(corpus, num_topics=10, seed=0).fit(5)
    >>> model.phi().shape[0]
    10
    """

    name = "WarpLDA"

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int = 10,
        num_mh_steps: int = 2,
        alpha: Optional[Union[float, np.ndarray]] = None,
        beta: float = 0.01,
        word_proposal: str = "mixture",
        kernel: str = "slab",
        threads: Optional[int] = None,
        seed: RngLike = None,
        config: Optional[WarpLDAConfig] = None,
    ):
        if config is None:
            config = WarpLDAConfig(
                num_topics=num_topics,
                num_mh_steps=num_mh_steps,
                alpha=alpha,
                beta=beta,
                word_proposal=word_proposal,
                kernel=kernel,
                threads=threads,
            )
        else:
            warnings.warn(
                "WarpLDA(config=...) is deprecated; declare the model with "
                "repro.api.ModelSpec / repro.api.LDA, or use "
                "WarpLDA.from_config(corpus, config, seed=...)",
                DeprecationWarning,
                stacklevel=2,
            )
        self.config = config
        self.corpus = corpus
        self.num_topics = config.num_topics
        self.num_mh_steps = config.num_mh_steps
        self.threads = config.threads
        self.alpha, self.alpha_sum, self.beta, self.beta_sum = resolve_hyperparameters(
            config.num_topics, config.alpha, config.beta, corpus.vocabulary_size
        )
        self.rng = ensure_rng(seed)

        num_tokens = corpus.num_tokens
        self.assignments = self.rng.integers(
            self.num_topics, size=num_tokens
        ).astype(np.int64)
        # The proposal buffer is shared between phases: the word phase consumes
        # doc proposals and overwrites them with word proposals, and vice
        # versa.  Initially it holds uniform proposals (the first word phase's
        # acceptance test then just mixes the initial state, which only affects
        # the transient).
        self.proposals = self.rng.integers(
            self.num_topics, size=(self.num_mh_steps, num_tokens)
        ).astype(np.int64)
        self.topic_counts = np.bincount(self.assignments, minlength=self.num_topics)
        self.iterations_completed = 0

        self._alpha_is_symmetric = bool(np.allclose(self.alpha, self.alpha[0]))
        self._alpha_alias = None if self._alpha_is_symmetric else AliasTable(self.alpha)

        # Frozen counts contributed by *other* shards during a data-parallel
        # epoch (see repro.training); None when training single-process.
        self._external_word_topic: Optional[np.ndarray] = None
        self._external_topic_counts: Optional[np.ndarray] = None
        # Reused per-phase scratch: the delayed global counts as float64 (and
        # the cached float64 view of the external sums), so neither phase
        # re-allocates a K-vector per call.  Concurrent bucket tasks share
        # these arrays, so the kernels only ever receive non-writable views
        # (_stale_topic_counts) — a stray in-kernel store would raise instead
        # of silently corrupting a sibling task's reads.
        self._stale_topic_buffer = np.empty(self.num_topics, dtype=np.float64)
        self._external_topic_f64: Optional[np.ndarray] = None

    @classmethod
    def from_config(
        cls, corpus: Corpus, config: WarpLDAConfig, seed: RngLike = None
    ) -> "WarpLDA":
        """Build a sampler from a pre-validated :class:`WarpLDAConfig`.

        This is the lowering target of :class:`repro.api.ModelSpec` (and the
        replacement for the deprecated ``WarpLDA(config=...)`` spelling); the
        two produce bit-identical samplers for the same config and seed.
        """
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return cls(corpus, seed=seed, config=config)

    # ------------------------------------------------------------------ #
    # Training loop
    # ------------------------------------------------------------------ #
    def fit(
        self,
        num_iterations: int,
        tracker: Optional[ConvergenceTracker] = None,
        evaluate_every: int = 1,
    ) -> "WarpLDA":
        """Run ``num_iterations`` full iterations (word phase + doc phase)."""
        if num_iterations < 0:
            raise ValueError(f"num_iterations must be non-negative, got {num_iterations}")
        if evaluate_every <= 0:
            raise ValueError(f"evaluate_every must be positive, got {evaluate_every}")
        if tracker is not None:
            tracker.start()
        obs = get_telemetry()
        for _ in range(num_iterations):
            if obs.enabled:
                started = time.perf_counter()
                with obs.span(
                    "sweep", sampler=self.name, iteration=self.iterations_completed
                ):
                    self.run_iteration()
                elapsed = time.perf_counter() - started
                num_tokens = self.corpus.num_tokens
                obs.count("sampler.tokens_sampled", num_tokens)
                if elapsed > 0:
                    obs.record("sampler.tokens_per_sec", num_tokens / elapsed)
            else:
                self.run_iteration()
            if tracker is not None and self.iterations_completed % evaluate_every == 0:
                tracker.record(
                    iteration=self.iterations_completed,
                    log_likelihood=self.log_likelihood(),
                    tokens_processed=self.iterations_completed * self.corpus.num_tokens,
                )
        return self

    def run_iteration(self) -> None:
        """One full WarpLDA iteration: word phase, then document phase."""
        obs = get_telemetry()
        if obs.enabled:
            self._run_iteration_instrumented(obs)
        elif self.config.kernel == "scalar":
            self._word_phase()
            self._document_phase()
        else:
            self._word_phase_slab()
            self._document_phase_slab()
        self.iterations_completed += 1

    def _run_iteration_instrumented(self, obs) -> None:
        """The same iteration with per-phase spans and MH acceptance counts.

        The word phase accepts the *doc* proposals drawn by the previous
        document phase and vice versa (Eq. 7), so the counters are named for
        the proposal type being judged — the per-proposal-type acceptance
        rates of Fig. 8.  The accumulators never touch the RNG stream, so an
        instrumented run stays bit-identical to an un-instrumented one.
        """
        slab = self.config.kernel != "scalar"
        doc_proposal_stats = {"proposed": 0, "accepted": 0}
        word_proposal_stats = {"proposed": 0, "accepted": 0}
        with obs.span("word_phase", kernel=self.config.kernel):
            if slab:
                self._word_phase_slab(chain_stats=doc_proposal_stats)
            else:
                self._word_phase(chain_stats=doc_proposal_stats)
        with obs.span("doc_phase", kernel=self.config.kernel):
            if slab:
                self._document_phase_slab(chain_stats=word_proposal_stats)
            else:
                self._document_phase(chain_stats=word_proposal_stats)
        for proposal, stats in (
            ("doc_proposal", doc_proposal_stats),
            ("word_proposal", word_proposal_stats),
        ):
            obs.count(f"mh.{proposal}.proposed", stats["proposed"])
            obs.count(f"mh.{proposal}.accepted", stats["accepted"])
            if stats["proposed"]:
                obs.record(
                    f"mh.{proposal}.acceptance_rate",
                    stats["accepted"] / stats["proposed"],
                )

    def _stale_topic_counts(self) -> np.ndarray:
        """The phase-frozen global ``c_k`` as float64, in a reused buffer.

        External shard counts (data-parallel epochs) are added from the
        float64 view cached by :meth:`set_external_counts`.  Returns a
        **read-only view**: the buffer is shared by every concurrent bucket
        task of the phase, so any accidental in-kernel write must fail loudly
        rather than race.
        """
        np.copyto(self._stale_topic_buffer, self.topic_counts)
        if self._external_topic_f64 is not None:
            self._stale_topic_buffer += self._external_topic_f64
        view = self._stale_topic_buffer.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------ #
    # Data-parallel shard hooks (repro.training)
    # ------------------------------------------------------------------ #
    def set_external_counts(
        self, word_topic: np.ndarray, topic_counts: Optional[np.ndarray] = None
    ) -> None:
        """Install frozen word-topic counts contributed by other shards.

        During a data-parallel epoch every worker samples its shard against
        the cluster-wide counts frozen at the epoch barrier: the acceptance
        rates read ``c_w^local + c_w^external`` and ``c_k^local +
        c_k^external``, and the word proposal becomes an exact draw from
        ``q_word(k) ∝ C_wk^global + β`` via a per-word alias table.  Freezing
        the external contribution for a whole epoch is precisely the delayed
        count update that makes WarpLDA's MCEM reordering legal (Sec. 4.2) —
        only the delay grows from one phase to one epoch.
        """
        word_topic = np.ascontiguousarray(word_topic, dtype=np.int64)
        expected = (self.corpus.vocabulary_size, self.num_topics)
        if word_topic.shape != expected:
            raise ValueError(
                f"external word_topic must have shape {expected}, got "
                f"{word_topic.shape}"
            )
        if np.any(word_topic < 0):
            raise ValueError("external word-topic counts must be non-negative")
        if topic_counts is None:
            topic_counts = word_topic.sum(axis=0)
        topic_counts = np.asarray(topic_counts, dtype=np.int64)
        if topic_counts.shape != (self.num_topics,):
            raise ValueError(
                f"external topic_counts must have shape ({self.num_topics},), "
                f"got {topic_counts.shape}"
            )
        # Freeze private copies: the kernels read these from every concurrent
        # bucket task, so they must be immutable for the phase (and must not
        # alias an array the caller could keep mutating).
        self._external_word_topic = np.array(word_topic, dtype=np.int64)
        self._external_word_topic.flags.writeable = False
        self._external_topic_counts = topic_counts
        self._external_topic_f64 = topic_counts.astype(np.float64)
        self._external_topic_f64.flags.writeable = False

    def clear_external_counts(self) -> None:
        """Return to single-process semantics (no external shard counts)."""
        self._external_word_topic = None
        self._external_topic_counts = None
        self._external_topic_f64 = None

    def export_state(self) -> Dict[str, Any]:
        """Capture everything needed to continue this run bit-exactly.

        Includes the proposal buffer — the next word phase consumes the doc
        proposals drawn by the previous document phase, so dropping them
        would change the trajectory of a resumed run.
        """
        return {
            "assignments": self.assignments.copy(),
            "proposals": self.proposals.copy(),
            "rng_state": export_rng_state(self.rng),
            "iterations_completed": int(self.iterations_completed),
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        """Restore a state captured by :meth:`export_state`."""
        assignments = np.asarray(state["assignments"], dtype=np.int64)
        proposals = np.asarray(state["proposals"], dtype=np.int64)
        if assignments.shape != self.assignments.shape:
            raise ValueError(
                f"assignments must have shape {self.assignments.shape}, got "
                f"{assignments.shape}"
            )
        if proposals.shape != self.proposals.shape:
            raise ValueError(
                f"proposals must have shape {self.proposals.shape}, got "
                f"{proposals.shape}"
            )
        for name, topics in (("assignments", assignments), ("proposals", proposals)):
            if topics.size and (topics.min() < 0 or topics.max() >= self.num_topics):
                raise ValueError(f"{name} contain out-of-range topics")
        self.assignments[:] = assignments
        self.proposals[:] = proposals
        self.topic_counts = np.bincount(self.assignments, minlength=self.num_topics)
        self.rng = restore_rng_state(state["rng_state"])
        self.iterations_completed = int(state["iterations_completed"])

    # ------------------------------------------------------------------ #
    # The two phases
    # ------------------------------------------------------------------ #
    def _word_phase(self, chain_stats: Optional[dict] = None) -> None:
        """Visit tokens word-by-word: accept doc proposals, draw word proposals."""
        corpus = self.corpus
        assignments = self.assignments
        proposals = self.proposals
        beta = self.beta
        beta_sum = self.beta_sum
        num_topics = self.num_topics
        rng = self.rng
        external_word_topic = self._external_word_topic
        # Delayed global counts: fixed for the duration of the phase.  During
        # a data-parallel epoch the frozen contribution of the other shards is
        # added on top of the local counts.
        stale_topic_counts = self._stale_topic_counts()

        word_offsets = corpus.word_offsets
        word_order = corpus.word_order

        for word in range(corpus.vocabulary_size):
            start, stop = word_offsets[word], word_offsets[word + 1]
            if start == stop:
                continue
            token_indices = word_order[start:stop]
            length = int(stop - start)

            # c_w computed on the fly (delayed for the acceptance test).
            current = assignments[token_indices]
            word_counts = np.bincount(current, minlength=num_topics).astype(np.float64)
            if external_word_topic is not None:
                word_counts += external_word_topic[word]

            # Accept/reject the M doc proposals drawn in the previous phase.
            uniforms = rng.random((self.num_mh_steps, length))
            for step in range(self.num_mh_steps):
                proposed = proposals[step, token_indices]
                acceptance = doc_proposal_acceptance(
                    word_counts[current],
                    word_counts[proposed],
                    stale_topic_counts[current],
                    stale_topic_counts[proposed],
                    beta,
                    beta_sum,
                )
                accept = uniforms[step] < acceptance
                if chain_stats is not None:
                    chain_stats["proposed"] += length
                    chain_stats["accepted"] += int(np.count_nonzero(accept))
                current = np.where(accept, proposed, current)
            assignments[token_indices] = current

            # Fresh c_w for the proposal distribution (Alg. 2 recomputes it
            # after the chain, before building the sampler for q_word).
            self._draw_word_proposals(word, token_indices, current, length, rng)

        self.topic_counts = np.bincount(assignments, minlength=num_topics)

    def _document_phase(self, chain_stats: Optional[dict] = None) -> None:
        """Visit tokens document-by-document: accept word proposals, draw doc proposals."""
        corpus = self.corpus
        assignments = self.assignments
        proposals = self.proposals
        alpha = self.alpha
        beta_sum = self.beta_sum
        num_topics = self.num_topics
        rng = self.rng
        stale_topic_counts = self._stale_topic_counts()

        doc_offsets = corpus.doc_offsets

        for doc in range(corpus.num_documents):
            start, stop = doc_offsets[doc], doc_offsets[doc + 1]
            if start == stop:
                continue
            token_slice = slice(int(start), int(stop))
            length = int(stop - start)

            current = assignments[token_slice]
            doc_counts = np.bincount(current, minlength=num_topics).astype(np.float64)

            uniforms = rng.random((self.num_mh_steps, length))
            for step in range(self.num_mh_steps):
                proposed = proposals[step, token_slice]
                acceptance = word_proposal_acceptance(
                    doc_counts[current],
                    doc_counts[proposed],
                    alpha[current],
                    alpha[proposed],
                    stale_topic_counts[current],
                    stale_topic_counts[proposed],
                    beta_sum,
                )
                accept = uniforms[step] < acceptance
                if chain_stats is not None:
                    chain_stats["proposed"] += length
                    chain_stats["accepted"] += int(np.count_nonzero(accept))
                current = np.where(accept, proposed, current)
            assignments[token_slice] = current

            self._draw_doc_proposals(token_slice, current, length, rng)

        self.topic_counts = np.bincount(assignments, minlength=num_topics)

    # ------------------------------------------------------------------ #
    # Slab-kernel phases (repro.kernels.warp)
    # ------------------------------------------------------------------ #
    def _word_phase_slab(self, chain_stats: Optional[dict] = None) -> None:
        """Word phase over bucketed word slabs (kernel path)."""
        slab_word_phase(
            self.assignments,
            self.proposals,
            corpus_buckets(self.corpus, "word"),
            self._stale_topic_counts(),
            self.num_topics,
            self.num_mh_steps,
            self.beta,
            self.beta_sum,
            self.rng,
            exact_word_proposal=self.config.word_proposal == "alias",
            external_word_topic=self._external_word_topic,
            chain_stats=chain_stats,
            threads=self.threads,
            use_jit=self.config.kernel == "jit",
        )
        self.topic_counts = np.bincount(self.assignments, minlength=self.num_topics)

    def _document_phase_slab(self, chain_stats: Optional[dict] = None) -> None:
        """Document phase over bucketed document slabs (kernel path)."""
        slab_document_phase(
            self.assignments,
            self.proposals,
            corpus_buckets(self.corpus, "doc"),
            self._stale_topic_counts(),
            self.alpha,
            self.alpha_sum,
            self.num_topics,
            self.num_mh_steps,
            self.beta_sum,
            self.rng,
            alpha_alias=self._alpha_alias,
            chain_stats=chain_stats,
            threads=self.threads,
            use_jit=self.config.kernel == "jit",
        )
        self.topic_counts = np.bincount(self.assignments, minlength=self.num_topics)

    # ------------------------------------------------------------------ #
    # Proposal draws (both O(1) per draw)
    # ------------------------------------------------------------------ #
    def _draw_word_proposals(
        self,
        word: int,
        token_indices: np.ndarray,
        current: np.ndarray,
        length: int,
        rng: np.random.Generator,
    ) -> None:
        """Draw M samples per token from ``q_word(k) ∝ C_wk + β``."""
        if length == 0:
            return
        if self.config.word_proposal == "alias" or self._external_word_topic is not None:
            word_counts = np.bincount(current, minlength=self.num_topics).astype(
                np.float64
            )
            if self._external_word_topic is not None:
                # Exact global proposal: random positioning cannot reach the
                # other shards' tokens, so fall back to a per-word alias table
                # over the combined counts (the Sec. 4.3 alias strategy).
                word_counts += self._external_word_topic[word]
            table = AliasTable(word_counts + self.beta)
            for step in range(self.num_mh_steps):
                self.proposals[step, token_indices] = table.draw_many(length, rng)
            return

        # Mixture of ``C_wk`` (random positioning over the word's tokens) and
        # the uniform distribution implied by the symmetric β.  The smoothing
        # mass of ``q_word(k) ∝ C_wk + β`` summed over the K topics is K·β
        # (not β̄ = V·β, which normalises the word axis): using β̄ here would
        # overweight the uniform component by V/K and silently mismatch the
        # acceptance rates, which assume the proposal is exactly C_wk + β.
        word_weight = length / (length + self.num_topics * self.beta)
        for step in range(self.num_mh_steps):
            use_counts = rng.random(length) < word_weight
            positions = rng.integers(length, size=length)
            uniform_topics = rng.integers(self.num_topics, size=length)
            self.proposals[step, token_indices] = np.where(
                use_counts, current[positions], uniform_topics
            )

    def _draw_doc_proposals(
        self,
        token_slice: slice,
        current: np.ndarray,
        length: int,
        rng: np.random.Generator,
    ) -> None:
        """Draw M samples per token from ``q_doc(k) ∝ C_dk + α_k``.

        ``length`` is always at least one here (zero-token documents are
        skipped by the document phase), so the random-positioning draw
        ``rng.integers(length)`` is well defined even for single-token
        documents — the degenerate "pick a uniformly random token" case just
        always picks the only token.
        """
        if length == 0:
            return
        doc_weight = length / (length + self.alpha_sum)
        for step in range(self.num_mh_steps):
            use_counts = rng.random(length) < doc_weight
            positions = rng.integers(length, size=length)
            if self._alpha_is_symmetric:
                prior_topics = rng.integers(self.num_topics, size=length)
            else:
                prior_topics = self._alpha_alias.draw_many(length, rng)
            self.proposals[step, token_slice] = np.where(
                use_counts, current[positions], prior_topics
            )

    # ------------------------------------------------------------------ #
    # Model access (same interface as the baseline samplers)
    # ------------------------------------------------------------------ #
    def doc_topic_counts(self) -> np.ndarray:
        """Materialise the ``D x K`` count matrix (for evaluation only)."""
        counts = np.zeros((self.corpus.num_documents, self.num_topics), dtype=np.int64)
        np.add.at(counts, (self.corpus.token_documents, self.assignments), 1)
        return counts

    def word_topic_counts(self) -> np.ndarray:
        """Materialise the ``V x K`` count matrix (for evaluation only)."""
        counts = np.zeros((self.corpus.vocabulary_size, self.num_topics), dtype=np.int64)
        np.add.at(counts, (self.corpus.token_words, self.assignments), 1)
        return counts

    def log_likelihood(self) -> float:
        """Log joint likelihood ``log p(W, Z | α, β)`` of the current state."""
        return log_joint_likelihood_from_assignments(
            self.corpus.token_documents,
            self.corpus.token_words,
            self.assignments,
            self.corpus.num_documents,
            self.corpus.vocabulary_size,
            self.num_topics,
            self.alpha,
            self.beta,
        )

    def theta(self) -> np.ndarray:
        """MAP estimate of the document-topic proportions Θ (Eq. 4)."""
        counts = self.doc_topic_counts().astype(np.float64) + self.alpha
        return counts / counts.sum(axis=1, keepdims=True)

    def phi(self) -> np.ndarray:
        """MAP estimate of the topic-word distributions Φ (K x V, Eq. 4)."""
        counts = self.word_topic_counts().T.astype(np.float64) + self.beta
        return counts / counts.sum(axis=1, keepdims=True)

    def export_snapshot(self):
        """Freeze the current model into a :class:`~repro.serving.ModelSnapshot`.

        Same hook as :meth:`repro.samplers.base.LDASampler.export_snapshot`,
        so the serving layer treats all samplers uniformly.
        """
        # Imported here so the training layer has no hard dependency on serving.
        from repro.serving.snapshot import ModelSnapshot

        return ModelSnapshot.from_model(
            self, extra_metadata={"num_mh_steps": self.num_mh_steps}
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WarpLDA(K={self.num_topics}, M={self.num_mh_steps}, "
            f"D={self.corpus.num_documents}, iterations={self.iterations_completed})"
        )
