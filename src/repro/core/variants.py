"""Ablation variants bridging LightLDA and WarpLDA (Fig. 7 of the paper).

The paper isolates the two ingredients that differ between LightLDA's CGS
solution and WarpLDA's MCEM solution:

* **delayed count updates** — ``C_w`` (and ``c_k``) updated once per iteration
  instead of instantly (``+DW``), then ``C_d`` as well (``+DD``);
* **the simplified word proposal** — ``q_word ∝ C_wk + β`` instead of
  LightLDA's ``q_word ∝ (C_wk + β)/(C_k + β̄)`` (``+SP``).

:class:`DelayedUpdateLightLDA` implements a LightLDA-style per-token sampler
whose count freshness and word proposal are controlled by flags, and
:func:`make_ablation_suite` builds the five configurations plotted in Fig. 7
(the fifth being WarpLDA itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.warplda import WarpLDA
from repro.corpus.corpus import Corpus
from repro.samplers.base import LDASampler
from repro.sampling.alias import AliasTable
from repro.sampling.rng import RngLike

__all__ = ["AblationVariant", "DelayedUpdateLightLDA", "make_ablation_suite"]


@dataclass(frozen=True)
class AblationVariant:
    """One point on the LightLDA → WarpLDA ablation path."""

    label: str
    delay_word_counts: bool
    delay_doc_counts: bool
    simple_word_proposal: bool
    use_warplda: bool = False


class DelayedUpdateLightLDA(LDASampler):
    """LightLDA-style per-token MH sampler with configurable count freshness.

    Parameters
    ----------
    delay_word_counts:
        Read ``C_w`` and ``c_k`` from an iteration-start snapshot (``+DW``).
    delay_doc_counts:
        Read ``C_d`` from an iteration-start snapshot (``+DD``).
    simple_word_proposal:
        Use WarpLDA's ``q_word ∝ C_wk + β`` instead of LightLDA's
        ``q_word ∝ (C_wk + β)/(C_k + β̄)`` (``+SP``).
    num_mh_steps:
        Number of doc+word proposal cycles per token (Fig. 7 uses 1).
    """

    name = "DelayedUpdateLightLDA"

    def __init__(
        self,
        *args,
        delay_word_counts: bool = False,
        delay_doc_counts: bool = False,
        simple_word_proposal: bool = False,
        num_mh_steps: int = 1,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if num_mh_steps <= 0:
            raise ValueError(f"num_mh_steps must be positive, got {num_mh_steps}")
        self.delay_word_counts = bool(delay_word_counts)
        self.delay_doc_counts = bool(delay_doc_counts)
        self.simple_word_proposal = bool(simple_word_proposal)
        self.num_mh_steps = int(num_mh_steps)
        self._alpha_alias = AliasTable(self.alpha)
        self.name = self._label()

    def _label(self) -> str:
        label = "LightLDA"
        if self.delay_word_counts:
            label += "+DW"
        if self.delay_doc_counts:
            label += "+DD"
        if self.simple_word_proposal:
            label += "+SP"
        return label

    # ------------------------------------------------------------------ #
    def _word_proposal_weights(self, word: int, word_topic_read, topic_read) -> np.ndarray:
        if self.simple_word_proposal:
            return word_topic_read[word] + self.beta
        return (word_topic_read[word] + self.beta) / (topic_read + self.beta_sum)

    def _sample_iteration(self) -> None:
        state = self.state
        rng = self.rng
        alpha = self.alpha
        beta = self.beta
        beta_sum = self.beta_sum

        # Snapshots taken at the start of the iteration; reads go to the
        # snapshot when the corresponding counts are delayed, to the live
        # matrices otherwise.
        word_topic_read = (
            state.word_topic.copy() if self.delay_word_counts else state.word_topic
        )
        topic_read = (
            state.topic_counts.copy() if self.delay_word_counts else state.topic_counts
        )
        doc_topic_read = (
            state.doc_topic.copy() if self.delay_doc_counts else state.doc_topic
        )
        # With delayed word counts the proposal weights are constant for the
        # whole iteration, so per-word alias tables can be cached safely.
        word_tables: Dict[int, AliasTable] = {}

        def word_proposal_table(word: int) -> AliasTable:
            table = word_tables.get(word)
            if table is None:
                table = AliasTable(
                    self._word_proposal_weights(word, word_topic_read, topic_read)
                )
                word_tables[word] = table
            return table

        for doc_index in range(self.corpus.num_documents):
            token_indices = self.corpus.document_token_indices(doc_index)
            doc_length = int(token_indices.size)
            if doc_length == 0:
                continue
            doc_counts_live = state.doc_topic[doc_index]
            doc_counts_read = doc_topic_read[doc_index]

            for token_index in token_indices:
                word = int(self.corpus.token_words[token_index])
                current = int(state.assignments[token_index])

                for step in range(2 * self.num_mh_steps):
                    use_doc_proposal = step % 2 == 0
                    if use_doc_proposal:
                        if rng.random() * (doc_length + self.alpha_sum) < doc_length:
                            position = int(rng.integers(doc_length))
                            candidate = int(
                                state.assignments[token_indices[position]]
                            )
                        else:
                            candidate = self._alpha_alias.draw(rng)
                    else:
                        if not self.delay_word_counts:
                            # Fresh proposal weights: cached tables would be
                            # stale, rebuild every time (LightLDA handles this
                            # with a staleness budget; exact freshness is fine
                            # for the ablation).
                            candidate = int(
                                AliasTable(
                                    self._word_proposal_weights(
                                        word, word_topic_read, topic_read
                                    )
                                ).draw(rng)
                            )
                        else:
                            candidate = int(word_proposal_table(word).draw(rng))
                    if candidate == current:
                        continue

                    # Target densities.  Live reads exclude the current token
                    # (CGS ¬dn); delayed reads use the snapshot as is (MCEM).
                    doc_current = doc_counts_read[current] - (
                        0 if self.delay_doc_counts else 1
                    )
                    doc_candidate = doc_counts_read[candidate]
                    word_current = word_topic_read[word, current] - (
                        0 if self.delay_word_counts else 1
                    )
                    word_candidate = word_topic_read[word, candidate]
                    topic_current = topic_read[current] - (
                        0 if self.delay_word_counts else 1
                    )
                    topic_candidate = topic_read[candidate]

                    target_ratio = (
                        (doc_candidate + alpha[candidate])
                        * (word_candidate + beta)
                        * (topic_current + beta_sum)
                    ) / (
                        (doc_current + alpha[current])
                        * (word_current + beta)
                        * (topic_candidate + beta_sum)
                    )
                    if use_doc_proposal:
                        proposal_ratio = (doc_counts_read[current] + alpha[current]) / (
                            doc_counts_read[candidate] + alpha[candidate]
                        )
                    else:
                        weights = self._word_proposal_weights(
                            word, word_topic_read, topic_read
                        )
                        proposal_ratio = float(weights[current]) / max(
                            float(weights[candidate]), 1e-300
                        )

                    acceptance = min(1.0, target_ratio * proposal_ratio)
                    if rng.random() < acceptance:
                        # Live counts always track the assignments instantly;
                        # delaying only affects what the *reads* see.
                        doc_counts_live[current] -= 1
                        state.word_topic[word, current] -= 1
                        state.topic_counts[current] -= 1
                        doc_counts_live[candidate] += 1
                        state.word_topic[word, candidate] += 1
                        state.topic_counts[candidate] += 1
                        state.assignments[token_index] = candidate
                        current = candidate


#: The five configurations of Fig. 7, in the paper's order.
ABLATION_VARIANTS = (
    AblationVariant("LightLDA", False, False, False),
    AblationVariant("LightLDA+DW", True, False, False),
    AblationVariant("LightLDA+DW+DD", True, True, False),
    AblationVariant("LightLDA+DW+DD+SP", True, True, True),
    AblationVariant("WarpLDA", True, True, True, use_warplda=True),
)


def make_ablation_suite(
    corpus: Corpus,
    num_topics: int,
    alpha: Optional[float] = None,
    beta: float = 0.01,
    num_mh_steps: int = 1,
    seed: RngLike = 0,
) -> Dict[str, Callable[[], object]]:
    """Return ``{label: factory}`` for the five Fig. 7 configurations.

    Each factory builds a fresh sampler so the configurations start from
    independent (but seed-controlled) initial states.
    """
    suite: Dict[str, Callable[[], object]] = {}
    for variant in ABLATION_VARIANTS:
        if variant.use_warplda:
            suite[variant.label] = (
                lambda v=variant: WarpLDA(
                    corpus,
                    num_topics=num_topics,
                    num_mh_steps=num_mh_steps,
                    alpha=alpha,
                    beta=beta,
                    seed=seed,
                )
            )
        else:
            suite[variant.label] = (
                lambda v=variant: DelayedUpdateLightLDA(
                    corpus,
                    num_topics,
                    alpha=alpha,
                    beta=beta,
                    seed=seed,
                    delay_word_counts=v.delay_word_counts,
                    delay_doc_counts=v.delay_doc_counts,
                    simple_word_proposal=v.simple_word_proposal,
                    num_mh_steps=num_mh_steps,
                )
            )
    return suite
