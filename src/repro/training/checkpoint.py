"""Resumable training checkpoints built on the serving snapshot format.

A checkpoint directory written by :meth:`Checkpoint.save` contains

* ``snapshot.npz`` / ``snapshot.npz.json`` — a full
  :class:`~repro.serving.snapshot.ModelSnapshot` of the merged model at the
  barrier, so a mid-training checkpoint is *directly servable* (point an
  :class:`~repro.serving.InferenceEngine` at it, no training code needed);
* ``state.npz`` — the numeric worker state: per-shard topic assignments (and,
  for WarpLDA, the proposal buffers) concatenated in corpus token order, plus
  the shard boundaries;
* ``checkpoint.json`` — everything else: format version, the
  :class:`~repro.training.parallel.TrainerConfig`, per-worker RNG states and
  iteration counters, the epoch counter, and a corpus fingerprint guarding
  against resuming on the wrong corpus.

Resume (:meth:`Checkpoint.restore`) is **bit-exact**: the restored trainer
continues the exact random streams and produces the same φ/θ as an
uninterrupted run, which the determinism test suite checks.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.corpus.corpus import Corpus
from repro.serving.snapshot import ModelSnapshot
from repro.training.parallel import ParallelTrainer, TrainerConfig

__all__ = ["Checkpoint", "corpus_fingerprint"]

#: On-disk checkpoint format version.
CHECKPOINT_FORMAT_VERSION = 1

_SNAPSHOT_FILE = "snapshot.npz"
_STATE_FILE = "state.npz"
_META_FILE = "checkpoint.json"


def corpus_fingerprint(corpus: Corpus) -> Dict[str, int]:
    """A cheap identity check for "is this the corpus that run trained on?"."""
    token_words = corpus.token_words
    return {
        "num_documents": int(corpus.num_documents),
        "num_tokens": int(corpus.num_tokens),
        "vocabulary_size": int(corpus.vocabulary_size),
        "token_checksum": int(token_words.sum()) if token_words.size else 0,
    }


class Checkpoint:
    """An in-memory checkpoint: servable snapshot + resumable trainer state.

    Build one from a live trainer with :meth:`capture`, persist it with
    :meth:`save`, read it back with :meth:`load`, and turn it back into a
    running trainer with :meth:`restore`.
    """

    def __init__(
        self,
        snapshot: ModelSnapshot,
        config: TrainerConfig,
        num_workers: int,
        boundaries: np.ndarray,
        worker_states: List[Dict[str, Any]],
        epochs_completed: int,
        fingerprint: Dict[str, int],
    ) -> None:
        if num_workers != len(worker_states):
            raise ValueError(
                f"{num_workers} workers but {len(worker_states)} worker states"
            )
        self.snapshot = snapshot
        self.config = config
        self.num_workers = int(num_workers)
        self.boundaries = np.asarray(boundaries, dtype=np.int64)
        self.worker_states = worker_states
        self.epochs_completed = int(epochs_completed)
        self.fingerprint = dict(fingerprint)
        #: Directory this checkpoint was loaded from (resume provenance).
        self.source_path: Optional[Path] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def capture(cls, trainer: ParallelTrainer) -> "Checkpoint":
        """Freeze a live trainer at the current epoch barrier."""
        snapshot = trainer.export_snapshot(
            extra_metadata={"checkpoint_epoch": trainer.epochs_completed}
        )
        return cls(
            snapshot=snapshot,
            config=trainer.config,
            num_workers=trainer.num_workers,
            boundaries=trainer.boundaries,
            worker_states=trainer.export_worker_states(),
            epochs_completed=trainer.epochs_completed,
            fingerprint=corpus_fingerprint(trainer.corpus),
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: Union[str, Path]) -> Path:
        """Write the checkpoint into ``directory`` (created if missing).

        The write is crash-safe: everything lands in a temporary sibling
        directory first and is swapped in with renames, so ``directory``
        only ever contains a *complete* checkpoint — a process killed
        mid-save can cost at most the checkpoint being written, never the
        previous one (briefly preserved as ``<directory>.bak`` during the
        swap).
        """
        directory = Path(directory)
        directory.parent.mkdir(parents=True, exist_ok=True)
        staging = directory.with_name(f"{directory.name}.tmp-{os.getpid()}")
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir()
        try:
            self._write_contents(staging)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        backup = directory.with_name(directory.name + ".bak")
        if directory.exists():
            if backup.exists():
                shutil.rmtree(backup)
            os.replace(directory, backup)
        os.replace(staging, directory)
        shutil.rmtree(backup, ignore_errors=True)
        return directory

    def _write_contents(self, directory: Path) -> None:
        """Write the three checkpoint files into an (empty) directory."""
        self.snapshot.save(directory / _SNAPSHOT_FILE)

        arrays: Dict[str, np.ndarray] = {"boundaries": self.boundaries}
        rng_states = []
        iterations = []
        has_proposals = []
        for index, state in enumerate(self.worker_states):
            arrays[f"assignments_{index}"] = np.asarray(
                state["assignments"], dtype=np.int64
            )
            if "proposals" in state:
                arrays[f"proposals_{index}"] = np.asarray(
                    state["proposals"], dtype=np.int64
                )
            has_proposals.append("proposals" in state)
            rng_states.append(state["rng_state"])
            iterations.append(int(state["iterations_completed"]))
        np.savez(directory / _STATE_FILE, **arrays)

        meta = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "config": self.config.to_dict(),
            "num_workers": self.num_workers,
            "epochs_completed": self.epochs_completed,
            "fingerprint": self.fingerprint,
            "rng_states": rng_states,
            "iterations_completed": iterations,
            "has_proposals": has_proposals,
        }
        (directory / _META_FILE).write_text(
            json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
        )

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "Checkpoint":
        """Read a checkpoint previously written by :meth:`save`.

        If the directory is missing but a ``<directory>.bak`` exists — the
        save was killed between its two renames — the backup is loaded
        instead, so the crash window of :meth:`save` never loses the last
        complete checkpoint.
        """
        directory = Path(directory)
        meta_path = directory / _META_FILE
        if not meta_path.exists():
            backup = directory.with_name(directory.name + ".bak")
            if (backup / _META_FILE).exists():
                directory = backup
                meta_path = backup / _META_FILE
            else:
                raise FileNotFoundError(f"no checkpoint metadata at {meta_path}")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        version = meta.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format version {version!r} "
                f"(expected {CHECKPOINT_FORMAT_VERSION})"
            )
        snapshot = ModelSnapshot.load(directory / _SNAPSHOT_FILE)
        num_workers = int(meta["num_workers"])
        worker_states: List[Dict[str, Any]] = []
        with np.load(directory / _STATE_FILE) as arrays:
            boundaries = arrays["boundaries"]
            for index in range(num_workers):
                state: Dict[str, Any] = {
                    "assignments": arrays[f"assignments_{index}"],
                    "rng_state": meta["rng_states"][index],
                    "iterations_completed": meta["iterations_completed"][index],
                }
                if meta["has_proposals"][index]:
                    state["proposals"] = arrays[f"proposals_{index}"]
                worker_states.append(state)
        checkpoint = cls(
            snapshot=snapshot,
            config=TrainerConfig.from_dict(meta["config"]),
            num_workers=num_workers,
            boundaries=boundaries,
            worker_states=worker_states,
            epochs_completed=int(meta["epochs_completed"]),
            fingerprint=dict(meta["fingerprint"]),
        )
        checkpoint.source_path = directory
        return checkpoint

    # ------------------------------------------------------------------ #
    def restore(
        self,
        corpus: Corpus,
        backend: str = "process",
        seed: Optional[int] = 0,
    ) -> ParallelTrainer:
        """Rebuild a running trainer from this checkpoint, bit-exactly.

        ``seed`` only feeds the throwaway initial assignment drawn during
        construction; every worker's real state (assignments, proposal
        buffers, RNG streams, iteration counters) is then overwritten from
        the checkpoint.
        """
        observed = corpus_fingerprint(corpus)
        if observed != self.fingerprint:
            raise ValueError(
                f"corpus does not match the checkpoint: expected "
                f"{self.fingerprint}, got {observed}"
            )
        trainer = ParallelTrainer.from_config(
            corpus,
            self.config,
            num_workers=self.num_workers,
            seed=seed,
            backend=backend,
        )
        try:
            if not np.array_equal(trainer.boundaries, self.boundaries):
                raise ValueError(
                    "shard boundaries changed between save and restore; "
                    "the partitioning code is not the version that wrote this "
                    "checkpoint"
                )
            trainer.import_worker_states(self.worker_states)
        except BaseException:
            trainer.close()
            raise
        trainer.epochs_completed = self.epochs_completed
        if self.source_path is not None:
            trainer.provenance["resumed_from"] = str(self.source_path)
        trainer.provenance["resumed_at_epoch"] = self.epochs_completed
        return trainer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Checkpoint(sampler={self.config.sampler!r}, "
            f"workers={self.num_workers}, epoch={self.epochs_completed})"
        )
