"""Data-parallel LDA training across ``multiprocessing`` workers.

The execution model is the synchronous variant of the paper's Sec. 5 design,
specialised to document sharding:

1. the corpus is cut into ``num_workers`` contiguous document ranges with
   roughly equal token counts (:func:`repro.distributed.partition.contiguous_shards`),
   each a cheap :meth:`~repro.corpus.corpus.Corpus.slice` view;
2. every worker owns one shard and a sampler seeded from its own
   :func:`~repro.sampling.rng.spawn_rngs` stream;
3. each **epoch**, the master broadcasts the global word-topic counts; every
   worker samples its shard against those counts *frozen* (its own documents'
   counts stay live and exact — documents are disjoint across shards) and
   sends back its shard's count contribution; the master merges contributions
   at the barrier into the next global state.

For WarpLDA the frozen-counts epoch is exactly the paper's delayed count
update with the delay stretched from one phase to one epoch, so the parallel
update has the same MCEM justification as the serial sampler.  For the
collapsed-Gibbs baselines it is the standard AD-LDA approximation.

Workers are long-lived processes connected by pipes; only count matrices
(V x K int64) cross the boundary per epoch, never the corpus.  A fully
deterministic ``backend="inline"`` runs the same protocol in-process — the
two backends produce bit-identical models for the same seed, which the test
suite checks.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from types import TracebackType
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.warplda import WarpLDA
from repro.corpus.corpus import Corpus
from repro.distributed.partition import contiguous_shards
from repro.evaluation.convergence import ConvergenceTracker
from repro.evaluation.likelihood import log_joint_likelihood_from_assignments
from repro.obs import Telemetry, get_telemetry, use_telemetry
from repro.samplers.base import (
    LDASampler,
    resolve_hyperparameters,
    resolve_kernel,
    validate_hyperparameters,
)
from repro.samplers.lightlda import LightLDASampler
from repro.samplers.registry import SAMPLER_REGISTRY
from repro.sampling.rng import RngLike, spawn_rngs

if TYPE_CHECKING:  # serving imports stay lazy at runtime (PR 5 guarantee)
    from multiprocessing.connection import Connection

    from repro.serving.snapshot import ModelSnapshot

__all__ = ["ParallelTrainer", "TrainerConfig", "ShardRunner", "SAMPLER_REGISTRY"]

BACKENDS = ("process", "inline")


@dataclass(frozen=True)
class TrainerConfig:
    """Sampler configuration shared by every shard.

    Attributes
    ----------
    sampler:
        Key into :data:`SAMPLER_REGISTRY` (``"warplda"``, ``"cgs"``, ...).
    num_topics:
        Number of topics ``K``.
    alpha:
        Symmetric document Dirichlet parameter; ``None`` resolves to 50/K.
    beta:
        Symmetric word Dirichlet parameter.
    num_mh_steps:
        Proposals per token per phase (WarpLDA/LightLDA only).
    iterations_per_epoch:
        Full sweeps every worker runs between two merge barriers.  1 keeps
        the external counts at most one iteration stale (the serial sampler's
        own delay); larger values trade staleness for fewer barriers.
    kernel:
        Execution path for every shard's sampler: ``"slab"`` (the vectorised
        kernels of :mod:`repro.kernels`, the default), ``"jit"`` (WarpLDA's
        compiled MH chains when numba is importable) or ``"scalar"`` (the
        legacy per-row loops).  Samplers without the requested path degrade
        along ``jit -> slab -> scalar`` automatically
        (:func:`repro.samplers.base.resolve_kernel`).
    threads:
        Worker threads for each shard's slab kernels (``None`` defers to
        ``REPRO_THREADS``).  Thread count never changes the trajectory.
    """

    sampler: str = "warplda"
    num_topics: int = 10
    alpha: Optional[float] = None
    beta: float = 0.01
    num_mh_steps: int = 2
    iterations_per_epoch: int = 1
    kernel: str = "slab"
    threads: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sampler not in SAMPLER_REGISTRY:
            raise ValueError(
                f"unknown sampler {self.sampler!r}; choose from "
                f"{sorted(SAMPLER_REGISTRY)}"
            )
        if self.alpha is not None and not isinstance(self.alpha, (int, float)):
            # The config is JSON-serialised into checkpoint sidecars; a
            # length-K alpha vector would train fine and then crash the save.
            raise ValueError(
                f"alpha must be a scalar or None, got {type(self.alpha).__name__}"
            )
        validate_hyperparameters(self.num_topics, self.alpha, self.beta)
        if self.num_mh_steps <= 0:
            raise ValueError(f"num_mh_steps must be positive, got {self.num_mh_steps}")
        if self.iterations_per_epoch <= 0:
            raise ValueError(
                f"iterations_per_epoch must be positive, got {self.iterations_per_epoch}"
            )
        if self.kernel not in ("slab", "scalar", "jit"):
            raise ValueError(
                f"kernel must be 'slab', 'scalar' or 'jit', got {self.kernel!r}"
            )
        if self.threads is not None and self.threads <= 0:
            raise ValueError(f"threads must be positive, got {self.threads}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (checkpoint sidecars)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrainerConfig":
        """Inverse of :meth:`to_dict`.

        Checkpoints written before the kernel layer existed carry no
        ``kernel`` key; they must resume on the scalar path they were
        trained with (the slab default would silently change the RNG
        trajectory of a bit-exact resume).
        """
        if "kernel" not in data:
            data = {**data, "kernel": "scalar"}
        return cls(**data)


class ShardRunner:
    """One worker's sampler over one document shard.

    The same object runs inside a worker process (``backend="process"``) or
    directly in the master (``backend="inline"``); the trainer only speaks
    the four-verb protocol below, so the backends are interchangeable.
    """

    def __init__(
        self,
        shard: Corpus,
        config: TrainerConfig,
        rng: np.random.Generator,
        index: int = 0,
    ) -> None:
        self.config = config
        self.index = int(index)
        sampler_cls = SAMPLER_REGISTRY[config.sampler]
        if sampler_cls is WarpLDA:
            self.sampler: Any = WarpLDA(
                shard,
                num_topics=config.num_topics,
                num_mh_steps=config.num_mh_steps,
                alpha=config.alpha,
                beta=config.beta,
                kernel=config.kernel,
                threads=config.threads,
                seed=rng,
            )
        else:
            # Samplers without the requested path degrade jit -> slab -> scalar.
            kernel = resolve_kernel(sampler_cls, config.kernel)
            kwargs: Dict[str, Any] = {
                "alpha": config.alpha,
                "beta": config.beta,
                "seed": rng,
                "kernel": kernel,
                "threads": config.threads,
            }
            if sampler_cls is LightLDASampler:
                kwargs["num_mh_steps"] = config.num_mh_steps
            self.sampler = sampler_cls(shard, config.num_topics, **kwargs)
        self._is_warp = isinstance(self.sampler, WarpLDA)
        # The shard's contribution only changes while sampling, so it is
        # computed once per barrier and reused for the next epoch's external
        # counts instead of re-running the O(tokens) bincount (V x K can be
        # large on real corpora).
        self._contribution = self._compute_contribution()

    # ------------------------------------------------------------------ #
    def _compute_contribution(self) -> np.ndarray:
        if self._is_warp:
            return self.sampler.word_topic_counts()
        return self.sampler.state.local_word_topic()

    def local_word_topic(self) -> np.ndarray:
        """This shard's own ``V x K`` word-topic count contribution."""
        return self._contribution

    def run_epoch(
        self, global_word_topic: np.ndarray, instrument: bool = False
    ) -> Tuple[np.ndarray, Optional[Dict[str, Any]]]:
        """One barrier-to-barrier step: sample against frozen global counts.

        Returns ``(contribution, telemetry_payload)``: the shard's *new*
        local contribution — the master's merge is ``global' = Σ_shards
        contribution``, which equals applying every shard's delta to the
        old global state — plus, when ``instrument`` is set, an
        :meth:`repro.obs.Telemetry.export_payload` dict (with a ``seconds``
        key for the shard's epoch wall-time) for the master to absorb.
        Instrumentation is capture-only — it never touches the samplers'
        RNG streams, so instrumented epochs stay bit-identical.
        """
        if not instrument:
            self._sample_epoch(global_word_topic)
            return self._contribution, None
        capture = Telemetry()
        started = time.perf_counter()
        try:
            with use_telemetry(capture):
                with capture.span("shard", worker=self.index):
                    self._sample_epoch(global_word_topic)
        finally:
            capture.close()
        payload = capture.export_payload()
        payload["seconds"] = time.perf_counter() - started
        payload["worker"] = self.index
        return self._contribution, payload

    def _sample_epoch(self, global_word_topic: np.ndarray) -> None:
        if self._is_warp:
            external = global_word_topic - self._contribution
            if external.any():
                self.sampler.set_external_counts(external)
            try:
                self.sampler.fit(self.config.iterations_per_epoch)
            finally:
                # No-mass external counts (single worker, or this shard owns
                # every token) are never installed: that keeps the O(1)
                # mixture word proposal instead of forcing per-word alias
                # tables, and the acceptance rates are identical either way.
                self.sampler.clear_external_counts()
        else:
            self.sampler.state.import_global_word_topic(global_word_topic)
            # Stale proposal caches (AliasLDA, LightLDA) reference the counts
            # just replaced; dropping them here also makes every epoch start
            # from a deterministic cache state, which checkpoint resume
            # (always at an epoch boundary) relies on for bit-exactness.
            self.sampler.invalidate_caches()
            self.sampler.fit(self.config.iterations_per_epoch)
        self._contribution = self._compute_contribution()

    def export_state(self) -> Dict[str, Any]:
        """The sampler's resumable state (see the samplers' ``export_state``)."""
        return self.sampler.export_state()

    def import_state(self, state: Dict[str, Any]) -> None:
        """Restore a state captured by :meth:`export_state`."""
        self.sampler.import_state(state)
        self._contribution = self._compute_contribution()

    def assignments(self) -> np.ndarray:
        """Per-token topic assignments of this shard (corpus token order)."""
        return np.asarray(self.sampler.assignments).copy()


def _worker_main(
    conn: Connection,
    shard: Corpus,
    config: TrainerConfig,
    rng: np.random.Generator,
    index: int = 0,
) -> None:
    """Entry point of a worker process: serve the shard protocol over a pipe."""
    try:
        runner = ShardRunner(shard, config, rng, index=index)
        conn.send(("ready", runner.local_word_topic()))
    except Exception:  # noqa: BLE001 - relayed to the master verbatim
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        command, payload = message
        try:
            if command == "epoch":
                global_word_topic, instrument = payload
                conn.send(("counts", runner.run_epoch(global_word_topic, instrument)))
            elif command == "export":
                conn.send(("state", runner.export_state()))
            elif command == "import":
                runner.import_state(payload)
                conn.send(("ok", None))
            elif command == "assignments":
                conn.send(("assignments", runner.assignments()))
            elif command == "stop":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except Exception:  # noqa: BLE001 - relayed to the master verbatim
            conn.send(("error", traceback.format_exc()))
    conn.close()


class _ProcessWorker:
    """A shard runner living in its own OS process, spoken to over a pipe."""

    def __init__(
        self,
        context: multiprocessing.context.BaseContext,
        shard: Corpus,
        config: TrainerConfig,
        rng: np.random.Generator,
        index: int = 0,
    ) -> None:
        self._conn, child_conn = context.Pipe(duplex=True)
        self._process = context.Process(
            target=_worker_main,
            args=(child_conn, shard, config, rng, index),
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def post(self, command: str, payload: Any = None) -> None:
        self._conn.send((command, payload))

    def wait(self) -> Any:
        try:
            kind, payload = self._conn.recv()
        except EOFError as exc:
            raise RuntimeError("training worker exited unexpectedly") from exc
        if kind == "error":
            raise RuntimeError(f"training worker failed:\n{payload}")
        return payload

    def close(self) -> None:
        try:
            if self._process.is_alive():
                self.post("stop")
                self.wait()
        except (BrokenPipeError, OSError, RuntimeError):
            pass
        finally:
            self._process.join(timeout=5)
            if self._process.is_alive():  # pragma: no cover - defensive
                self._process.terminate()
                self._process.join(timeout=5)
            self._conn.close()


class _InlineWorker:
    """The same protocol executed synchronously in the master process."""

    def __init__(
        self, shard: Corpus, config: TrainerConfig, rng: np.random.Generator, index: int = 0
    ) -> None:
        self._runner = ShardRunner(shard, config, rng, index=index)
        self._pending: Any = self._runner.local_word_topic()

    def post(self, command: str, payload: Any = None) -> None:
        if command == "epoch":
            # run_epoch installs its own capture telemetry via use_telemetry,
            # which restores the master's instance on exit — inline and
            # process backends see the same telemetry environment.
            self._pending = self._runner.run_epoch(*payload)
        elif command == "export":
            self._pending = self._runner.export_state()
        elif command == "import":
            self._runner.import_state(payload)
            self._pending = None
        elif command == "assignments":
            self._pending = self._runner.assignments()
        elif command == "stop":
            self._pending = None
        else:
            raise ValueError(f"unknown command {command!r}")

    def wait(self) -> Any:
        pending, self._pending = self._pending, None
        return pending

    def close(self) -> None:
        self._runner = None


class ParallelTrainer:
    """Synchronous data-parallel trainer over document shards.

    Parameters
    ----------
    corpus:
        The full training corpus; workers receive contiguous document-range
        views of it.
    num_workers:
        Number of shards / worker processes.
    config:
        A :class:`TrainerConfig`; overrides the keyword arguments below.
    seed:
        Master seed; per-worker streams are derived with
        :func:`~repro.sampling.rng.spawn_rngs`, so a single seed makes the
        whole run — including checkpoints — bit-reproducible.
    backend:
        ``"process"`` (real ``multiprocessing`` workers, the default) or
        ``"inline"`` (same protocol, master process only — for tests,
        debugging and single-core machines).
    sampler, num_topics, alpha, beta, num_mh_steps, iterations_per_epoch:
        Forwarded to :class:`TrainerConfig` when ``config`` is omitted.

    Examples
    --------
    >>> from repro.corpus import load_preset
    >>> from repro.training import ParallelTrainer
    >>> corpus = load_preset("nytimes_like", scale=0.05, seed=0)
    >>> with ParallelTrainer(corpus, num_workers=2, num_topics=10, seed=0,
    ...                      backend="inline") as trainer:
    ...     phi = trainer.train(3).phi()
    >>> phi.shape[0]
    10
    """

    def __init__(
        self,
        corpus: Corpus,
        num_workers: int = 2,
        config: Optional[TrainerConfig] = None,
        seed: RngLike = None,
        backend: str = "process",
        **config_kwargs: Any,
    ) -> None:
        if config is None:
            config = TrainerConfig(**config_kwargs)
        else:
            if config_kwargs:
                raise ValueError("pass either config or keyword arguments, not both")
            warnings.warn(
                "ParallelTrainer(config=...) is deprecated; declare the model "
                "with repro.api.ModelSpec / repro.api.LDA, or use "
                "ParallelTrainer.from_config(corpus, config, ...)",
                DeprecationWarning,
                stacklevel=2,
            )
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.corpus = corpus
        self.config = config
        self.num_workers = int(num_workers)
        self.backend = backend
        self.alpha, self.alpha_sum, self.beta, self.beta_sum = resolve_hyperparameters(
            config.num_topics, config.alpha, config.beta, corpus.vocabulary_size
        )
        self.num_topics = config.num_topics

        self.boundaries = contiguous_shards(corpus.document_lengths(), num_workers)
        shards = [
            corpus.slice(int(self.boundaries[i]), int(self.boundaries[i + 1]))
            for i in range(num_workers)
        ]
        rngs = spawn_rngs(seed, num_workers)

        self._workers: List[Any]
        if backend == "inline":
            self._workers = [
                _InlineWorker(shard, config, rng, index=i)
                for i, (shard, rng) in enumerate(zip(shards, rngs))
            ]
        else:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            context = multiprocessing.get_context(method)
            self._workers = [
                _ProcessWorker(context, shard, config, rng, index=i)
                for i, (shard, rng) in enumerate(zip(shards, rngs))
            ]
        # Barrier 0: collect the initial contributions into the global state.
        # A worker whose sampler fails to build reports here; reap the
        # surviving workers before re-raising so a failed construction never
        # leaks live processes.
        self._closed = False
        try:
            contributions = [worker.wait() for worker in self._workers]
        except BaseException:
            self.close()
            raise
        self.global_word_topic = np.sum(contributions, axis=0, dtype=np.int64)
        self.epochs_completed = 0
        #: Free-form resume provenance, merged into exported snapshot metadata
        #: (populated by Checkpoint.restore).
        self.provenance: Dict[str, Any] = {}

    @classmethod
    def from_config(
        cls,
        corpus: Corpus,
        config: TrainerConfig,
        num_workers: int = 2,
        seed: RngLike = None,
        backend: str = "process",
    ) -> "ParallelTrainer":
        """Build a trainer from a pre-validated :class:`TrainerConfig`.

        This is the lowering target of :class:`repro.api.ModelSpec` (and the
        replacement for the deprecated ``ParallelTrainer(config=...)``
        spelling); the two produce bit-identical trainers for the same
        config and seed.
        """
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return cls(
                corpus,
                num_workers=num_workers,
                config=config,
                seed=seed,
                backend=backend,
            )

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def run_epoch(self) -> None:
        """One synchronous epoch: broadcast, sample shards, merge at the barrier.

        When telemetry is active the whole epoch runs under an ``epoch`` span;
        each worker captures its shard's spans and metrics locally and ships
        them home with its contribution, and the master absorbs them plus
        derives the scaling diagnostics: ``parallel.worker_epoch_seconds``
        (per-shard wall-time histogram), ``parallel.barrier_wait_seconds``
        (how long each shard's result sat waiting for the slowest shard),
        and the ``parallel.shard_skew_seconds`` gauge (slowest − fastest).
        """
        self._check_open()
        obs = get_telemetry()
        if not obs.enabled:
            for worker in self._workers:
                worker.post("epoch", (self.global_word_topic, False))
            replies = [worker.wait() for worker in self._workers]
            contributions = [counts for counts, _ in replies]
        else:
            with obs.span(
                "epoch", epoch=self.epochs_completed, workers=self.num_workers
            ):
                barrier_started = time.perf_counter()
                for worker in self._workers:
                    worker.post("epoch", (self.global_word_topic, True))
                replies = [worker.wait() for worker in self._workers]
                barrier_seconds = time.perf_counter() - barrier_started
                contributions = []
                shard_seconds: List[float] = []
                for counts, payload in replies:
                    contributions.append(counts)
                    if payload is None:
                        continue
                    obs.absorb(payload)
                    seconds = payload.get("seconds")
                    if seconds is not None:
                        shard_seconds.append(float(seconds))
                        obs.observe("parallel.worker_epoch_seconds", float(seconds))
                if shard_seconds:
                    # A shard's barrier wait is the gap between its own finish
                    # and the barrier release (dominated by the slowest shard).
                    for seconds in shard_seconds:
                        obs.observe(
                            "parallel.barrier_wait_seconds",
                            max(0.0, barrier_seconds - seconds),
                        )
                    obs.gauge(
                        "parallel.shard_skew_seconds",
                        max(shard_seconds) - min(shard_seconds),
                    )
        self.global_word_topic = np.sum(contributions, axis=0, dtype=np.int64)
        self.epochs_completed += 1

    def train(
        self,
        num_epochs: int,
        tracker: Optional[ConvergenceTracker] = None,
        evaluate_every: int = 1,
        checkpoint_dir: Optional[Any] = None,
        checkpoint_every: int = 0,
        on_epoch: Optional[Callable[["ParallelTrainer"], None]] = None,
    ) -> "ParallelTrainer":
        """Run ``num_epochs`` epochs, optionally tracking and checkpointing.

        Parameters
        ----------
        num_epochs:
            Number of merge barriers to run.
        tracker:
            Optional convergence tracker; the *global* log joint likelihood is
            recorded every ``evaluate_every`` epochs.
        evaluate_every:
            Evaluation stride.
        checkpoint_dir:
            If given, a resumable checkpoint is written there every
            ``checkpoint_every`` epochs and after the final epoch.
        checkpoint_every:
            Checkpoint stride; ``0`` means only after the final epoch.
        on_epoch:
            Optional callback invoked with the trainer after every merged
            epoch (before any checkpoint write) — progress printing for the
            CLI, metric export, early-stopping hooks.
        """
        if num_epochs < 0:
            raise ValueError(f"num_epochs must be non-negative, got {num_epochs}")
        if evaluate_every <= 0:
            raise ValueError(f"evaluate_every must be positive, got {evaluate_every}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be non-negative, got {checkpoint_every}"
            )
        if tracker is not None:
            tracker.start()
        for epoch in range(num_epochs):
            self.run_epoch()
            if tracker is not None and self.epochs_completed % evaluate_every == 0:
                iterations = self.epochs_completed * self.config.iterations_per_epoch
                tracker.record(
                    iteration=iterations,
                    log_likelihood=self.log_likelihood(),
                    tokens_processed=iterations * self.corpus.num_tokens,
                )
            if on_epoch is not None:
                on_epoch(self)
            due = checkpoint_every and (epoch + 1) % checkpoint_every == 0
            if checkpoint_dir is not None and (due or epoch == num_epochs - 1):
                self.save_checkpoint(checkpoint_dir)
        return self

    # ------------------------------------------------------------------ #
    # Gathered model access (mirrors the single-process samplers)
    # ------------------------------------------------------------------ #
    def assignments(self) -> np.ndarray:
        """Per-token topic assignments, gathered in corpus token order."""
        self._check_open()
        for worker in self._workers:
            worker.post("assignments")
        return np.concatenate([worker.wait() for worker in self._workers])

    def export_worker_states(self) -> List[Dict[str, Any]]:
        """Every worker's resumable sampler state, in shard order."""
        self._check_open()
        for worker in self._workers:
            worker.post("export")
        return [worker.wait() for worker in self._workers]

    def import_worker_states(self, states: Sequence[Dict[str, Any]]) -> None:
        """Restore worker states (shard order) and re-merge the global counts."""
        self._check_open()
        if len(states) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} worker states, got {len(states)}"
            )
        for worker, state in zip(self._workers, states):
            worker.post("import", state)
        for worker in self._workers:
            worker.wait()
        # The imported assignments define the contributions; re-merge.
        self.global_word_topic = self._merge_contributions()

    def _merge_contributions(self) -> np.ndarray:
        assignments = self.assignments()
        counts = np.zeros(
            (self.corpus.vocabulary_size, self.num_topics), dtype=np.int64
        )
        np.add.at(counts, (self.corpus.token_words, assignments), 1)
        return counts

    def word_topic_counts(self) -> np.ndarray:
        """The merged global ``V x K`` word-topic counts (a copy)."""
        return self.global_word_topic.copy()

    def doc_topic_counts(self) -> np.ndarray:
        """The global ``D x K`` document-topic counts (gathered)."""
        counts = np.zeros((self.corpus.num_documents, self.num_topics), dtype=np.int64)
        np.add.at(counts, (self.corpus.token_documents, self.assignments()), 1)
        return counts

    def phi(self) -> np.ndarray:
        """Topic-word distributions Φ of the merged global state (K x V)."""
        counts = self.global_word_topic.T.astype(np.float64) + self.beta
        return counts / counts.sum(axis=1, keepdims=True)

    def theta(self) -> np.ndarray:
        """Document-topic proportions Θ of the gathered global state."""
        counts = self.doc_topic_counts().astype(np.float64) + self.alpha
        return counts / counts.sum(axis=1, keepdims=True)

    def log_likelihood(self) -> float:
        """Global log joint likelihood ``log p(W, Z | α, β)``."""
        return log_joint_likelihood_from_assignments(
            self.corpus.token_documents,
            self.corpus.token_words,
            self.assignments(),
            self.corpus.num_documents,
            self.corpus.vocabulary_size,
            self.num_topics,
            self.alpha,
            self.beta,
        )

    def export_snapshot(
        self, extra_metadata: Optional[Dict[str, Any]] = None
    ) -> "ModelSnapshot":
        """Freeze the merged model into a serving snapshot."""
        from repro.serving.snapshot import ModelSnapshot

        metadata = {
            "sampler": f"Parallel[{self.config.sampler}]",
            "iterations": self.epochs_completed * self.config.iterations_per_epoch,
            "epochs": self.epochs_completed,
            "num_workers": self.num_workers,
            "num_documents": int(self.corpus.num_documents),
            "num_tokens": int(self.corpus.num_tokens),
        }
        metadata.update(self.provenance)
        if extra_metadata:
            metadata.update(extra_metadata)
        return ModelSnapshot(
            phi=self.phi(),
            alpha=self.alpha,
            beta=self.beta,
            vocabulary=self.corpus.vocabulary,
            metadata=metadata,
        )

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def save_checkpoint(self, directory: Union[str, Path]) -> Path:
        """Write a resumable checkpoint; returns the directory written."""
        from repro.training.checkpoint import Checkpoint

        return Checkpoint.capture(self).save(directory)

    @classmethod
    def resume(
        cls,
        directory: Union[str, Path],
        corpus: Corpus,
        backend: str = "process",
    ) -> "ParallelTrainer":
        """Rebuild a trainer from a checkpoint and continue bit-exactly.

        ``corpus`` must be the corpus the checkpointed run trained on (a
        fingerprint in the checkpoint guards against mix-ups).
        """
        from repro.training.checkpoint import Checkpoint

        return Checkpoint.load(directory).restore(corpus, backend=backend)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers; the trainer is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.close()
        self._workers = []

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("trainer is closed")

    def __enter__(self) -> "ParallelTrainer":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelTrainer(sampler={self.config.sampler!r}, "
            f"K={self.num_topics}, workers={self.num_workers}, "
            f"backend={self.backend!r}, epochs={self.epochs_completed})"
        )
