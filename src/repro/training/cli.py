"""Command-line driver for data-parallel training (``python -m repro.train``).

Examples
--------
Train WarpLDA on a synthetic corpus with 2 workers, checkpointing every
5 epochs::

    python -m repro.train --synthetic --docs 200 --vocab-size 500 \
        --sampler warplda --topics 20 --workers 2 --epochs 20 \
        --checkpoint-dir ckpt --checkpoint-every 5 --seed 0

Resume the same run from its last checkpoint and export a serving snapshot::

    python -m repro.train --synthetic --docs 200 --vocab-size 500 \
        --workers 2 --epochs 10 --checkpoint-dir ckpt --resume \
        --snapshot-out model.npz

Train on a real UCI bag-of-words corpus::

    python -m repro.train --corpus docword.kos.txt.gz --vocab-file vocab.kos.txt \
        --sampler warplda --topics 50 --workers 4 --epochs 100

Replay a corpus as a document stream — online updates over a sliding window,
one registry version published per ``--publish-every`` batches::

    python -m repro.train --stream --synthetic --docs 200 --vocab-size 500 \
        --topics 20 --stream-batch-docs 32 --window-docs 256 --decay 0.995 \
        --registry-dir registry --seed 0
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.corpus.corpus import Corpus
from repro.corpus.datasets import DATASET_PRESETS, load_preset
from repro.corpus.synthetic import SyntheticCorpusSpec, generate_lda_corpus
from repro.corpus.uci import read_uci_bow
from repro.training.parallel import (
    BACKENDS,
    SAMPLER_REGISTRY,
    ParallelTrainer,
    TrainerConfig,
)

__all__ = ["build_parser", "build_corpus", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.train`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.train",
        description="Multiprocess data-parallel LDA training.",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    source = parser.add_argument_group("corpus source (choose one)")
    source.add_argument("--corpus", type=Path, help="UCI docword file (.txt or .gz)")
    source.add_argument("--vocab-file", type=Path, help="UCI vocab file for --corpus")
    source.add_argument(
        "--preset",
        choices=sorted(DATASET_PRESETS),
        help="synthetic preset calibrated to the paper's Table 3",
    )
    source.add_argument("--scale", type=float, default=0.1, help="preset scale factor")
    source.add_argument(
        "--synthetic", action="store_true", help="ad-hoc LDA-generative corpus"
    )
    source.add_argument("--docs", type=int, default=200, help="synthetic documents")
    source.add_argument("--vocab-size", type=int, default=500, help="synthetic vocabulary")
    source.add_argument(
        "--doc-length", type=int, default=100, help="synthetic mean document length"
    )
    source.add_argument(
        "--corpus-seed", type=int, default=0, help="seed of the synthetic generator"
    )

    model = parser.add_argument_group("model")
    model.add_argument(
        "--sampler", choices=sorted(SAMPLER_REGISTRY), default="warplda"
    )
    model.add_argument("--topics", type=int, default=20, help="number of topics K")
    model.add_argument("--alpha", type=float, default=None, help="doc Dirichlet (50/K)")
    model.add_argument("--beta", type=float, default=0.01, help="word Dirichlet")
    model.add_argument("--mh-steps", type=int, default=2, help="MH proposals per token")
    model.add_argument(
        "--kernel",
        choices=("slab", "scalar"),
        default="slab",
        help="execution path: vectorized slab kernels or the legacy scalar loops",
    )

    run = parser.add_argument_group("run")
    run.add_argument("--workers", type=int, default=2, help="worker processes")
    run.add_argument("--backend", choices=BACKENDS, default="process")
    run.add_argument("--epochs", type=int, default=10, help="merge barriers to run")
    run.add_argument(
        "--iters-per-epoch", type=int, default=1, help="sweeps between barriers"
    )
    run.add_argument("--seed", type=int, default=None, help="master seed")
    run.add_argument(
        "--eval-every", type=int, default=1, help="log-likelihood print stride"
    )

    streaming = parser.add_argument_group("streaming (with --stream)")
    streaming.add_argument(
        "--stream",
        action="store_true",
        help="replay the corpus as a document stream: online updates + "
        "versioned registry publishes instead of batch epochs",
    )
    streaming.add_argument(
        "--stream-batch-docs", type=int, default=32, help="documents per mini-batch"
    )
    streaming.add_argument(
        "--window-docs", type=int, default=256, help="sliding-window size in documents"
    )
    streaming.add_argument(
        "--sweeps-per-batch", type=int, default=2, help="Gibbs sweeps per mini-batch"
    )
    streaming.add_argument(
        "--decay",
        type=float,
        default=1.0,
        help="exponential decay of retired counts per batch (1.0 = keep forever)",
    )
    streaming.add_argument(
        "--publish-every", type=int, default=1, help="batches between registry publishes"
    )
    streaming.add_argument(
        "--registry-dir", type=Path, help="persist registry versions here"
    )
    streaming.add_argument(
        "--retain", type=int, default=3, help="registry versions retained for rollback"
    )

    ckpt = parser.add_argument_group("checkpointing")
    ckpt.add_argument("--checkpoint-dir", type=Path, help="checkpoint directory")
    ckpt.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="epochs between checkpoints (0 = final only)",
    )
    ckpt.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint-dir instead of starting fresh",
    )
    ckpt.add_argument(
        "--snapshot-out", type=Path, help="write the final serving snapshot here"
    )
    return parser


def build_corpus(args: argparse.Namespace) -> Corpus:
    """Load or generate the corpus selected by the parsed arguments."""
    chosen = sum(
        1 for flag in (args.corpus is not None, args.preset is not None, args.synthetic)
        if flag
    )
    if chosen != 1:
        raise SystemExit(
            "choose exactly one corpus source: --corpus, --preset or --synthetic"
        )
    if args.corpus is not None:
        return read_uci_bow(args.corpus, vocab_path=args.vocab_file)
    if args.preset is not None:
        return load_preset(args.preset, scale=args.scale, seed=args.corpus_seed)
    spec = SyntheticCorpusSpec(
        num_documents=args.docs,
        vocabulary_size=args.vocab_size,
        mean_document_length=args.doc_length,
    )
    return generate_lda_corpus(spec, seed=args.corpus_seed)


#: Flags the resume path ignores (the checkpoint's own configuration wins),
#: as ``(argparse dest, checkpoint-config attribute)`` pairs.
_RESUME_IGNORED_FLAGS = (
    ("sampler", "sampler"),
    ("topics", "num_topics"),
    ("alpha", "alpha"),
    ("beta", "beta"),
    ("mh_steps", "num_mh_steps"),
    ("iters_per_epoch", "iterations_per_epoch"),
    ("kernel", "kernel"),
)


def _warn_ignored_resume_flags(
    parser: argparse.ArgumentParser, args: argparse.Namespace, trainer: ParallelTrainer
) -> None:
    """Warn when a resume run passes model flags the checkpoint overrides."""
    for dest, attr in _RESUME_IGNORED_FLAGS:
        requested = getattr(args, dest)
        effective = getattr(trainer.config, attr)
        if requested != parser.get_default(dest) and requested != effective:
            print(
                f"warning: --{dest.replace('_', '-')} {requested} ignored on "
                f"resume; the checkpoint was trained with {effective}"
            )
    if args.workers != parser.get_default("workers") and args.workers != trainer.num_workers:
        print(
            f"warning: --workers {args.workers} ignored on resume; the "
            f"checkpoint uses {trainer.num_workers} workers"
        )
    if args.seed is not None:
        print(
            "warning: --seed ignored on resume; the checkpoint continues its "
            "saved RNG streams"
        )


#: Batch-training flags the ``--stream`` path ignores (argparse dests).
_STREAM_IGNORED_FLAGS = (
    "workers",
    "backend",
    "epochs",
    "iters_per_epoch",
    "eval_every",
    "checkpoint_every",
)


def _warn_ignored_stream_flags(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Warn when --stream is combined with batch-training flags it ignores."""
    for dest in _STREAM_IGNORED_FLAGS:
        if getattr(args, dest) != parser.get_default(dest):
            print(
                f"warning: --{dest.replace('_', '-')} is ignored with --stream "
                f"(streaming trains online, not in parallel epochs)"
            )
    if args.checkpoint_dir is not None:
        print(
            "warning: --checkpoint-dir is ignored with --stream; use "
            "--registry-dir to persist published model versions"
        )


def _stream_main(args: argparse.Namespace, corpus: Corpus) -> int:
    """The ``--stream`` path: replay ``corpus`` through the online pipeline.

    Documents are replayed as raw token strings through a fresh, growing
    vocabulary — exactly what a live deployment sees — so the run exercises
    online vocabulary growth, the sliding-window updates and the registry
    publish cadence end to end.
    """
    from repro.streaming import (
        DocumentStream,
        ModelRegistry,
        OnlineTrainer,
        OnlineTrainerConfig,
        StreamingPipeline,
    )

    config = OnlineTrainerConfig(
        num_topics=args.topics,
        alpha=args.alpha,
        beta=args.beta,
        sampler=args.sampler,
        kernel=args.kernel,
        window_docs=args.window_docs,
        sweeps_per_batch=args.sweeps_per_batch,
        decay=args.decay,
        num_mh_steps=args.mh_steps,
    )
    trainer = OnlineTrainer.from_config(config, seed=args.seed)
    registry = ModelRegistry(retain=args.retain, directory=args.registry_dir)
    pipeline = StreamingPipeline(trainer, registry, publish_every=args.publish_every)
    stream = DocumentStream(
        trainer.corpus.vocabulary, batch_docs=args.stream_batch_docs
    )

    vocabulary = corpus.vocabulary
    started = time.perf_counter()
    raw_documents = (
        [vocabulary.word(w) for w in corpus.document_words(d)]
        for d in range(corpus.num_documents)
    )
    for batch in stream.batches(raw_documents):
        report = pipeline.ingest(batch)
        update = report.update
        published = (
            f"published v{report.published.version}" if report.published else "-"
        )
        print(
            f"batch {update.batch_index:4d}  docs {update.documents_added:4d}  "
            f"window {update.window_documents:5d}  V {update.vocabulary_size:6d}  "
            f"{published}  {update.train_seconds * 1e3:7.1f} ms"
        )
    elapsed = time.perf_counter() - started
    docs_per_s = trainer.documents_ingested / elapsed if elapsed > 0 else 0.0
    print(
        f"ingested {trainer.documents_ingested} documents / "
        f"{trainer.tokens_ingested} tokens in {elapsed:.2f}s "
        f"({docs_per_s:.1f} docs/s)"
    )
    if registry.current_version is None:
        print(
            f"no version published: the stream ended after "
            f"{trainer.batches_ingested} batches, before a publish was due "
            f"(--publish-every {args.publish_every})"
        )
    else:
        print(
            f"registry versions {registry.versions()} "
            f"(current v{registry.current_version})"
        )
        if args.registry_dir is not None:
            print(f"registry persisted to {args.registry_dir}")
    if args.snapshot_out is not None:
        written = trainer.export_snapshot().save(args.snapshot_out)
        print(f"serving snapshot written to {written}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume and args.checkpoint_dir is None:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.stream and args.resume:
        raise SystemExit("--stream and --resume are mutually exclusive")

    corpus = build_corpus(args)
    print(
        f"corpus: {corpus.num_documents} documents, {corpus.num_tokens} tokens, "
        f"vocabulary {corpus.vocabulary_size}"
    )

    if args.stream:
        _warn_ignored_stream_flags(parser, args)
        return _stream_main(args, corpus)

    if args.resume:
        trainer = ParallelTrainer.resume(
            args.checkpoint_dir, corpus, backend=args.backend
        )
        print(
            f"resumed {trainer.config.sampler} from {args.checkpoint_dir} at "
            f"epoch {trainer.epochs_completed}"
        )
        _warn_ignored_resume_flags(parser, args, trainer)
    else:
        config = TrainerConfig(
            sampler=args.sampler,
            num_topics=args.topics,
            alpha=args.alpha,
            beta=args.beta,
            num_mh_steps=args.mh_steps,
            iterations_per_epoch=args.iters_per_epoch,
            kernel=args.kernel,
        )
        trainer = ParallelTrainer.from_config(
            corpus,
            config,
            num_workers=args.workers,
            seed=args.seed,
            backend=args.backend,
        )
        print(
            f"training {config.sampler} (K={config.num_topics}) on "
            f"{trainer.num_workers} {args.backend} workers"
        )

    try:
        started = time.perf_counter()

        def report_progress(t: ParallelTrainer) -> None:
            if args.eval_every and t.epochs_completed % args.eval_every == 0:
                print(
                    f"epoch {t.epochs_completed:4d}  "
                    f"log_likelihood {t.log_likelihood():.1f}  "
                    f"elapsed {time.perf_counter() - started:.2f}s"
                )

        trainer.train(
            args.epochs,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            on_epoch=report_progress,
        )
        if args.checkpoint_dir is not None and args.epochs > 0:
            print(f"checkpoint written to {args.checkpoint_dir}")
        if args.snapshot_out is not None:
            written = trainer.export_snapshot().save(args.snapshot_out)
            print(f"serving snapshot written to {written}")
    finally:
        trainer.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.train
    sys.exit(main())
