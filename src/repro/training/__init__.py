"""Real multiprocess data-parallel training (Sec. 5 executed, not simulated).

PRs before this one reproduced the paper's distributed design as a cost-model
simulation (:mod:`repro.distributed.cluster`).  This package runs it:

* :class:`~repro.training.parallel.ParallelTrainer` shards a corpus by
  document across N ``multiprocessing`` workers, samples every shard locally
  against counts frozen at the epoch barrier, and merges the word-topic count
  deltas — the synchronous data-parallel recipe of distributed online LDA
  (Hoffman et al., 2010; gensim's ``ldamulticore``) that WarpLDA's delayed
  count updates make principled;
* :class:`~repro.training.checkpoint.Checkpoint` persists a mid-training
  state (serving snapshot + per-worker sampler state + RNG streams) so a run
  can be resumed bit-exactly;
* :mod:`repro.training.cli` backs the ``python -m repro.train`` command line.
"""

from repro.training.checkpoint import Checkpoint
from repro.training.parallel import SAMPLER_REGISTRY, ParallelTrainer, TrainerConfig

__all__ = [
    "Checkpoint",
    "ParallelTrainer",
    "SAMPLER_REGISTRY",
    "TrainerConfig",
]
