"""WarpLDA reproduction library.

This package reproduces the system described in *WarpLDA: a Cache Efficient
O(1) Algorithm for Latent Dirichlet Allocation* (Chen et al., VLDB 2016).

Subpackages
-----------
``repro.sampling``
    Low-level sampling primitives: alias tables, F+ trees, discrete and
    Metropolis-Hastings samplers.
``repro.corpus``
    Corpus substrate: vocabulary, documents, the UCI bag-of-words format,
    synthetic corpus generators and dataset presets.
``repro.samplers``
    Baseline LDA samplers: collapsed Gibbs, SparseLDA, AliasLDA, F+LDA and
    LightLDA.
``repro.kernels``
    Vectorized sampling kernels: bucketed slab execution of the sampler hot
    paths (WarpLDA phases, blocked dense CGS, delayed LightLDA cycles) plus
    the batched draw and proposal primitives they share.
``repro.core``
    The paper's contribution: the WarpLDA MCEM sampler and its ablation
    variants.
``repro.evaluation``
    Log joint likelihood, perplexity, coherence and convergence tracking.
``repro.cache``
    A memory-hierarchy simulator and memory-access analysis used to reproduce
    the paper's cache-locality results.
``repro.distributed``
    The distributed sparse-matrix framework (VisitByRow / VisitByColumn),
    partitioning strategies and a simulated cluster.
``repro.report``
    Helpers shared by the benchmark harness for formatting tables and series.
``repro.serving``
    The model-serving layer: immutable snapshots, batched unseen-document
    inference and a micro-batching topic server.
``repro.training``
    Multiprocess data-parallel training: document sharding, epoch-barrier
    count merging, resumable checkpoints and the ``python -m repro.train``
    command line.
``repro.streaming``
    Streaming ingestion and online training: mini-batch document streams,
    a growable corpus with incremental kernel-cache maintenance, sliding-
    window online updates with count decay, a versioned model registry and
    hot-swap serving (``python -m repro.train --stream``).
"""

from repro.core.warplda import WarpLDA, WarpLDAConfig
from repro.corpus.corpus import Corpus, Document
from repro.corpus.vocabulary import Vocabulary
from repro.serving import InferenceEngine, ModelSnapshot, TopicServer
from repro.streaming import (
    DocumentStream,
    ModelRegistry,
    OnlineTrainer,
    StreamingCorpus,
    StreamingPipeline,
)
from repro.training import Checkpoint, ParallelTrainer, TrainerConfig

__all__ = [
    "Checkpoint",
    "Corpus",
    "Document",
    "DocumentStream",
    "InferenceEngine",
    "ModelRegistry",
    "ModelSnapshot",
    "OnlineTrainer",
    "ParallelTrainer",
    "StreamingCorpus",
    "StreamingPipeline",
    "TopicServer",
    "TrainerConfig",
    "Vocabulary",
    "WarpLDA",
    "WarpLDAConfig",
    "__version__",
]

__version__ = "1.0.0"
