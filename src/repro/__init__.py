"""WarpLDA reproduction library.

This package reproduces the system described in *WarpLDA: a Cache Efficient
O(1) Algorithm for Latent Dirichlet Allocation* (Chen et al., VLDB 2016) and
grows it into a small topic-modeling system with one front door:

>>> from repro import LDA
>>> model = LDA(num_topics=20, algorithm="warplda", seed=0)  # doctest: +SKIP
>>> model.fit(corpus).save("model.npz")                      # doctest: +SKIP
>>> theta = LDA.load("model.npz").transform(documents)       # doctest: +SKIP

:class:`~repro.api.LDA` wraps a declarative
:class:`~repro.api.ModelSpec` — algorithm, kernel, hyper-parameters,
execution backend (``serial`` / ``parallel`` / ``online``) and seed — and
dispatches ``fit`` / ``partial_fit`` / ``transform`` / ``top_topics`` /
``perplexity`` / ``save`` / ``load`` / ``serve`` to the layers below.  The
same surface drives the command line: ``python -m repro
{train,stream,serve,eval}``.

Subpackages
-----------
``repro.api``
    The declarative front door: ``ModelSpec``, the backend registry and the
    ``LDA`` estimator facade.
``repro.sampling``
    Low-level sampling primitives: alias tables, F+ trees, discrete and
    Metropolis-Hastings samplers.
``repro.corpus``
    Corpus substrate: vocabulary, documents, the UCI bag-of-words format,
    synthetic corpus generators and dataset presets.
``repro.samplers``
    Baseline LDA samplers: collapsed Gibbs, SparseLDA, AliasLDA, F+LDA and
    LightLDA — plus the name registry the spec layer resolves against.
``repro.kernels``
    Vectorized sampling kernels: bucketed slab execution of the sampler hot
    paths plus the batched draw and proposal primitives they share.
``repro.core``
    The paper's contribution: the WarpLDA MCEM sampler and its ablation
    variants.
``repro.evaluation``
    Log joint likelihood, perplexity, coherence and convergence tracking.
``repro.cache``
    A memory-hierarchy simulator and memory-access analysis used to reproduce
    the paper's cache-locality results.
``repro.distributed``
    The distributed sparse-matrix framework (VisitByRow / VisitByColumn),
    partitioning strategies and a simulated cluster.
``repro.report``
    Helpers shared by the benchmark harness for formatting tables and series.
``repro.serving``
    The model-serving layer: immutable snapshots, batched unseen-document
    inference and a micro-batching topic server.
``repro.service``
    The network serving tier: a stdlib-asyncio HTTP front end routing into a
    pool of worker processes that share one snapshot copy via
    ``multiprocessing.shared_memory``, with admission control, request
    timeouts and registry hot-swap broadcast (``python -m repro serve
    --http HOST:PORT``).
``repro.training``
    Multiprocess data-parallel training: document sharding, epoch-barrier
    count merging and resumable checkpoints (spec backend ``parallel``).
``repro.streaming``
    Streaming ingestion and online training: mini-batch document streams,
    sliding-window updates with count decay, a versioned model registry and
    hot-swap serving (spec backend ``online``).
``repro.analysis``
    The project's AST-based invariant linter: RNG discipline, telemetry
    purity, kernel purity, lock discipline, pickling safety and API
    hygiene (``python -m repro.analysis src/``).

Importing ``repro`` is deliberately light: the top-level names below are
resolved lazily (PEP 562), so ``import repro`` pulls in neither
``multiprocessing`` nor the serving/streaming stacks until something
actually uses them.
"""

from importlib import import_module

#: Top-level name → defining module, resolved on first attribute access.
_EXPORTS = {
    "LDA": "repro.api",
    "ModelSpec": "repro.api",
    "WarpLDA": "repro.core.warplda",
    "WarpLDAConfig": "repro.core.warplda",
    "Corpus": "repro.corpus.corpus",
    "Document": "repro.corpus.corpus",
    "Vocabulary": "repro.corpus.vocabulary",
    "InferenceEngine": "repro.serving",
    "ModelSnapshot": "repro.serving",
    "ServiceConfig": "repro.service",
    "TopicServer": "repro.serving",
    "TopicService": "repro.service",
    "DocumentStream": "repro.streaming",
    "ModelRegistry": "repro.streaming",
    "OnlineTrainer": "repro.streaming",
    "StreamingCorpus": "repro.streaming",
    "StreamingPipeline": "repro.streaming",
    "Checkpoint": "repro.training",
    "ParallelTrainer": "repro.training",
    "TrainerConfig": "repro.training",
}

__all__ = sorted(_EXPORTS) + ["__version__"]

__version__ = "1.1.0"


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        # The eager __init__ used to bind every subpackage as an attribute
        # (a side effect of importing from them); keep `repro.serving`-style
        # access working by importing the submodule on demand.
        try:
            value = import_module(f"repro.{name}")
        except ModuleNotFoundError as exc:
            if exc.name != f"repro.{name}":
                raise  # a genuinely missing dependency inside the submodule
            raise AttributeError(
                f"module 'repro' has no attribute {name!r}"
            ) from None
    else:
        value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
