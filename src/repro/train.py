"""``python -m repro.train`` — multiprocess data-parallel LDA training.

Thin executable wrapper around :mod:`repro.training.cli`; see that module
(or ``python -m repro.train --help``) for the full interface.
"""

from __future__ import annotations

import sys

from repro.training.cli import build_corpus, build_parser, main

__all__ = ["build_corpus", "build_parser", "main"]

if __name__ == "__main__":
    sys.exit(main())
