"""``python -m repro.train`` — deprecated alias of ``python -m repro``.

This is the pre-facade training entry point, kept as a thin shim around
:mod:`repro.training.cli` so existing scripts keep producing bit-identical
results.  New work should use the spec-driven ``python -m repro`` subcommands
(``train`` / ``stream`` / ``serve`` / ``eval``) or the
:class:`repro.api.LDA` estimator directly.
"""

from __future__ import annotations

import sys
import warnings
from typing import Optional, Sequence

from repro.training.cli import build_corpus, build_parser
from repro.training.cli import main as _legacy_main

__all__ = ["build_corpus", "build_parser", "main"]

warnings.warn(
    "repro.train is deprecated; use `python -m repro` (train/stream/serve/eval) "
    "or repro.api.LDA instead",
    DeprecationWarning,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; identical behaviour to the pre-facade CLI."""
    return _legacy_main(argv)


if __name__ == "__main__":
    sys.exit(main())
