"""Token-level proposal helpers shared by training and serving.

Both the delayed LightLDA kernel and the serving layer's MH fold-in
(:func:`repro.serving.infer.mh_fold_in`) run the paper's Sec. 4.3
**random-positioning mixture** doc proposal over a flat token batch:

    with probability ``L_d / (L_d + ᾱ)`` pick the assignment of a uniformly
    random token of the same document, otherwise draw from the prior α.

:func:`token_layout` computes the CSR-style per-token arrays the draw needs,
and :func:`positioning_mixture_proposal` performs the draw for a whole batch
with three vectorised RNG calls.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sampling.alias import AliasTable

__all__ = ["positioning_mixture_proposal", "token_layout"]


def token_layout(
    lengths: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-token CSR arrays for a batch of rows with the given lengths.

    Returns ``(offsets, token_row, token_offset, token_length)`` where
    ``offsets`` has length ``R + 1`` and the other three are per-token:
    the owning row, the row's first-token position, and the row's length.
    Zero-length rows contribute no tokens (and must be filtered by the
    caller if it needs a dense row <-> token mapping).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    token_row = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    token_offset = offsets[token_row]
    token_length = lengths[token_row]
    return offsets, token_row, token_offset, token_length


def positioning_mixture_proposal(
    source_assignments: np.ndarray,
    token_offset: np.ndarray,
    token_length: np.ndarray,
    mixture_weight: np.ndarray,
    num_topics: int,
    rng: np.random.Generator,
    alpha_alias: Optional[AliasTable] = None,
) -> np.ndarray:
    """Draw one mixture proposal per token: ``q(k) ∝ C_rk + α_k``.

    Parameters
    ----------
    source_assignments:
        Flat assignment array the random-positioning component reads.  For
        WarpLDA-style delayed semantics pass the assignments *frozen at the
        start of the sweep*, so the proposal density is exactly the delayed
        ``C_rk + α_k``; passing the live chain state gives LightLDA-style
        instant semantics instead.
    token_offset, token_length:
        Per-token row start and row length (see :func:`token_layout`);
        every ``token_length`` must be ``>= 1``.
    mixture_weight:
        Per-token probability of the counts component, normally
        ``L / (L + ᾱ)``.
    num_topics:
        ``K``; the prior component draws uniformly when ``alpha_alias`` is
        ``None`` (symmetric α), from the alias table otherwise.
    """
    count = token_offset.size
    use_counts = rng.random(count) < mixture_weight
    positions = token_offset + rng.integers(0, token_length)
    if alpha_alias is None:
        prior_topics = rng.integers(num_topics, size=count)
    else:
        prior_topics = alpha_alias.draw_many(count, rng)
    return np.where(use_counts, source_assignments[positions], prior_topics)
