"""WarpLDA's two phases (Alg. 2) executed over slab buckets.

The scalar implementation in :mod:`repro.core.warplda` vectorises the tokens
*of one word* (or document) but still pays a Python-loop iteration per row —
O(V) + O(D) interpreter steps per iteration.  The kernels here run the same
computation for an entire length bucket at once:

* gather the bucket's current assignments into an ``(R, L)`` matrix,
* rebuild every row's count vector ``c_w`` / ``c_d`` with one masked
  ``bincount`` (the on-the-fly count computation of Sec. 4.2),
* run the ``M``-step MH accept/reject chain of Eq. (7) as broadcast
  arithmetic over the whole matrix,
* recompute the fresh counts and draw the next phase's ``M`` proposals
  (Sec. 4.3: random positioning + prior mixture, or an exact draw from
  ``C_rk + prior`` via a batched inverse-CDF pass).

Because WarpLDA's counts are **delayed** for the duration of a phase, no
row's chain observes another row's in-phase updates — rows are independent
given the frozen global ``c_k`` — so slab-parallel execution produces a chain
with *identical* per-row transition kernels to the scalar path (only the
order in which the shared RNG stream is consumed differs).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.kernels.buckets import MAX_SLAB_CELLS, SlabBucket
from repro.kernels.draws import row_categorical_matrix
from repro.sampling.alias import AliasTable

__all__ = ["document_phase", "word_phase"]


def _chunk_rows(num_topics: int) -> int:
    """Row cap keeping each chunk's ``R x K`` histograms within budget."""
    return max(1, MAX_SLAB_CELLS // max(1, num_topics))


def _row_counts(
    current: np.ndarray, mask: np.ndarray, num_topics: int
) -> np.ndarray:
    """Per-row topic histograms of an ``(R, L)`` assignment matrix."""
    num_rows = current.shape[0]
    keyed = current + np.arange(num_rows)[:, None] * num_topics
    counts = np.bincount(keyed[mask], minlength=num_rows * num_topics)
    return counts.reshape(num_rows, num_topics).astype(np.float64)


def _run_chain(
    current: np.ndarray,
    proposals: np.ndarray,
    tokens: np.ndarray,
    mask: np.ndarray,
    row_counts: np.ndarray,
    row_prior_current: np.ndarray,
    stale_topic_counts: np.ndarray,
    beta_sum: float,
    num_mh_steps: int,
    rng: np.random.Generator,
    prior_proposed_of=None,
    chain_stats: Optional[dict] = None,
) -> np.ndarray:
    """Accept/reject the ``M`` stored proposals for one bucket chunk.

    Implements Eq. (7): ``π = min{1, (C_rt + prior_t)(C_s + β̄) /
    ((C_rs + prior_s)(C_t + β̄))}`` with ``C_r`` the row's delayed counts and
    ``C`` the phase-frozen global topic counts.  ``row_prior_current`` is the
    prior term already gathered at the current assignments;
    ``prior_proposed_of`` maps a proposed-topic matrix to its prior term (a
    constant β for the word phase, ``α[topic]`` for the document phase).

    ``chain_stats`` (telemetry only, ``None`` by default) is a mutable
    ``{"proposed": int, "accepted": int}`` accumulator for MH acceptance
    counting; it never touches the RNG stream, so instrumented and plain
    runs stay bit-identical.
    """
    rows = np.arange(current.shape[0])[:, None]
    uniforms = rng.random((num_mh_steps,) + current.shape)
    valid = int(np.count_nonzero(mask)) if chain_stats is not None else 0
    for step in range(num_mh_steps):
        proposed = proposals[step][tokens]
        prior_proposed = prior_proposed_of(proposed)
        ratio = (
            (row_counts[rows, proposed] + prior_proposed)
            * (stale_topic_counts[current] + beta_sum)
        ) / (
            (row_counts[rows, current] + row_prior_current)
            * (stale_topic_counts[proposed] + beta_sum)
        )
        accept = mask & (uniforms[step] < ratio)
        if chain_stats is not None:
            chain_stats["proposed"] += valid
            chain_stats["accepted"] += int(np.count_nonzero(accept))
        current = np.where(accept, proposed, current)
        if not np.isscalar(row_prior_current):
            row_prior_current = np.where(accept, prior_proposed, row_prior_current)
    return current


def word_phase(
    assignments: np.ndarray,
    proposals: np.ndarray,
    buckets: List[SlabBucket],
    stale_topic_counts: np.ndarray,
    num_topics: int,
    num_mh_steps: int,
    beta: float,
    beta_sum: float,
    rng: np.random.Generator,
    exact_word_proposal: bool = False,
    external_word_topic: Optional[np.ndarray] = None,
    chain_stats: Optional[dict] = None,
) -> None:
    """Word phase over word-axis buckets: accept doc proposals, draw word proposals.

    Mutates ``assignments`` and ``proposals`` in place.  ``stale_topic_counts``
    is the phase-frozen global ``c_k`` (float64, external shard counts already
    added).  ``exact_word_proposal`` selects the Sec. 4.3 alias strategy —
    an exact batched draw from ``q_word(k) ∝ C_wk + β`` — which is also forced
    whenever frozen ``external_word_topic`` counts are installed (random
    positioning cannot reach the other shards' tokens).
    """
    exact = exact_word_proposal or external_word_topic is not None
    max_rows = _chunk_rows(num_topics)
    for bucket in buckets:
        for chunk in bucket.chunks(max_rows=max_rows):
            tokens, mask, lengths = chunk.tokens, chunk.mask, chunk.lengths
            current = assignments[tokens]
            word_counts = _row_counts(current, mask, num_topics)
            if external_word_topic is not None:
                word_counts += external_word_topic[chunk.rows]

            current = _run_chain(
                current,
                proposals,
                tokens,
                mask,
                word_counts,
                beta,
                stale_topic_counts,
                beta_sum,
                num_mh_steps,
                rng,
                prior_proposed_of=lambda proposed: beta,
                chain_stats=chain_stats,
            )
            assignments[tokens[mask]] = current[mask]

            # Fresh c_w for the proposal distribution (Alg. 2 recomputes it
            # after the chain, before drawing q_word).
            flat_tokens = tokens[mask]
            if exact:
                fresh = _row_counts(current, mask, num_topics)
                if external_word_topic is not None:
                    fresh += external_word_topic[chunk.rows]
                # One batched draw covers all M steps, so the per-row CDF is
                # prepared once instead of once per step.
                slab_len = chunk.slab_len
                drawn = row_categorical_matrix(
                    fresh + beta, slab_len * num_mh_steps, rng
                )
                for step in range(num_mh_steps):
                    block = drawn[:, step * slab_len : (step + 1) * slab_len]
                    proposals[step, flat_tokens] = block[mask]
            else:
                word_weight = (lengths / (lengths + num_topics * beta))[:, None]
                for step in range(num_mh_steps):
                    use_counts = rng.random(current.shape) < word_weight
                    positions = rng.integers(0, lengths[:, None], size=current.shape)
                    positioned = np.take_along_axis(current, positions, axis=1)
                    uniform = rng.integers(num_topics, size=current.shape)
                    drawn = np.where(use_counts, positioned, uniform)
                    proposals[step, flat_tokens] = drawn[mask]


def document_phase(
    assignments: np.ndarray,
    proposals: np.ndarray,
    buckets: List[SlabBucket],
    stale_topic_counts: np.ndarray,
    alpha: np.ndarray,
    alpha_sum: float,
    num_topics: int,
    num_mh_steps: int,
    beta_sum: float,
    rng: np.random.Generator,
    alpha_alias: Optional[AliasTable] = None,
    chain_stats: Optional[dict] = None,
) -> None:
    """Document phase over doc-axis buckets: accept word proposals, draw doc proposals.

    Symmetric to :func:`word_phase` with the document prior α in place of β;
    ``alpha_alias`` supplies the prior component of the mixture draw when α is
    asymmetric (``None`` means symmetric α, i.e. a uniform prior draw).
    Like :func:`word_phase`, mutates ``assignments`` and ``proposals`` in
    place (accepted moves and freshly drawn doc-phase proposals).
    """
    max_rows = _chunk_rows(num_topics)
    for bucket in buckets:
        for chunk in bucket.chunks(max_rows=max_rows):
            tokens, mask, lengths = chunk.tokens, chunk.mask, chunk.lengths
            current = assignments[tokens]
            doc_counts = _row_counts(current, mask, num_topics)

            current = _run_chain(
                current,
                proposals,
                tokens,
                mask,
                doc_counts,
                alpha[current],
                stale_topic_counts,
                beta_sum,
                num_mh_steps,
                rng,
                prior_proposed_of=lambda proposed: alpha[proposed],
                chain_stats=chain_stats,
            )
            assignments[tokens[mask]] = current[mask]

            flat_tokens = tokens[mask]
            doc_weight = (lengths / (lengths + alpha_sum))[:, None]
            for step in range(num_mh_steps):
                use_counts = rng.random(current.shape) < doc_weight
                positions = rng.integers(0, lengths[:, None], size=current.shape)
                positioned = np.take_along_axis(current, positions, axis=1)
                if alpha_alias is None:
                    prior = rng.integers(num_topics, size=current.shape)
                else:
                    prior = alpha_alias.draw_many(current.size, rng).reshape(
                        current.shape
                    )
                drawn = np.where(use_counts, positioned, prior)
                proposals[step, flat_tokens] = drawn[mask]
