"""WarpLDA's two phases (Alg. 2) executed over slab buckets.

The scalar implementation in :mod:`repro.core.warplda` vectorises the tokens
*of one word* (or document) but still pays a Python-loop iteration per row —
O(V) + O(D) interpreter steps per iteration.  The kernels here run the same
computation for an entire length bucket at once:

* gather the bucket's current assignments into an ``(R, L)`` matrix,
* rebuild every row's count vector ``c_w`` / ``c_d`` with one masked
  ``bincount`` (the on-the-fly count computation of Sec. 4.2),
* run the ``M``-step MH accept/reject chain of Eq. (7) as broadcast
  arithmetic over the whole matrix,
* recompute the fresh counts and draw the next phase's ``M`` proposals
  (Sec. 4.3: random positioning + prior mixture, or an exact draw from
  ``C_rk + prior`` via a batched inverse-CDF pass).

Because WarpLDA's counts are **delayed** for the duration of a phase, no
row's chain observes another row's in-phase updates — rows are independent
given the frozen global ``c_k`` — so slab-parallel execution produces a chain
with *identical* per-row transition kernels to the scalar path (only the
order in which the RNG streams are consumed differs).

Threaded execution
------------------
Each phase decomposes into **bucket chunks** (``SlabBucket.chunks``), whose
writes target disjoint token sets and whose shared reads (``assignments`` at
gather time, the frozen ``stale_topic_counts``/``external_word_topic``) are
fixed for the phase.  The chunks are dispatched through
:mod:`repro.kernels.pool`, each consuming its own generator spawned from the
phase RNG (:func:`repro.kernels.pool.spawn_task_rngs`), so the result is
bit-identical for every thread count — ``threads=1`` simply runs the same
tasks inline.  The chunk list is a pure function of the corpus, ``K`` and
``max_cells``; it never depends on the thread count.

When ``use_jit=True`` and numba is importable (:mod:`repro.kernels.jit`),
the per-chunk MH chain runs as one compiled ``nogil`` loop consuming the
same pre-drawn uniforms — bit-identical to the NumPy chain, silently falling
back to it when numba is absent.
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional

import numpy as np

from repro.kernels import pool
from repro.kernels.buckets import MAX_SLAB_CELLS, SlabBucket
from repro.kernels.draws import row_categorical_matrix
from repro.kernels.jit import jit_mh_chain
from repro.sampling.alias import AliasTable

__all__ = ["document_phase", "word_phase"]


def _phase_chunks(
    buckets: List[SlabBucket], num_topics: int, max_cells: Optional[int]
) -> List[SlabBucket]:
    """The phase's task list: every bucket chunk, in bucket order.

    ``max_cells`` bounds both the ``R x L`` token matrix and (via the row
    cap) the ``R x K`` per-row histograms — the slab working-set knob the
    cache-analysis bench turns.  The decomposition depends only on the
    buckets, ``K`` and ``max_cells``, never on the thread count: that is
    what makes the per-task RNG streams (and so the whole trajectory)
    thread-count-invariant.
    """
    if max_cells is None:
        max_cells = MAX_SLAB_CELLS
    max_rows = max(1, max_cells // max(1, num_topics))
    return [
        chunk
        for bucket in buckets
        for chunk in bucket.chunks(max_cells=max_cells, max_rows=max_rows)
    ]


def _merge_chain_stats(chain_stats: Optional[dict], per_task: List[dict]) -> None:
    """Reduce per-task acceptance counters into the caller's accumulator.

    ``chain_stats`` is modified in place (its ``proposed``/``accepted``
    entries accumulate the per-task totals, in task order).
    """
    if chain_stats is None:
        return
    for stats in per_task:
        chain_stats["proposed"] += stats["proposed"]
        chain_stats["accepted"] += stats["accepted"]


def _row_counts(
    current: np.ndarray, mask: np.ndarray, num_topics: int
) -> np.ndarray:
    """Per-row topic histograms of an ``(R, L)`` assignment matrix."""
    num_rows = current.shape[0]
    keyed = current + np.arange(num_rows)[:, None] * num_topics
    counts = np.bincount(keyed[mask], minlength=num_rows * num_topics)
    return counts.reshape(num_rows, num_topics).astype(np.float64)


def _run_chain(
    current: np.ndarray,
    proposals: np.ndarray,
    tokens: np.ndarray,
    mask: np.ndarray,
    row_counts: np.ndarray,
    row_prior_current: np.ndarray,
    stale_topic_counts: np.ndarray,
    beta_sum: float,
    num_mh_steps: int,
    rng: np.random.Generator,
    prior_proposed_of=None,
    chain_stats: Optional[dict] = None,
) -> np.ndarray:
    """Accept/reject the ``M`` stored proposals for one bucket chunk.

    Implements Eq. (7): ``π = min{1, (C_rt + prior_t)(C_s + β̄) /
    ((C_rs + prior_s)(C_t + β̄))}`` with ``C_r`` the row's delayed counts and
    ``C`` the phase-frozen global topic counts.  ``row_prior_current`` is the
    prior term already gathered at the current assignments;
    ``prior_proposed_of`` maps a proposed-topic matrix to its prior term (a
    constant β for the word phase, ``α[topic]`` for the document phase).

    ``chain_stats`` (telemetry only, ``None`` by default) is a mutable
    ``{"proposed": int, "accepted": int}`` accumulator for MH acceptance
    counting; it never touches the RNG stream, so instrumented and plain
    runs stay bit-identical.
    """
    rows = np.arange(current.shape[0])[:, None]
    uniforms = rng.random((num_mh_steps,) + current.shape)
    valid = int(np.count_nonzero(mask)) if chain_stats is not None else 0
    for step in range(num_mh_steps):
        proposed = proposals[step][tokens]
        prior_proposed = prior_proposed_of(proposed)
        ratio = (
            (row_counts[rows, proposed] + prior_proposed)
            * (stale_topic_counts[current] + beta_sum)
        ) / (
            (row_counts[rows, current] + row_prior_current)
            * (stale_topic_counts[proposed] + beta_sum)
        )
        accept = mask & (uniforms[step] < ratio)
        if chain_stats is not None:
            chain_stats["proposed"] += valid
            chain_stats["accepted"] += int(np.count_nonzero(accept))
        current = np.where(accept, proposed, current)
        if not np.isscalar(row_prior_current):
            row_prior_current = np.where(accept, prior_proposed, row_prior_current)
    return current


def _run_chain_jit(
    compiled,
    current: np.ndarray,
    proposals: np.ndarray,
    tokens: np.ndarray,
    mask: np.ndarray,
    row_counts: np.ndarray,
    prior_per_topic: np.ndarray,
    stale_topic_counts: np.ndarray,
    beta_sum: float,
    num_mh_steps: int,
    rng: np.random.Generator,
    chain_stats: Optional[dict] = None,
) -> np.ndarray:
    """Run the compiled chain on one chunk; ``current`` is modified in place.

    Draws the uniforms exactly as :func:`_run_chain` does — before the chain,
    with the same shape, from the same per-task generator — so the compiled
    path is bit-identical to the NumPy path for the same decomposition.
    When ``chain_stats`` is given its proposed/accepted tallies are
    accumulated in place, like the NumPy path's.
    """
    uniforms = rng.random((num_mh_steps,) + current.shape)
    accepted = compiled(
        current,
        proposals,
        np.ascontiguousarray(tokens),
        np.ascontiguousarray(mask),
        row_counts,
        prior_per_topic,
        np.ascontiguousarray(stale_topic_counts),
        float(beta_sum),
        uniforms,
    )
    if chain_stats is not None:
        chain_stats["proposed"] += int(np.count_nonzero(mask)) * num_mh_steps
        chain_stats["accepted"] += int(accepted)
    return current


def _word_chunk(
    assignments: np.ndarray,
    proposals: np.ndarray,
    chunk: SlabBucket,
    stale_topic_counts: np.ndarray,
    num_topics: int,
    num_mh_steps: int,
    beta: float,
    beta_sum: float,
    rng: np.random.Generator,
    exact: bool,
    external_word_topic: Optional[np.ndarray],
    chain_stats: Optional[dict],
    compiled,
) -> None:
    """Word-phase body for one bucket chunk (one pool task).

    Mutates ``assignments`` (this chunk's tokens only — chunks are disjoint)
    and ``proposals`` (the same token columns) in place; every random draw
    comes from the task-local ``rng``.
    """
    tokens, mask, lengths = chunk.tokens, chunk.mask, chunk.lengths
    current = assignments[tokens]
    word_counts = _row_counts(current, mask, num_topics)
    if external_word_topic is not None:
        word_counts += external_word_topic[chunk.rows]

    if compiled is not None:
        prior = np.full(num_topics, beta, dtype=np.float64)
        current = _run_chain_jit(
            compiled,
            current,
            proposals,
            tokens,
            mask,
            word_counts,
            prior,
            stale_topic_counts,
            beta_sum,
            num_mh_steps,
            rng,
            chain_stats=chain_stats,
        )
    else:
        current = _run_chain(
            current,
            proposals,
            tokens,
            mask,
            word_counts,
            beta,
            stale_topic_counts,
            beta_sum,
            num_mh_steps,
            rng,
            prior_proposed_of=lambda proposed: beta,
            chain_stats=chain_stats,
        )
    assignments[tokens[mask]] = current[mask]

    # Fresh c_w for the proposal distribution (Alg. 2 recomputes it
    # after the chain, before drawing q_word).
    flat_tokens = tokens[mask]
    if exact:
        fresh = _row_counts(current, mask, num_topics)
        if external_word_topic is not None:
            fresh += external_word_topic[chunk.rows]
        # One batched draw covers all M steps, so the per-row CDF is
        # prepared once instead of once per step.
        slab_len = chunk.slab_len
        drawn = row_categorical_matrix(fresh + beta, slab_len * num_mh_steps, rng)
        for step in range(num_mh_steps):
            block = drawn[:, step * slab_len : (step + 1) * slab_len]
            proposals[step, flat_tokens] = block[mask]
    else:
        word_weight = (lengths / (lengths + num_topics * beta))[:, None]
        for step in range(num_mh_steps):
            use_counts = rng.random(current.shape) < word_weight
            positions = rng.integers(0, lengths[:, None], size=current.shape)
            positioned = np.take_along_axis(current, positions, axis=1)
            uniform = rng.integers(num_topics, size=current.shape)
            drawn = np.where(use_counts, positioned, uniform)
            proposals[step, flat_tokens] = drawn[mask]


def word_phase(
    assignments: np.ndarray,
    proposals: np.ndarray,
    buckets: List[SlabBucket],
    stale_topic_counts: np.ndarray,
    num_topics: int,
    num_mh_steps: int,
    beta: float,
    beta_sum: float,
    rng: np.random.Generator,
    exact_word_proposal: bool = False,
    external_word_topic: Optional[np.ndarray] = None,
    chain_stats: Optional[dict] = None,
    threads: Optional[int] = None,
    use_jit: bool = False,
    max_cells: Optional[int] = None,
) -> None:
    """Word phase over word-axis buckets: accept doc proposals, draw word proposals.

    Mutates ``assignments`` and ``proposals`` in place.  ``stale_topic_counts``
    is the phase-frozen global ``c_k`` (float64, external shard counts already
    added).  ``exact_word_proposal`` selects the Sec. 4.3 alias strategy —
    an exact batched draw from ``q_word(k) ∝ C_wk + β`` — which is also forced
    whenever frozen ``external_word_topic`` counts are installed (random
    positioning cannot reach the other shards' tokens).

    Bucket chunks run as independent tasks on :mod:`repro.kernels.pool`
    (``threads`` per :func:`repro.kernels.pool.resolve_threads`), each with
    its own RNG stream spawned from ``rng`` — one main-stream draw per phase,
    so the trajectory is bit-identical for every thread count.  ``use_jit``
    swaps in the compiled chain of :mod:`repro.kernels.jit` when available;
    ``max_cells`` overrides the per-chunk working-set budget
    (:data:`~repro.kernels.buckets.MAX_SLAB_CELLS`).
    """
    exact = exact_word_proposal or external_word_topic is not None
    chunks = _phase_chunks(buckets, num_topics, max_cells)
    if not chunks:
        return
    compiled = jit_mh_chain() if use_jit else None
    task_rngs = pool.spawn_task_rngs(rng, len(chunks))
    per_task = [{"proposed": 0, "accepted": 0} for _ in chunks]
    tasks = [
        partial(
            _word_chunk,
            assignments,
            proposals,
            chunk,
            stale_topic_counts,
            num_topics,
            num_mh_steps,
            beta,
            beta_sum,
            task_rngs[index],
            exact,
            external_word_topic,
            per_task[index] if chain_stats is not None else None,
            compiled,
        )
        for index, chunk in enumerate(chunks)
    ]
    pool.run_tasks(tasks, threads=threads, label="warp.word")
    _merge_chain_stats(chain_stats, per_task)


def _document_chunk(
    assignments: np.ndarray,
    proposals: np.ndarray,
    chunk: SlabBucket,
    stale_topic_counts: np.ndarray,
    alpha: np.ndarray,
    alpha_sum: float,
    num_topics: int,
    num_mh_steps: int,
    beta_sum: float,
    rng: np.random.Generator,
    alpha_alias: Optional[AliasTable],
    chain_stats: Optional[dict],
    compiled,
) -> None:
    """Document-phase body for one bucket chunk (one pool task).

    Mutates ``assignments`` (this chunk's tokens only — chunks are disjoint)
    and ``proposals`` (the same token columns) in place; every random draw
    comes from the task-local ``rng``.
    """
    tokens, mask, lengths = chunk.tokens, chunk.mask, chunk.lengths
    current = assignments[tokens]
    doc_counts = _row_counts(current, mask, num_topics)

    if compiled is not None:
        current = _run_chain_jit(
            compiled,
            current,
            proposals,
            tokens,
            mask,
            doc_counts,
            alpha,
            stale_topic_counts,
            beta_sum,
            num_mh_steps,
            rng,
            chain_stats=chain_stats,
        )
    else:
        current = _run_chain(
            current,
            proposals,
            tokens,
            mask,
            doc_counts,
            alpha[current],
            stale_topic_counts,
            beta_sum,
            num_mh_steps,
            rng,
            prior_proposed_of=lambda proposed: alpha[proposed],
            chain_stats=chain_stats,
        )
    assignments[tokens[mask]] = current[mask]

    flat_tokens = tokens[mask]
    doc_weight = (lengths / (lengths + alpha_sum))[:, None]
    for step in range(num_mh_steps):
        use_counts = rng.random(current.shape) < doc_weight
        positions = rng.integers(0, lengths[:, None], size=current.shape)
        positioned = np.take_along_axis(current, positions, axis=1)
        if alpha_alias is None:
            prior = rng.integers(num_topics, size=current.shape)
        else:
            prior = alpha_alias.draw_many(current.size, rng).reshape(current.shape)
        drawn = np.where(use_counts, positioned, prior)
        proposals[step, flat_tokens] = drawn[mask]


def document_phase(
    assignments: np.ndarray,
    proposals: np.ndarray,
    buckets: List[SlabBucket],
    stale_topic_counts: np.ndarray,
    alpha: np.ndarray,
    alpha_sum: float,
    num_topics: int,
    num_mh_steps: int,
    beta_sum: float,
    rng: np.random.Generator,
    alpha_alias: Optional[AliasTable] = None,
    chain_stats: Optional[dict] = None,
    threads: Optional[int] = None,
    use_jit: bool = False,
    max_cells: Optional[int] = None,
) -> None:
    """Document phase over doc-axis buckets: accept word proposals, draw doc proposals.

    Symmetric to :func:`word_phase` with the document prior α in place of β;
    ``alpha_alias`` supplies the prior component of the mixture draw when α is
    asymmetric (``None`` means symmetric α, i.e. a uniform prior draw).
    Like :func:`word_phase`, mutates ``assignments`` and ``proposals`` in
    place (accepted moves and freshly drawn doc-phase proposals), dispatches
    bucket chunks through :mod:`repro.kernels.pool` with per-task RNG
    streams, and honours the same ``threads``/``use_jit``/``max_cells``
    knobs with the same bit-exact determinism contract.
    """
    chunks = _phase_chunks(buckets, num_topics, max_cells)
    if not chunks:
        return
    compiled = jit_mh_chain() if use_jit else None
    task_rngs = pool.spawn_task_rngs(rng, len(chunks))
    per_task = [{"proposed": 0, "accepted": 0} for _ in chunks]
    tasks = [
        partial(
            _document_chunk,
            assignments,
            proposals,
            chunk,
            stale_topic_counts,
            alpha,
            alpha_sum,
            num_topics,
            num_mh_steps,
            beta_sum,
            task_rngs[index],
            alpha_alias,
            per_task[index] if chain_stats is not None else None,
            compiled,
        )
        for index, chunk in enumerate(chunks)
    ]
    pool.run_tasks(tasks, threads=threads, label="warp.doc")
    _merge_chain_stats(chain_stats, per_task)
