"""Batched inverse-CDF categorical draws.

All three helpers implement the same draw — index ``i`` is chosen when the
uniform target falls in ``[cdf[i-1], cdf[i])`` — with the boundary convention
of ``np.searchsorted(..., side="left")``, which is exactly what the scalar
samplers use (:mod:`repro.sampling.discrete`).  They differ only in batching
shape:

* :func:`row_categorical_draw` — one draw per row of an ``(R, K)`` matrix
  (the blocked CGS kernel's "one token, one conditional" case);
* :func:`row_categorical_matrix` — ``n`` draws per row (WarpLDA's ``M``
  proposals for every token of a word slab);
* :func:`table_categorical_draws` — one draw per token from a shared
  ``(V, K)`` weight table indexed by a per-token row id (LightLDA's stale
  word proposal).

The multi-draw variants use the offset-flattening trick: each row's CDF is
normalised into ``(0, 1]`` and shifted by its row index, giving one globally
non-decreasing array that a single ``searchsorted`` can answer every row's
queries against.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "prepare_table",
    "row_categorical_draw",
    "row_categorical_matrix",
    "table_categorical_draws",
]


def row_categorical_draw(
    weights: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw one index per row of ``weights`` (``(R, K)``, rows positive).

    Returns an ``(R,)`` int64 array.  Equivalent to ``R`` calls to
    ``searchsorted(cumsum(w), u * w.sum())`` but performed as one cumulative
    sum and one broadcast comparison.
    """
    cdf = np.cumsum(weights, axis=1)
    targets = rng.random(weights.shape[0]) * cdf[:, -1]
    drawn = (cdf < targets[:, None]).sum(axis=1)
    return np.minimum(drawn, weights.shape[1] - 1).astype(np.int64)


def _flat_offset_cdf(weights: np.ndarray) -> np.ndarray:
    """Normalised per-row CDF shifted by the row index, flattened."""
    cdf = np.cumsum(weights, axis=1)
    totals = cdf[:, -1:]
    norm = cdf / totals
    norm[:, -1] = 1.0  # guard rounding so every query u < 1 lands in-row
    return (norm + np.arange(weights.shape[0])[:, None]).ravel()


def row_categorical_matrix(
    weights: np.ndarray, num_draws: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``num_draws`` indices from every row of ``weights``.

    Returns an ``(R, num_draws)`` int64 array; one ``searchsorted`` over the
    offset-flattened CDF answers all ``R * num_draws`` queries.
    """
    num_rows, num_cols = weights.shape
    flat = _flat_offset_cdf(weights)
    queries = np.arange(num_rows)[:, None] + rng.random((num_rows, num_draws))
    drawn = np.searchsorted(flat, queries.ravel()).reshape(num_rows, num_draws)
    drawn -= np.arange(num_rows)[:, None] * num_cols
    return np.minimum(drawn, num_cols - 1).astype(np.int64)


def table_categorical_draws(
    cdf_flat: np.ndarray, num_cols: int, row_ids: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Per-token draws from a shared table prepared by :func:`prepare_table`.

    ``row_ids`` selects the distribution (e.g. the token's word id) and one
    flat ``searchsorted`` serves the whole token batch.
    """
    queries = row_ids + rng.random(row_ids.size)
    drawn = np.searchsorted(cdf_flat, queries) - row_ids * num_cols
    return np.minimum(drawn, num_cols - 1).astype(np.int64)


def prepare_table(weights: np.ndarray) -> np.ndarray:
    """Precompute the offset-flattened CDF of a ``(V, K)`` weight table.

    Factored out of :func:`table_categorical_draws` so a sweep that draws
    from the same stale table many times pays the ``O(VK)`` cumulative sum
    once.
    """
    return _flat_offset_cdf(weights)
