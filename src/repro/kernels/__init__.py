"""Vectorized sampling kernels: bucketed slab execution for the hot paths.

The paper's central claim is that LDA sampling throughput is decided by the
*structure* of memory accesses, not by per-token asymptotics.  This package
applies the same lesson to the Python/NumPy reproduction: the interpreter-level
loop over words, documents or tokens is itself a "random access" cost, so the
kernels here batch whole groups of words/documents into rectangular **slabs**
and execute every sampler hot path as a handful of whole-array NumPy
operations.

Layout
------
:mod:`~repro.kernels.buckets`
    Groups the rows of one corpus axis (words or documents) into power-of-two
    length buckets and pads each bucket into an ``(n_slabs, slab_len)`` token
    index matrix, built once per corpus and cached on it.
:mod:`~repro.kernels.draws`
    Batched inverse-CDF categorical draws: one draw per row of a weight
    matrix, many draws per row, and per-token draws from a shared ``V x K``
    weight table (one ``cumsum``/``searchsorted`` pass each).
:mod:`~repro.kernels.proposals`
    Token-level proposal helpers shared by training and serving: the CSR
    layout of a flat token batch and the random-positioning mixture proposal
    of the paper's Sec. 4.3.
:mod:`~repro.kernels.warp`
    WarpLDA's word and document phases (Alg. 2) over slab buckets: the MH
    accept/reject chains of Eq. (7) and the proposal draws run as single
    NumPy expressions per bucket.
:mod:`~repro.kernels.cgs`
    The blocked dense collapsed-Gibbs kernel: the full conditional of Eq. (1)
    enumerated for a whole document block, sampled with one cumulative-sum
    pass.
:mod:`~repro.kernels.light`
    LightLDA's cycle proposals executed as a delayed-count token-parallel
    sweep (the WarpLDA Sec. 4.2 reordering applied to LightLDA's chain).
:mod:`~repro.kernels.pool`
    The multi-core execution tier: the shared thread pool every kernel
    dispatches its independent work units through, plus the per-task RNG
    spawning that keeps the trajectory bit-identical for every thread count
    (the ``THR001`` invariant makes it the only thread owner in this
    package).
:mod:`~repro.kernels.jit`
    Optional numba-compiled inner MH chains for WarpLDA (``kernel="jit"``);
    loads lazily and degrades to the NumPy slab path — bit-identically —
    when numba is not installed.

Exactness
---------
WarpLDA freezes all counts for the duration of a phase (the MCEM E-step keeps
Θ and Φ fixed), so processing the words of a phase slab-parallel instead of
one-by-one is *exact*: no word's chain reads another word's in-phase updates.
The blocked CGS and delayed LightLDA kernels freeze counts per block / per
sweep, which is the same delayed-count device — a statistically equivalent
chain targeting the same stationary distribution, not a bit-identical replay
of the scalar path.  Every consumer therefore keeps the scalar implementation
behind ``kernel="scalar"`` as the correctness oracle.
"""

from repro.kernels.buckets import SlabBucket, build_buckets, corpus_buckets
from repro.kernels.cgs import block_conditionals, blocked_gibbs_sweep
from repro.kernels.draws import (
    row_categorical_draw,
    row_categorical_matrix,
    table_categorical_draws,
)
from repro.kernels.light import delayed_cycle_sweep
from repro.kernels.proposals import positioning_mixture_proposal, token_layout
from repro.kernels.warp import document_phase, word_phase

__all__ = [
    "SlabBucket",
    "block_conditionals",
    "blocked_gibbs_sweep",
    "build_buckets",
    "corpus_buckets",
    "delayed_cycle_sweep",
    "document_phase",
    "positioning_mixture_proposal",
    "row_categorical_draw",
    "row_categorical_matrix",
    "table_categorical_draws",
    "token_layout",
    "word_phase",
]
