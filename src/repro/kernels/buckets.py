"""Length-bucketed slab index matrices over one corpus axis.

The samplers visit tokens either word-by-word or document-by-document (the two
orders of the paper's Sec. 5.2 layout).  A :class:`SlabBucket` packs all rows
(words or documents) whose length falls in the same power-of-two band into one
rectangular ``(n_slabs, slab_len)`` matrix of *flat token indices*, so a whole
bucket can be gathered, updated and scattered with single NumPy operations —
the per-row Python loop disappears from the hot path.

Padding positions point at the row's **last** token, which keeps every gather
in bounds; a boolean mask marks the real cells, and all counting/scatter
operations go through the mask so padding never contaminates counts.

Buckets depend only on the corpus structure (offsets and visiting order), so
they are built once and cached on the corpus instance via
:func:`corpus_buckets`; a sliced shard (``Corpus.slice``) is a new object and
gets its own cache, which is exactly the "rebuild only when the corpus slice
changes" policy the training layer needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["SlabBucket", "build_buckets", "corpus_buckets"]

#: Cap on ``n_slabs * slab_len`` cells processed by one kernel invocation.
#: Keeps the per-chunk working set (a few float64 arrays of this size) in the
#: L2/L3 range instead of materialising corpus-sized temporaries.
MAX_SLAB_CELLS = 1 << 18


@dataclass(frozen=True)
class SlabBucket:
    """One padded bucket of equal-band rows over a corpus axis.

    Attributes
    ----------
    rows:
        Row ids (word ids or document indices) of the slabs, shape ``(R,)``.
    tokens:
        Flat token indices, shape ``(R, L)``; padding cells repeat the row's
        last token (always a valid index).
    mask:
        ``True`` for real cells, shape ``(R, L)``.
    lengths:
        True row lengths, shape ``(R,)``; every entry is ``>= 1``.
    """

    rows: np.ndarray
    tokens: np.ndarray
    mask: np.ndarray
    lengths: np.ndarray

    @property
    def num_rows(self) -> int:
        """Number of slabs ``R`` in the bucket."""
        return int(self.rows.size)

    @property
    def slab_len(self) -> int:
        """Padded row length ``L`` (a power of two)."""
        return int(self.tokens.shape[1])

    def chunks(
        self, max_cells: int = MAX_SLAB_CELLS, max_rows: Optional[int] = None
    ) -> Iterator["SlabBucket"]:
        """Yield row-range views whose ``R * L`` stays below ``max_cells``.

        ``max_rows`` additionally bounds ``R`` — the kernels use it to cap
        the ``R x K`` per-row histograms, which ``max_cells`` (an ``R x L``
        budget) cannot see.
        """
        rows_per_chunk = max(1, max_cells // max(1, self.slab_len))
        if max_rows is not None:
            rows_per_chunk = max(1, min(rows_per_chunk, max_rows))
        if rows_per_chunk >= self.num_rows:
            yield self
            return
        for start in range(0, self.num_rows, rows_per_chunk):
            stop = start + rows_per_chunk
            yield SlabBucket(
                rows=self.rows[start:stop],
                tokens=self.tokens[start:stop],
                mask=self.mask[start:stop],
                lengths=self.lengths[start:stop],
            )


def build_buckets(
    offsets: np.ndarray,
    order: Optional[np.ndarray] = None,
    rows: Optional[np.ndarray] = None,
) -> List[SlabBucket]:
    """Bucket the rows described by CSR/CSC ``offsets`` into padded slabs.

    Parameters
    ----------
    offsets:
        Length ``R + 1`` row offsets; row ``r`` owns positions
        ``[offsets[r], offsets[r+1])``.
    order:
        Optional permutation mapping positions to flat token indices (the
        corpus ``word_order`` for the word axis); ``None`` means positions
        *are* token indices (the document axis).
    rows:
        Optional subset of row ids to bucket; ``None`` buckets every row.
        The streaming corpus uses this to rebuild only the rows an append
        actually touched.

    Returns
    -------
    list of SlabBucket
        One bucket per occupied power-of-two length band, ascending by
        ``slab_len``.  Empty rows are dropped (the phases skip them anyway).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.diff(offsets)
    if rows is None:
        nonempty = np.flatnonzero(lengths)
    else:
        rows = np.asarray(rows, dtype=np.int64)
        nonempty = rows[lengths[rows] > 0]
    buckets: List[SlabBucket] = []
    if nonempty.size == 0:
        return buckets

    # Power-of-two band of each non-empty row: smallest L = 2^b >= length.
    bands = np.ceil(np.log2(np.maximum(lengths[nonempty], 1))).astype(np.int64)
    bands[lengths[nonempty] == 1] = 0
    for band in np.unique(bands):
        rows = nonempty[bands == band]
        slab_len = 1 << int(band)
        row_lengths = lengths[rows]
        # Column c of row r holds token offsets[r] + min(c, length - 1): real
        # cells in order, padding saturated at the last token (valid index).
        positions = offsets[rows][:, None] + np.minimum(
            np.arange(slab_len)[None, :], (row_lengths - 1)[:, None]
        )
        tokens = positions if order is None else order[positions]
        mask = np.arange(slab_len)[None, :] < row_lengths[:, None]
        buckets.append(
            SlabBucket(
                rows=rows,
                tokens=np.ascontiguousarray(tokens),
                mask=mask,
                lengths=row_lengths,
            )
        )
    return buckets


def corpus_buckets(corpus, axis: str) -> List[SlabBucket]:
    """Bucket ``corpus`` along ``axis`` (``"word"`` or ``"doc"``), cached.

    The bucket list is memoised on the corpus instance, so repeated
    iterations — and every sampler sharing the corpus — reuse the same index
    matrices; a new corpus object (e.g. a shard view) rebuilds its own.
    """
    if axis not in ("word", "doc"):
        raise ValueError(f"axis must be 'word' or 'doc', got {axis!r}")
    cache = corpus.__dict__.setdefault("_slab_bucket_cache", {})
    if axis not in cache:
        if axis == "word":
            cache[axis] = build_buckets(corpus.word_offsets, corpus.word_order)
        else:
            cache[axis] = build_buckets(corpus.doc_offsets)
    return cache[axis]
