"""Shared thread pool for the slab kernels: the multi-core execution tier.

The slab kernels decompose each phase into independent work units — bucket
chunks in :mod:`repro.kernels.warp`, document-block waves in
:mod:`repro.kernels.cgs`, token ranges in :mod:`repro.kernels.light` — whose
writes are disjoint and whose shared reads are phase-frozen (the paper's
delayed-count device, Sec. 4.2, is exactly what makes row-parallel execution
legal).  NumPy releases the GIL on the large gathers, scatters and reductions
those units are made of, so dispatching them onto a :class:`ThreadPoolExecutor`
gives real multi-core speedup without multiprocessing copies.

Determinism contract
--------------------
Results are **bit-identical for every thread count**, including ``threads=1``
(which bypasses the pool entirely):

* The task decomposition is a pure function of the corpus and kernel
  parameters — never of the thread count.
* Each task draws from its own :class:`numpy.random.Generator`, spawned
  deterministically from the sweep RNG via :func:`spawn_task_rngs` (one
  ``SeedSequence`` derived from a single draw on the main stream, then
  ``spawn``-ed per task).  The main stream is consumed identically regardless
  of thread count, so checkpoints resume bit-exactly.
* Task results are applied in task order on the calling thread, never in
  completion order.

This module is the **only** sanctioned owner of thread-level shared state in
the kernel tier (the ``THR001`` invariant, see ``docs/invariants.md``):
kernels must route concurrency through :func:`run_tasks` instead of spawning
ad-hoc threads, so the determinism contract stays auditable in one place.

Thread-count resolution order: an explicit ``threads`` argument, else the
``REPRO_THREADS`` environment variable, else 1 (serial).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

from repro.obs import get_telemetry
from repro.sampling.rng import spawn_rngs

__all__ = [
    "REPRO_THREADS_ENV",
    "resolve_threads",
    "run_tasks",
    "spawn_task_rngs",
]

T = TypeVar("T")

#: Environment variable consulted when no explicit thread count is given.
REPRO_THREADS_ENV = "REPRO_THREADS"

# Executors keyed by worker count, created lazily and shared across every
# kernel call (phases run back to back; re-creating a pool per phase would
# dominate small-corpus sweeps).  One lock guards the dict — executor
# creation is rare and cheap to serialise.
_EXECUTORS: Dict[int, ThreadPoolExecutor] = {}
_EXECUTORS_LOCK = threading.Lock()


def resolve_threads(threads: Optional[int] = None) -> int:
    """Resolve a thread-count setting to a concrete positive integer.

    Precedence: explicit ``threads`` argument > ``REPRO_THREADS`` environment
    variable > 1.  The environment default is read at every call, so kernels
    constructed with ``threads=None`` honour the ambient setting at run time
    (the CI thread-matrix job relies on this).
    """
    if threads is None:
        raw = os.environ.get(REPRO_THREADS_ENV, "").strip()
        if not raw:
            return 1
        try:
            threads = int(raw)
        except ValueError:
            raise ValueError(
                f"{REPRO_THREADS_ENV} must be an integer, got {raw!r}"
            ) from None
    threads = int(threads)
    if threads <= 0:
        raise ValueError(f"threads must be positive, got {threads}")
    return threads


def spawn_task_rngs(
    rng: np.random.Generator, count: int
) -> List[np.random.Generator]:
    """Derive one independent generator per task from the sweep RNG.

    Consumes exactly **one** draw from ``rng`` regardless of ``count`` (and
    none at all when ``count`` is zero), so the main stream advances
    identically for every thread count and every task decomposition —
    the property that keeps checkpoint resume bit-exact.
    """
    if count == 0:
        return []
    return spawn_rngs(rng, count)


def _get_executor(threads: int) -> ThreadPoolExecutor:
    with _EXECUTORS_LOCK:
        executor = _EXECUTORS.get(threads)
        if executor is None:
            executor = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix=f"repro-kernel-{threads}"
            )
            _EXECUTORS[threads] = executor
        return executor


def _timed_call(fn: Callable[[], T]) -> "tuple[T, float]":
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def run_tasks(
    tasks: Sequence[Callable[[], T]],
    threads: Optional[int] = None,
    label: str = "kernel",
) -> List[T]:
    """Execute ``tasks`` and return their results **in task order**.

    ``threads`` follows :func:`resolve_threads`; at 1 (or with at most one
    task) the tasks run inline on the calling thread with zero pool overhead
    — the serial path.  Exceptions propagate to the caller either way.

    Tasks must be independent: disjoint writes, phase-frozen shared reads,
    and any randomness drawn from a per-task generator
    (:func:`spawn_task_rngs`).  Under that contract the results — and
    therefore the model trajectory — are bit-identical for every thread
    count.

    When telemetry is enabled, records per-phase parallel-efficiency metrics
    under ``pool.<label>.*``: a task-span histogram (seconds per task), a
    pool-utilization gauge (busy time over ``wall * threads``) and a
    straggler-skew series (slowest task over mean task time).  The
    instrumentation wraps timing around each task without touching any RNG,
    so instrumented and plain runs stay bit-identical.
    """
    threads = resolve_threads(threads)
    obs = get_telemetry()
    if threads <= 1 or len(tasks) <= 1:
        if obs.enabled:
            wall_started = time.perf_counter()
            durations = []
            results = []
            for task in tasks:
                result, elapsed = _timed_call(task)
                results.append(result)
                durations.append(elapsed)
            _record_pool_metrics(
                obs, label, 1, durations, time.perf_counter() - wall_started
            )
            return results
        return [task() for task in tasks]

    executor = _get_executor(threads)
    wall_started = time.perf_counter()
    futures = [executor.submit(_timed_call, task) for task in tasks]
    # Collect in submission order: completion order is scheduler-dependent
    # and must never influence how results are applied.
    timed = [future.result() for future in futures]
    wall = time.perf_counter() - wall_started
    if obs.enabled:
        _record_pool_metrics(obs, label, threads, [t[1] for t in timed], wall)
    return [t[0] for t in timed]


def _record_pool_metrics(
    obs, label: str, threads: int, durations: List[float], wall: float
) -> None:
    """Record the parallel-efficiency metrics for one dispatched phase."""
    if not durations:
        return
    busy = sum(durations)
    for elapsed in durations:
        obs.observe(f"pool.{label}.task_seconds", elapsed)
    obs.count(f"pool.{label}.tasks", len(durations))
    if wall > 0:
        obs.gauge(f"pool.{label}.utilization", busy / (wall * threads))
    mean = busy / len(durations)
    if mean > 0:
        obs.record(f"pool.{label}.straggler_skew", max(durations) / mean)
