"""LightLDA's cycle proposals as a delayed-count, token-parallel sweep.

Scalar LightLDA (:mod:`repro.samplers.lightlda`) alternates two O(1)
proposals per token — ``q_doc(k) ∝ C_dk + α_k`` and
``q_word(k) ∝ (C_wk + β)/(C_k + β̄)`` — updating counts *instantly* after
every accepted move, which forces a Python loop over tokens.

The kernel applies WarpLDA's delayed-count reordering (Sec. 4.2) to the same
cycle: all counts (and the assignments the random-positioning draw reads) are
frozen at the start of the sweep, so every token's ``M`` proposal cycles
become independent and the whole corpus runs as a flat vectorised chain —
precisely the MCEM E-step argument that justifies WarpLDA's own phases.

Freezing also collapses the acceptance rates to the two factors of Eq. (7):
with the doc proposal equal to the delayed document factor of the target,

    π_doc  = min{1, (C_wt + β)(C_s + β̄) / ((C_ws + β)(C_t + β̄))}

and with the word proposal equal to the delayed word/topic factor,

    π_word = min{1, (C_dt + α_t) / (C_ds + α_s)}.

The stale per-word alias tables of the scalar path become one exact batched
draw from the frozen ``(V, K)`` proposal table (a single flattened
``searchsorted``), refreshed every sweep.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.draws import prepare_table, table_categorical_draws
from repro.kernels.proposals import positioning_mixture_proposal
from repro.sampling.alias import AliasTable

__all__ = ["delayed_cycle_sweep"]


def delayed_cycle_sweep(
    state,
    alpha: np.ndarray,
    alpha_sum: float,
    beta: float,
    beta_sum: float,
    num_mh_steps: int,
    rng: np.random.Generator,
    alpha_alias: Optional[AliasTable] = None,
) -> None:
    """One delayed-count LightLDA sweep over every token of the corpus.

    One "MH step" is a full cycle (doc-proposal move then word-proposal
    move), matching the scalar sampler's use of ``M``.  Mutates ``state`` in
    place.  The count structures are updated *incrementally* (old
    assignments subtracted, new ones added) rather than rebuilt, so imported
    AD-LDA global word-topic counts — which a rebuild would silently reduce
    to the shard-local contribution — survive the sweep exactly as they do
    on the scalar path.
    """
    corpus = state.corpus
    num_topics = state.num_topics
    num_tokens = corpus.num_tokens
    words = corpus.token_words
    docs = corpus.token_documents
    token_offset = corpus.doc_offsets[docs]
    token_length = corpus.document_lengths()[docs]

    frozen_assignments = state.assignments.copy()
    frozen_doc = state.doc_topic
    frozen_word = state.word_topic
    frozen_topic = state.topic_counts.astype(np.float64)
    # The frozen word-proposal table, shared by every token of a word.
    word_table = (frozen_word + beta) / (frozen_topic + beta_sum)
    word_cdf = prepare_table(word_table)
    mixture_weight = token_length / (token_length + alpha_sum)

    current = frozen_assignments.copy()
    for _ in range(num_mh_steps):
        # Doc-proposal move: π_doc (word/topic factor only, see module doc).
        proposed = positioning_mixture_proposal(
            frozen_assignments,
            token_offset,
            token_length,
            mixture_weight,
            num_topics,
            rng,
            alpha_alias=alpha_alias,
        )
        ratio = (
            (frozen_word[words, proposed] + beta)
            * (frozen_topic[current] + beta_sum)
        ) / (
            (frozen_word[words, current] + beta)
            * (frozen_topic[proposed] + beta_sum)
        )
        accept = rng.random(num_tokens) < ratio
        current = np.where(accept, proposed, current)

        # Word-proposal move: π_word (document factor only).
        proposed = table_categorical_draws(word_cdf, num_topics, words, rng)
        ratio = (frozen_doc[docs, proposed] + alpha[proposed]) / (
            frozen_doc[docs, current] + alpha[current]
        )
        accept = rng.random(num_tokens) < ratio
        current = np.where(accept, proposed, current)

    state.assignments[:] = current
    np.subtract.at(state.doc_topic, (docs, frozen_assignments), 1)
    np.add.at(state.doc_topic, (docs, current), 1)
    np.subtract.at(state.word_topic, (words, frozen_assignments), 1)
    np.add.at(state.word_topic, (words, current), 1)
    state.topic_counts += np.bincount(
        current, minlength=num_topics
    ) - np.bincount(frozen_assignments, minlength=num_topics)
