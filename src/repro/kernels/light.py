"""LightLDA's cycle proposals as a delayed-count, token-parallel sweep.

Scalar LightLDA (:mod:`repro.samplers.lightlda`) alternates two O(1)
proposals per token — ``q_doc(k) ∝ C_dk + α_k`` and
``q_word(k) ∝ (C_wk + β)/(C_k + β̄)`` — updating counts *instantly* after
every accepted move, which forces a Python loop over tokens.

The kernel applies WarpLDA's delayed-count reordering (Sec. 4.2) to the same
cycle: all counts (and the assignments the random-positioning draw reads) are
frozen at the start of the sweep, so every token's ``M`` proposal cycles
become independent and the whole corpus runs as a flat vectorised chain —
precisely the MCEM E-step argument that justifies WarpLDA's own phases.

Freezing also collapses the acceptance rates to the two factors of Eq. (7):
with the doc proposal equal to the delayed document factor of the target,

    π_doc  = min{1, (C_wt + β)(C_s + β̄) / ((C_ws + β)(C_t + β̄))}

and with the word proposal equal to the delayed word/topic factor,

    π_word = min{1, (C_dt + α_t) / (C_ds + α_s)}.

The stale per-word alias tables of the scalar path become one exact batched
draw from the frozen ``(V, K)`` proposal table (a single flattened
``searchsorted``), refreshed every sweep.

Threaded execution: because *everything* the proposal cycles read is frozen
at sweep entry, the token axis splits into fixed-size chunks
(:data:`CHUNK_TOKENS`, a pure function of the corpus — never of the thread
count) that run as independent :mod:`repro.kernels.pool` tasks, each writing
a disjoint slice of the new-assignment vector with its own RNG stream.  The
count updates stay serial at the end of the sweep, so the result is
bit-identical for every thread count.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

import numpy as np

from repro.kernels import pool
from repro.kernels.buckets import MAX_SLAB_CELLS
from repro.kernels.draws import prepare_table, table_categorical_draws
from repro.kernels.proposals import positioning_mixture_proposal
from repro.sampling.alias import AliasTable

__all__ = ["delayed_cycle_sweep"]

#: Tokens per pool task.  Matches the slab-cell budget of the other kernels
#: so a chunk's working set (a handful of per-token vectors) stays
#: cache-friendly while each task still amortises its dispatch cost.
CHUNK_TOKENS = MAX_SLAB_CELLS


def _sweep_chunk(
    current: np.ndarray,
    start: int,
    stop: int,
    frozen_assignments: np.ndarray,
    frozen_doc: np.ndarray,
    frozen_word: np.ndarray,
    frozen_topic: np.ndarray,
    word_cdf: np.ndarray,
    words: np.ndarray,
    docs: np.ndarray,
    token_offset: np.ndarray,
    token_length: np.ndarray,
    mixture_weight: np.ndarray,
    alpha: np.ndarray,
    beta: float,
    beta_sum: float,
    num_topics: int,
    num_mh_steps: int,
    rng: np.random.Generator,
    alpha_alias: Optional[AliasTable],
) -> None:
    """Run the proposal cycles for tokens ``[start, stop)`` (one pool task).

    Writes the chunk's slice of ``current`` in place (slices are disjoint
    across tasks); every other argument is sweep-frozen and only read.  The
    random-positioning proposal reads the *full* frozen assignment vector —
    a token's document may span chunk boundaries — which is safe precisely
    because it is frozen.
    """
    chunk_words = words[start:stop]
    chunk_docs = docs[start:stop]
    chunk_current = current[start:stop].copy()
    num_chunk = stop - start
    for _ in range(num_mh_steps):
        # Doc-proposal move: π_doc (word/topic factor only, see module doc).
        proposed = positioning_mixture_proposal(
            frozen_assignments,
            token_offset[start:stop],
            token_length[start:stop],
            mixture_weight[start:stop],
            num_topics,
            rng,
            alpha_alias=alpha_alias,
        )
        ratio = (
            (frozen_word[chunk_words, proposed] + beta)
            * (frozen_topic[chunk_current] + beta_sum)
        ) / (
            (frozen_word[chunk_words, chunk_current] + beta)
            * (frozen_topic[proposed] + beta_sum)
        )
        accept = rng.random(num_chunk) < ratio
        chunk_current = np.where(accept, proposed, chunk_current)

        # Word-proposal move: π_word (document factor only).
        proposed = table_categorical_draws(word_cdf, num_topics, chunk_words, rng)
        ratio = (frozen_doc[chunk_docs, proposed] + alpha[proposed]) / (
            frozen_doc[chunk_docs, chunk_current] + alpha[chunk_current]
        )
        accept = rng.random(num_chunk) < ratio
        chunk_current = np.where(accept, proposed, chunk_current)
    current[start:stop] = chunk_current


def delayed_cycle_sweep(
    state,
    alpha: np.ndarray,
    alpha_sum: float,
    beta: float,
    beta_sum: float,
    num_mh_steps: int,
    rng: np.random.Generator,
    alpha_alias: Optional[AliasTable] = None,
    threads: Optional[int] = None,
    chunk_tokens: Optional[int] = None,
) -> None:
    """One delayed-count LightLDA sweep over every token of the corpus.

    One "MH step" is a full cycle (doc-proposal move then word-proposal
    move), matching the scalar sampler's use of ``M``.  Mutates ``state`` in
    place.  The count structures are updated *incrementally* (old
    assignments subtracted, new ones added) rather than rebuilt, so imported
    AD-LDA global word-topic counts — which a rebuild would silently reduce
    to the shard-local contribution — survive the sweep exactly as they do
    on the scalar path.

    The token axis splits into ``chunk_tokens``-sized tasks (default
    :data:`CHUNK_TOKENS`) dispatched through :mod:`repro.kernels.pool` with
    per-chunk RNG streams; the chunking is independent of ``threads``, so the
    sweep is bit-identical for every thread count (though changing
    ``chunk_tokens`` itself selects a different — equally valid —
    trajectory).
    """
    corpus = state.corpus
    num_topics = state.num_topics
    num_tokens = corpus.num_tokens
    if num_tokens == 0:
        return
    if chunk_tokens is None:
        chunk_tokens = CHUNK_TOKENS
    if chunk_tokens <= 0:
        raise ValueError(f"chunk_tokens must be positive, got {chunk_tokens}")
    words = corpus.token_words
    docs = corpus.token_documents
    token_offset = corpus.doc_offsets[docs]
    token_length = corpus.document_lengths()[docs]

    frozen_assignments = state.assignments.copy()
    frozen_doc = state.doc_topic
    frozen_word = state.word_topic
    frozen_topic = state.topic_counts.astype(np.float64)
    # The frozen word-proposal table, shared by every token of a word.
    word_table = (frozen_word + beta) / (frozen_topic + beta_sum)
    word_cdf = prepare_table(word_table)
    mixture_weight = token_length / (token_length + alpha_sum)

    current = frozen_assignments.copy()
    starts = list(range(0, num_tokens, chunk_tokens))
    chunk_rngs = pool.spawn_task_rngs(rng, len(starts))
    tasks = [
        partial(
            _sweep_chunk,
            current,
            start,
            min(start + chunk_tokens, num_tokens),
            frozen_assignments,
            frozen_doc,
            frozen_word,
            frozen_topic,
            word_cdf,
            words,
            docs,
            token_offset,
            token_length,
            mixture_weight,
            alpha,
            beta,
            beta_sum,
            num_topics,
            num_mh_steps,
            chunk_rngs[index],
            alpha_alias,
        )
        for index, start in enumerate(starts)
    ]
    pool.run_tasks(tasks, threads=threads, label="light.sweep")

    state.assignments[:] = current
    np.subtract.at(state.doc_topic, (docs, frozen_assignments), 1)
    np.add.at(state.doc_topic, (docs, current), 1)
    np.subtract.at(state.word_topic, (words, frozen_assignments), 1)
    np.add.at(state.word_topic, (words, current), 1)
    state.topic_counts += np.bincount(
        current, minlength=num_topics
    ) - np.bincount(frozen_assignments, minlength=num_topics)
