"""Blocked dense collapsed-Gibbs kernel (Eq. 1, batched).

Plain CGS enumerates the full conditional

    p(z = k | rest) ∝ (C_dk + α_k)(C_wk + β) / (C_k + β̄)        (Eq. 1)

per token, which costs a Python-interpreter iteration per token.  The blocked
kernel enumerates the conditional for a whole *document block* at once: one
``(T, K)`` weight matrix built from three fancy-indexed gathers, one
cumulative sum, one batched inverse-CDF draw, and one scatter of the count
deltas.

Semantics: the counts are **frozen at the start of each block** (each token
still excludes its own assignment — the ``¬dn`` superscript), so tokens
within a block do not see each other's updates.  This is the standard
delayed-count device (AD-LDA within a block; the same reordering argument as
WarpLDA's Sec. 4.2): the chain is statistically equivalent and targets the
same stationary distribution, but is not a bit-identical replay of the
sequential scan — the scalar path remains the oracle.

With ``stale_word_counts=True`` the word/topic factor is additionally frozen
across the *inner refresh passes of a block* while the document factor stays
pass-fresh.  That is the AliasLDA decomposition (fresh sparse document part,
stale word part; the scalar sampler refreshes a word's alias table only
every ~K draws) under delayed counts — and with the proposal equal to the
stale conditional, AliasLDA's Metropolis-Hastings staleness correction
cancels identically, so the kernel draws from the stale conditional
directly.

Threaded execution
------------------
Blocks are grouped into fixed **waves** (:func:`_wave_size` — a pure
function of the block count, never of the thread count).  Within a wave
every block runs as one :mod:`repro.kernels.pool` task: its documents (and
so its ``doc_topic`` rows and assignment slice) are exclusively its own and
mutate live, while the shared ``word_topic``/``topic_counts`` stay frozen at
wave entry — each block tracks its own updates in local copies and returns
them as count deltas, which the calling thread applies serially in block
order after the wave.  That is the AD-LDA delayed-count device at wave
granularity; with fewer than ``2 * MIN_WAVES`` blocks the wave size is 1 and
the sweep reduces to the previous strictly block-sequential semantics.
Per-block RNG streams are spawned once per sweep from the main generator
(:func:`repro.kernels.pool.spawn_task_rngs`), so results are bit-identical
for every thread count.
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional, Tuple

import numpy as np

from repro.kernels import pool
from repro.kernels.draws import row_categorical_draw

__all__ = ["block_conditionals", "blocked_gibbs_sweep"]

#: Cap on ``T * K`` float64 cells per block's weight matrix (~4 MB).
MAX_BLOCK_CELLS = 1 << 19

#: Default cap on tokens per block even when ``K`` is small.  Blocks are the
#: staleness unit of the delayed-count semantics: smaller blocks refresh the
#: counts more often (better per-iteration mixing), larger blocks amortise
#: more Python overhead.  2k tokens keeps per-block staleness negligible
#: while the per-block NumPy work still dwarfs the interpreter cost.
DEFAULT_BLOCK_TOKENS = 2048

#: Cap on blocks per wave (the concurrency the sweep exposes to the pool).
MAX_WAVE_BLOCKS = 8

#: Minimum number of waves per sweep: corpora with fewer than
#: ``2 * MIN_WAVES`` blocks run with wave size 1 (strictly sequential
#: blocks, the pre-threading semantics), so small-corpus trajectories keep
#: their per-block count freshness.
MIN_WAVES = 8


def _wave_size(num_blocks: int) -> int:
    """Blocks per wave — a pure function of the block count only.

    Never depends on the thread count: the wave structure (like the block
    structure) is part of the trajectory, which must be identical whether
    the wave's blocks run on one thread or eight.
    """
    return max(1, min(MAX_WAVE_BLOCKS, num_blocks // MIN_WAVES))


def block_conditionals(
    state,
    token_start: int,
    token_stop: int,
    alpha: np.ndarray,
    beta: float,
    beta_sum: float,
    word_rows: Optional[np.ndarray] = None,
    topic_counts: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unnormalised Eq. (1) conditionals for tokens ``[token_start, token_stop)``.

    Each row equals ``CollapsedGibbsSampler.conditional_distribution`` for the
    corresponding token, evaluated against the counts as they stand now (the
    token's own assignment excluded).  ``word_rows`` (pre-gathered per-token
    ``(T, K)`` word-topic rows) and ``topic_counts`` optionally substitute
    frozen copies for the word/topic factor.
    """
    corpus = state.corpus
    docs = corpus.token_documents[token_start:token_stop]
    words = corpus.token_words[token_start:token_stop]
    current = state.assignments[token_start:token_stop]
    topic_source = state.topic_counts if topic_counts is None else topic_counts

    doc_rows = state.doc_topic[docs].astype(np.float64)
    if word_rows is None:
        word_rows = state.word_topic[words].astype(np.float64)
    else:
        word_rows = word_rows.astype(np.float64)
    rows = np.arange(docs.size)
    doc_rows[rows, current] -= 1.0
    word_rows[rows, current] -= 1.0
    # Live counts include the token itself, so the exclusion cannot go
    # negative; block-frozen counts can (the token moved in an earlier
    # block), so clamp to keep every weight non-negative.
    np.maximum(doc_rows, 0.0, out=doc_rows)
    np.maximum(word_rows, 0.0, out=word_rows)
    numerator = (doc_rows + alpha) * (word_rows + beta)
    # The topic denominator differs from a plain broadcast of the global
    # vector only in the current-topic cell of each row, so fix that one
    # column instead of tiling a (T, K) copy.
    topic_row = topic_source.astype(np.float64)
    weights = numerator / (topic_row + beta_sum)
    excluded = np.maximum(topic_row[current] - 1.0, 0.0) + beta_sum
    weights[rows, current] = numerator[rows, current] / excluded
    return weights


def _plan_blocks(
    doc_offsets: np.ndarray, num_documents: int, max_block_tokens: int
) -> List[Tuple[int, int]]:
    """Contiguous document blocks of at most ``max_block_tokens`` tokens.

    A pure function of the corpus layout and the token cap — the block list
    (like the wave grouping built on it) never depends on the thread count.
    """
    blocks: List[Tuple[int, int]] = []
    doc_start = 0
    while doc_start < num_documents:
        doc_stop = doc_start + 1
        block_base = doc_offsets[doc_start]
        while (
            doc_stop < num_documents
            and doc_offsets[doc_stop + 1] - block_base <= max_block_tokens
        ):
            doc_stop += 1
        token_start, token_stop = int(block_base), int(doc_offsets[doc_stop])
        doc_start = doc_stop
        if token_start != token_stop:
            blocks.append((token_start, token_stop))
    return blocks


def _run_block(
    state,
    token_start: int,
    token_stop: int,
    alpha: np.ndarray,
    beta: float,
    beta_sum: float,
    rng: np.random.Generator,
    stale_word_counts: bool,
    inner_passes: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample one block against wave-frozen word/topic counts (one pool task).

    Mutates ``state`` in place, but only its block-exclusive parts: the
    block's assignment slice and its documents' ``doc_topic`` rows (documents
    are contiguous and disjoint across blocks).  The shared
    ``word_topic``/``topic_counts`` are only read — each pass sees the
    wave-entry values plus this block's own updates, tracked in local copies
    — and the block's net contribution comes back as
    ``(unique_words, word_delta, topic_delta)`` for the caller to apply
    serially after the wave.
    """
    corpus = state.corpus
    num_topics = state.num_topics
    docs = corpus.token_documents[token_start:token_stop]
    words = corpus.token_words[token_start:token_stop]
    unique_words, inverse = np.unique(words, return_inverse=True)

    base_word = state.word_topic[unique_words]
    base_topic = state.topic_counts.copy()
    local_word = base_word.astype(np.float64)
    local_topic = base_topic.astype(np.float64)
    initial = state.assignments[token_start:token_stop].copy()

    for _ in range(inner_passes):
        # The stale (AliasLDA) decomposition freezes the word/topic factor at
        # wave entry; the fresh path folds this block's own earlier passes in.
        word_rows = (
            base_word[inverse].astype(np.float64)
            if stale_word_counts
            else local_word[inverse]
        )
        topic_source = base_topic if stale_word_counts else local_topic
        weights = block_conditionals(
            state,
            token_start,
            token_stop,
            alpha,
            beta,
            beta_sum,
            word_rows=word_rows,
            topic_counts=topic_source,
        )
        new_topics = row_categorical_draw(weights, rng)

        old_topics = state.assignments[token_start:token_stop].copy()
        state.assignments[token_start:token_stop] = new_topics
        np.subtract.at(state.doc_topic, (docs, old_topics), 1)
        np.add.at(state.doc_topic, (docs, new_topics), 1)
        if not stale_word_counts:
            np.subtract.at(local_word, (inverse, old_topics), 1.0)
            np.add.at(local_word, (inverse, new_topics), 1.0)
            local_topic += np.bincount(
                new_topics, minlength=num_topics
            ) - np.bincount(old_topics, minlength=num_topics)

    final = state.assignments[token_start:token_stop]
    word_delta = np.zeros((unique_words.size, num_topics), dtype=np.int64)
    np.subtract.at(word_delta, (inverse, initial), 1)
    np.add.at(word_delta, (inverse, final), 1)
    topic_delta = np.bincount(final, minlength=num_topics) - np.bincount(
        initial, minlength=num_topics
    )
    return unique_words, word_delta, topic_delta


def blocked_gibbs_sweep(
    state,
    alpha: np.ndarray,
    beta: float,
    beta_sum: float,
    rng: np.random.Generator,
    max_block_tokens: Optional[int] = None,
    stale_word_counts: bool = False,
    inner_passes: int = 2,
    threads: Optional[int] = None,
) -> None:
    """One full blocked-Gibbs sweep over the corpus, document blocks in order.

    Mutates ``state`` in place and leaves all three count structures
    consistent with the assignments (``TopicState.check_consistency`` holds
    after every wave).

    ``inner_passes`` re-enumerates and re-draws each block that many times,
    refreshing the block's counts between passes.  One pass is the pure
    delayed draw; the default of two restores most of the within-block
    feedback the sequential scan gets for free (a document's tokens
    coordinating onto a topic within one sweep costs sequential CGS nothing,
    but a frozen block cannot see it) at a small constant-factor cost — the
    per-iteration mixing then matches or beats the scalar scan.  With
    ``stale_word_counts=True`` only the document factor refreshes between
    passes; the word/topic factor stays frozen at block entry.

    ``threads`` (per :func:`repro.kernels.pool.resolve_threads`) runs each
    wave's blocks concurrently; the wave structure and per-block RNG streams
    are thread-count-invariant, so the sweep is bit-identical for any value.
    """
    corpus = state.corpus
    num_topics = state.num_topics
    if max_block_tokens is None:
        max_block_tokens = max(1, min(DEFAULT_BLOCK_TOKENS, MAX_BLOCK_CELLS // num_topics))
    if max_block_tokens <= 0:
        raise ValueError(f"max_block_tokens must be positive, got {max_block_tokens}")
    if inner_passes <= 0:
        raise ValueError(f"inner_passes must be positive, got {inner_passes}")

    blocks = _plan_blocks(
        corpus.doc_offsets, corpus.num_documents, max_block_tokens
    )
    if not blocks:
        return
    block_rngs = pool.spawn_task_rngs(rng, len(blocks))
    wave = _wave_size(len(blocks))
    for wave_start in range(0, len(blocks), wave):
        wave_blocks = blocks[wave_start : wave_start + wave]
        tasks = [
            partial(
                _run_block,
                state,
                token_start,
                token_stop,
                alpha,
                beta,
                beta_sum,
                block_rngs[wave_start + offset],
                stale_word_counts,
                inner_passes,
            )
            for offset, (token_start, token_stop) in enumerate(wave_blocks)
        ]
        results = pool.run_tasks(tasks, threads=threads, label="cgs.wave")
        # Deltas apply serially, in block order, on the calling thread: the
        # shared word/topic counts advance only at wave boundaries.
        for unique_words, word_delta, topic_delta in results:
            state.word_topic[unique_words] += word_delta
            state.topic_counts += topic_delta
