"""Blocked dense collapsed-Gibbs kernel (Eq. 1, batched).

Plain CGS enumerates the full conditional

    p(z = k | rest) ∝ (C_dk + α_k)(C_wk + β) / (C_k + β̄)        (Eq. 1)

per token, which costs a Python-interpreter iteration per token.  The blocked
kernel enumerates the conditional for a whole *document block* at once: one
``(T, K)`` weight matrix built from three fancy-indexed gathers, one
cumulative sum, one batched inverse-CDF draw, and one scatter of the count
deltas.

Semantics: the counts are **frozen at the start of each block** (each token
still excludes its own assignment — the ``¬dn`` superscript), so tokens
within a block do not see each other's updates.  This is the standard
delayed-count device (AD-LDA within a block; the same reordering argument as
WarpLDA's Sec. 4.2): the chain is statistically equivalent and targets the
same stationary distribution, but is not a bit-identical replay of the
sequential scan — the scalar path remains the oracle.

With ``stale_word_counts=True`` the word/topic factor is additionally frozen
across the *inner refresh passes of a block* while the document factor stays
pass-fresh.  That is the AliasLDA decomposition (fresh sparse document part,
stale word part; the scalar sampler refreshes a word's alias table only
every ~K draws) under delayed counts — and with the proposal equal to the
stale conditional, AliasLDA's Metropolis-Hastings staleness correction
cancels identically, so the kernel draws from the stale conditional
directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.draws import row_categorical_draw

__all__ = ["block_conditionals", "blocked_gibbs_sweep"]

#: Cap on ``T * K`` float64 cells per block's weight matrix (~4 MB).
MAX_BLOCK_CELLS = 1 << 19

#: Default cap on tokens per block even when ``K`` is small.  Blocks are the
#: staleness unit of the delayed-count semantics: smaller blocks refresh the
#: counts more often (better per-iteration mixing), larger blocks amortise
#: more Python overhead.  2k tokens keeps per-block staleness negligible
#: while the per-block NumPy work still dwarfs the interpreter cost.
DEFAULT_BLOCK_TOKENS = 2048


def block_conditionals(
    state,
    token_start: int,
    token_stop: int,
    alpha: np.ndarray,
    beta: float,
    beta_sum: float,
    word_rows: Optional[np.ndarray] = None,
    topic_counts: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unnormalised Eq. (1) conditionals for tokens ``[token_start, token_stop)``.

    Each row equals ``CollapsedGibbsSampler.conditional_distribution`` for the
    corresponding token, evaluated against the counts as they stand now (the
    token's own assignment excluded).  ``word_rows`` (pre-gathered per-token
    ``(T, K)`` word-topic rows) and ``topic_counts`` optionally substitute
    frozen copies for the word/topic factor.
    """
    corpus = state.corpus
    docs = corpus.token_documents[token_start:token_stop]
    words = corpus.token_words[token_start:token_stop]
    current = state.assignments[token_start:token_stop]
    topic_source = state.topic_counts if topic_counts is None else topic_counts

    doc_rows = state.doc_topic[docs].astype(np.float64)
    if word_rows is None:
        word_rows = state.word_topic[words].astype(np.float64)
    else:
        word_rows = word_rows.astype(np.float64)
    rows = np.arange(docs.size)
    doc_rows[rows, current] -= 1.0
    word_rows[rows, current] -= 1.0
    # Live counts include the token itself, so the exclusion cannot go
    # negative; block-frozen counts can (the token moved in an earlier
    # block), so clamp to keep every weight non-negative.
    np.maximum(doc_rows, 0.0, out=doc_rows)
    np.maximum(word_rows, 0.0, out=word_rows)
    numerator = (doc_rows + alpha) * (word_rows + beta)
    # The topic denominator differs from a plain broadcast of the global
    # vector only in the current-topic cell of each row, so fix that one
    # column instead of tiling a (T, K) copy.
    topic_row = topic_source.astype(np.float64)
    weights = numerator / (topic_row + beta_sum)
    excluded = np.maximum(topic_row[current] - 1.0, 0.0) + beta_sum
    weights[rows, current] = numerator[rows, current] / excluded
    return weights


def blocked_gibbs_sweep(
    state,
    alpha: np.ndarray,
    beta: float,
    beta_sum: float,
    rng: np.random.Generator,
    max_block_tokens: Optional[int] = None,
    stale_word_counts: bool = False,
    inner_passes: int = 2,
) -> None:
    """One full blocked-Gibbs sweep over the corpus, document blocks in order.

    Mutates ``state`` in place and leaves all three count structures
    consistent with the assignments (``TopicState.check_consistency`` holds
    after every block).

    ``inner_passes`` re-enumerates and re-draws each block that many times,
    refreshing the block's counts between passes.  One pass is the pure
    delayed draw; the default of two restores most of the within-block
    feedback the sequential scan gets for free (a document's tokens
    coordinating onto a topic within one sweep costs sequential CGS nothing,
    but a frozen block cannot see it) at a small constant-factor cost — the
    per-iteration mixing then matches or beats the scalar scan.  With
    ``stale_word_counts=True`` only the document factor refreshes between
    passes; the word/topic factor stays frozen at block entry.
    """
    corpus = state.corpus
    num_topics = state.num_topics
    if max_block_tokens is None:
        max_block_tokens = max(1, min(DEFAULT_BLOCK_TOKENS, MAX_BLOCK_CELLS // num_topics))
    if max_block_tokens <= 0:
        raise ValueError(f"max_block_tokens must be positive, got {max_block_tokens}")
    if inner_passes <= 0:
        raise ValueError(f"inner_passes must be positive, got {inner_passes}")

    doc_offsets = corpus.doc_offsets
    token_docs = corpus.token_documents
    token_words = corpus.token_words
    num_documents = corpus.num_documents

    doc_start = 0
    while doc_start < num_documents:
        doc_stop = doc_start + 1
        block_base = doc_offsets[doc_start]
        while (
            doc_stop < num_documents
            and doc_offsets[doc_stop + 1] - block_base <= max_block_tokens
        ):
            doc_stop += 1
        token_start, token_stop = int(block_base), int(doc_offsets[doc_stop])
        doc_start = doc_stop
        if token_start == token_stop:
            continue

        docs = token_docs[token_start:token_stop]
        words = token_words[token_start:token_stop]
        frozen_word_rows = None
        frozen_topic = None
        if stale_word_counts:
            frozen_word_rows = state.word_topic[words].astype(np.float64)
            frozen_topic = state.topic_counts.copy()
        for _ in range(inner_passes):
            weights = block_conditionals(
                state,
                token_start,
                token_stop,
                alpha,
                beta,
                beta_sum,
                word_rows=frozen_word_rows,
                topic_counts=frozen_topic,
            )
            new_topics = row_categorical_draw(weights, rng)

            old_topics = state.assignments[token_start:token_stop].copy()
            state.assignments[token_start:token_stop] = new_topics
            np.subtract.at(state.doc_topic, (docs, old_topics), 1)
            np.add.at(state.doc_topic, (docs, new_topics), 1)
            np.subtract.at(state.word_topic, (words, old_topics), 1)
            np.add.at(state.word_topic, (words, new_topics), 1)
            state.topic_counts += np.bincount(
                new_topics, minlength=num_topics
            ) - np.bincount(old_topics, minlength=num_topics)
