"""Optional Numba backend for the WarpLDA MH inner chains (``kernel="jit"``).

The slab path already batches the Eq. (7) accept/reject chain into whole-bucket
NumPy broadcasts, but each MH step still materialises several ``(R, L)``
temporaries.  When ``numba`` is importable, this module compiles the chain to
a single fused ``nogil`` loop — one pass over the chunk, zero temporaries —
which the warp kernel swaps in per chunk.

Bit-exactness contract
----------------------
The compiled chain consumes the **same pre-drawn uniforms** as the NumPy
chain (drawn before dispatch, from the same per-task generator) and performs
the Eq. (7) ratio arithmetic with the same operand association, and the row
counts are phase-frozen during the chain — so iterating steps-per-cell is
exactly equivalent to the NumPy path's cells-per-step order and the results
are bit-identical to ``kernel="slab"``.  The equivalence suite asserts this
whenever numba is present.

Everything degrades cleanly without numba: :func:`jit_available` returns
``False`` (also when ``REPRO_DISABLE_NUMBA`` is set — the CI fallback job),
and ``WarpLDA`` silently runs the chain on the NumPy path instead.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Any, Optional

__all__ = ["REPRO_DISABLE_NUMBA_ENV", "jit_available", "jit_mh_chain"]

#: Set (to anything but "" or "0") to force the NumPy fallback even when
#: numba is installed — how CI exercises the degraded path deterministically.
REPRO_DISABLE_NUMBA_ENV = "REPRO_DISABLE_NUMBA"


@lru_cache(maxsize=None)
def _load_chain(disabled: bool) -> Optional[Any]:
    """Import numba and compile the chain once; ``None`` when unavailable."""
    if disabled:
        return None
    try:
        import numba
    except ImportError:
        return None

    @numba.njit(nogil=True, cache=False)
    def mh_chain(
        current, proposals, tokens, mask, row_counts, prior, stale, beta_sum, uniforms
    ):  # pragma: no cover - requires numba
        """Eq. (7) accept/reject over one chunk; ``current`` is modified in place.

        ``prior`` is the per-topic prior vector (a constant β per topic for
        the word phase, α for the document phase); ``uniforms`` has shape
        ``(M, R, L)`` and was drawn by the caller so the RNG stream matches
        the NumPy chain exactly.
        """
        num_steps = uniforms.shape[0]
        num_rows, slab_len = current.shape
        accepted = 0
        for row in range(num_rows):
            for col in range(slab_len):
                if not mask[row, col]:
                    continue
                cur = current[row, col]
                token = tokens[row, col]
                for step in range(num_steps):
                    prop = proposals[step, token]
                    ratio = (
                        (row_counts[row, prop] + prior[prop])
                        * (stale[cur] + beta_sum)
                    ) / (
                        (row_counts[row, cur] + prior[cur])
                        * (stale[prop] + beta_sum)
                    )
                    if uniforms[step, row, col] < ratio:
                        cur = prop
                        accepted += 1
                current[row, col] = cur
        return accepted

    return mh_chain


def _disabled() -> bool:
    return os.environ.get(REPRO_DISABLE_NUMBA_ENV, "").strip() not in ("", "0")


def jit_available() -> bool:
    """True when the compiled chain can run (numba importable, not disabled)."""
    return _load_chain(_disabled()) is not None


def jit_mh_chain() -> Optional[Any]:
    """The compiled chain function, or ``None`` when unavailable."""
    return _load_chain(_disabled())
