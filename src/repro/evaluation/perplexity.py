"""Held-out perplexity for trained topic models."""

from __future__ import annotations

import numpy as np

from repro.corpus.corpus import Corpus

__all__ = ["held_out_perplexity", "document_topic_inference"]


def document_topic_inference(
    corpus: Corpus,
    phi: np.ndarray,
    alpha: float,
    num_iterations: int = 30,
) -> np.ndarray:
    """Fold-in inference of θ for held-out documents given fixed φ.

    Uses fixed-point EM updates of the document-topic proportions, which is
    the standard "fold-in" evaluation for LDA when φ is held fixed.
    """
    phi = np.asarray(phi, dtype=np.float64)
    if phi.ndim != 2:
        raise ValueError("phi must be a K x V matrix")
    num_topics = phi.shape[0]
    if num_iterations <= 0:
        raise ValueError("num_iterations must be positive")

    theta = np.full((corpus.num_documents, num_topics), 1.0 / num_topics)
    for doc_index in range(corpus.num_documents):
        words = corpus.document_words(doc_index)
        if words.size == 0:
            continue
        word_probs = phi[:, words]  # K x L_d
        proportions = theta[doc_index]
        for _ in range(num_iterations):
            responsibilities = word_probs * proportions[:, None]
            normaliser = responsibilities.sum(axis=0)
            normaliser[normaliser == 0] = 1e-300
            responsibilities /= normaliser
            proportions = responsibilities.sum(axis=1) + alpha
            proportions /= proportions.sum()
        theta[doc_index] = proportions
    return theta


def held_out_perplexity(
    corpus: Corpus,
    phi: np.ndarray,
    alpha: float,
    num_iterations: int = 30,
) -> float:
    """Perplexity of ``corpus`` under topics ``phi`` with folded-in θ.

    Lower is better.  ``phi`` is the ``K x V`` topic-word distribution (rows
    sum to one), e.g. the output of a trained sampler's ``phi()``.
    """
    phi = np.asarray(phi, dtype=np.float64)
    theta = document_topic_inference(corpus, phi, alpha, num_iterations)
    log_likelihood = 0.0
    total_tokens = 0
    for doc_index in range(corpus.num_documents):
        words = corpus.document_words(doc_index)
        if words.size == 0:
            continue
        token_probs = theta[doc_index] @ phi[:, words]
        token_probs = np.maximum(token_probs, 1e-300)
        log_likelihood += float(np.log(token_probs).sum())
        total_tokens += int(words.size)
    if total_tokens == 0:
        raise ValueError("corpus has no tokens")
    return float(np.exp(-log_likelihood / total_tokens))
