"""Held-out perplexity for trained topic models.

Fold-in inference is delegated to the vectorised batch kernel of the serving
layer (:func:`repro.serving.infer.em_fold_in`), so evaluating a held-out
corpus costs one NumPy kernel per document-length bucket instead of a Python
loop per document.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.corpus.corpus import Corpus
from repro.serving.infer import em_fold_in, perplexity_from_theta

__all__ = ["held_out_perplexity", "document_topic_inference"]


def _resolve_alpha(alpha: Union[float, np.ndarray], num_topics: int) -> np.ndarray:
    """Normalise a scalar or per-topic ``alpha`` to a length-``K`` vector."""
    alpha_vector = np.asarray(alpha, dtype=np.float64)
    if alpha_vector.ndim == 0:
        alpha_vector = np.full(num_topics, float(alpha_vector))
    if alpha_vector.shape != (num_topics,):
        raise ValueError(
            f"alpha must be a scalar or length-{num_topics} vector, got shape "
            f"{alpha_vector.shape}"
        )
    if np.any(alpha_vector <= 0):
        raise ValueError("alpha entries must be positive")
    return alpha_vector


def document_topic_inference(
    corpus: Corpus,
    phi: np.ndarray,
    alpha: Union[float, np.ndarray],
    num_iterations: int = 30,
) -> np.ndarray:
    """Fold-in inference of θ for held-out documents given fixed φ.

    Uses fixed-point EM updates of the document-topic proportions, which is
    the standard "fold-in" evaluation for LDA when φ is held fixed.  ``alpha``
    may be a symmetric scalar or a per-topic vector (matching
    :func:`repro.samplers.base.resolve_hyperparameters`).  Documents are
    batched by length and updated with one vectorised kernel per batch.
    """
    phi = np.asarray(phi, dtype=np.float64)
    if phi.ndim != 2:
        raise ValueError("phi must be a K x V matrix")
    alpha_vector = _resolve_alpha(alpha, phi.shape[0])
    documents = [corpus.document_words(d) for d in range(corpus.num_documents)]
    # Empty documents keep the prior mean α / ᾱ (uniform for symmetric α).
    return em_fold_in(documents, phi, alpha_vector, num_iterations)


def held_out_perplexity(
    corpus: Corpus,
    phi: np.ndarray,
    alpha: Union[float, np.ndarray],
    num_iterations: int = 30,
) -> float:
    """Perplexity of ``corpus`` under topics ``phi`` with folded-in θ.

    Lower is better.  ``phi`` is the ``K x V`` topic-word distribution (rows
    sum to one), e.g. the output of a trained sampler's ``phi()``; ``alpha``
    is a symmetric scalar or a per-topic vector.
    """
    phi = np.asarray(phi, dtype=np.float64)
    theta = document_topic_inference(corpus, phi, alpha, num_iterations)
    documents = [corpus.document_words(d) for d in range(corpus.num_documents)]
    return perplexity_from_theta(documents, theta, phi)
