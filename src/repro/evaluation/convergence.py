"""Convergence tracking and the speedup metrics used in Fig. 5.

The paper reports, for every algorithm:

* log likelihood versus iteration and versus wall-clock time,
* the ratio of iterations (and of time) another algorithm needs relative to
  WarpLDA to reach a given log likelihood,
* token throughput per iteration.

:class:`ConvergenceTracker` captures those series during a ``fit`` run, and
:func:`iterations_to_reach` / :func:`time_to_reach` / :func:`speedup_ratio`
compute the derived ratios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = [
    "ConvergenceRecord",
    "ConvergenceTracker",
    "iterations_to_reach",
    "time_to_reach",
    "speedup_ratio",
]


@dataclass(frozen=True)
class ConvergenceRecord:
    """One measurement point of a training run."""

    iteration: int
    elapsed_seconds: float
    log_likelihood: float
    tokens_processed: int

    @property
    def throughput(self) -> float:
        """Tokens processed per second up to this point (0 if no time elapsed)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.tokens_processed / self.elapsed_seconds


@dataclass
class ConvergenceTracker:
    """Collects per-iteration measurements of a sampler run.

    Samplers call :meth:`record` once per iteration (the base class does this
    automatically when a tracker is passed to ``fit``).
    """

    label: str = ""
    records: List[ConvergenceRecord] = field(default_factory=list)
    _start_time: Optional[float] = field(default=None, repr=False)

    def start(self) -> None:
        """Reset the clock; called automatically on the first record."""
        self._start_time = time.perf_counter()

    def record(
        self,
        iteration: int,
        log_likelihood: float,
        tokens_processed: int,
        elapsed_seconds: Optional[float] = None,
    ) -> ConvergenceRecord:
        """Append one measurement and return it.

        ``elapsed_seconds`` may be supplied explicitly (the simulated cluster
        does this to report modelled rather than wall-clock time); otherwise
        the tracker's own clock is used.
        """
        if self._start_time is None:
            self.start()
        if elapsed_seconds is None:
            elapsed_seconds = time.perf_counter() - self._start_time
        record = ConvergenceRecord(
            iteration=iteration,
            elapsed_seconds=float(elapsed_seconds),
            log_likelihood=float(log_likelihood),
            tokens_processed=int(tokens_processed),
        )
        self.records.append(record)
        return record

    # -------------------------------------------------------------- #
    @property
    def iterations(self) -> List[int]:
        return [record.iteration for record in self.records]

    @property
    def times(self) -> List[float]:
        return [record.elapsed_seconds for record in self.records]

    @property
    def log_likelihoods(self) -> List[float]:
        return [record.log_likelihood for record in self.records]

    @property
    def final_log_likelihood(self) -> float:
        if not self.records:
            raise ValueError("tracker has no records")
        return self.records[-1].log_likelihood

    def best_log_likelihood(self) -> float:
        if not self.records:
            raise ValueError("tracker has no records")
        return max(record.log_likelihood for record in self.records)

    def __len__(self) -> int:
        return len(self.records)


def iterations_to_reach(tracker: ConvergenceTracker, target: float) -> Optional[int]:
    """First iteration at which the log likelihood reaches ``target``.

    Returns ``None`` if the run never reaches it.
    """
    for record in tracker.records:
        if record.log_likelihood >= target:
            return record.iteration
    return None


def time_to_reach(tracker: ConvergenceTracker, target: float) -> Optional[float]:
    """Elapsed seconds at which the log likelihood first reaches ``target``."""
    for record in tracker.records:
        if record.log_likelihood >= target:
            return record.elapsed_seconds
    return None


def speedup_ratio(
    baseline: ConvergenceTracker,
    reference: ConvergenceTracker,
    target: float,
    metric: str = "time",
) -> Optional[float]:
    """Ratio of baseline cost over reference cost to reach ``target``.

    This is the quantity plotted in Fig. 5 columns 3 and 4 (LightLDA or F+LDA
    over WarpLDA).  ``metric`` is ``"time"`` or ``"iterations"``.  Returns
    ``None`` if either run never reaches the target.
    """
    if metric == "time":
        baseline_cost = time_to_reach(baseline, target)
        reference_cost = time_to_reach(reference, target)
    elif metric == "iterations":
        baseline_cost = iterations_to_reach(baseline, target)
        reference_cost = iterations_to_reach(reference, target)
    else:
        raise ValueError(f"metric must be 'time' or 'iterations', got {metric!r}")
    if baseline_cost is None or reference_cost is None or reference_cost == 0:
        return None
    return baseline_cost / reference_cost
