"""Model-quality evaluation: likelihood, perplexity, coherence, convergence.

The paper's headline metric is the **log joint likelihood**
``log p(W, Z | α, β)`` (Sec. 6.1); :func:`log_joint_likelihood` implements it
exactly.  The remaining utilities (held-out perplexity, topic coherence, top
words, convergence tracking and speedup ratios) support the example
applications and the Fig. 5 style comparisons.
"""

from repro.evaluation.coherence import topic_coherence, top_words
from repro.evaluation.convergence import (
    ConvergenceRecord,
    ConvergenceTracker,
    iterations_to_reach,
    speedup_ratio,
    time_to_reach,
)
from repro.evaluation.likelihood import (
    log_joint_likelihood,
    log_joint_likelihood_from_assignments,
)
from repro.evaluation.perplexity import document_topic_inference, held_out_perplexity

__all__ = [
    "ConvergenceRecord",
    "ConvergenceTracker",
    "document_topic_inference",
    "held_out_perplexity",
    "iterations_to_reach",
    "log_joint_likelihood",
    "log_joint_likelihood_from_assignments",
    "speedup_ratio",
    "time_to_reach",
    "top_words",
    "topic_coherence",
    "time_to_reach",
]
