"""Model-quality evaluation: likelihood, perplexity, coherence, convergence.

The paper's headline metric is the **log joint likelihood**
``log p(W, Z | α, β)`` (Sec. 6.1); :func:`log_joint_likelihood` implements it
exactly.  The remaining utilities (held-out perplexity, topic coherence, top
words, convergence tracking and speedup ratios) support the example
applications and the Fig. 5 style comparisons.

Like the top-level package, the exports resolve lazily (PEP 562):
``held_out_perplexity`` runs on the serving layer's batched fold-in kernel,
and importing :mod:`repro.evaluation` for a likelihood number should not
drag :mod:`repro.serving` in with it.
"""

from importlib import import_module

#: Exported name → defining submodule, resolved on first attribute access.
_EXPORTS = {
    "top_words": "repro.evaluation.coherence",
    "topic_coherence": "repro.evaluation.coherence",
    "ConvergenceRecord": "repro.evaluation.convergence",
    "ConvergenceTracker": "repro.evaluation.convergence",
    "iterations_to_reach": "repro.evaluation.convergence",
    "speedup_ratio": "repro.evaluation.convergence",
    "time_to_reach": "repro.evaluation.convergence",
    "log_joint_likelihood": "repro.evaluation.likelihood",
    "log_joint_likelihood_from_assignments": "repro.evaluation.likelihood",
    "document_topic_inference": "repro.evaluation.perplexity",
    "held_out_perplexity": "repro.evaluation.perplexity",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        # Keep `repro.evaluation.perplexity`-style submodule access working,
        # as the eager imports used to bind it.
        try:
            value = import_module(f"repro.evaluation.{name}")
        except ModuleNotFoundError as exc:
            if exc.name != f"repro.evaluation.{name}":
                raise
            raise AttributeError(
                f"module 'repro.evaluation' has no attribute {name!r}"
            ) from None
    else:
        value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
