"""Topic quality diagnostics: top words and UMass topic coherence."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.corpus.corpus import Corpus

__all__ = ["top_words", "topic_coherence"]


def top_words(
    phi: np.ndarray,
    vocabulary,
    num_words: int = 10,
) -> List[List[str]]:
    """Return the ``num_words`` highest-probability words of every topic.

    Parameters
    ----------
    phi:
        ``K x V`` topic-word distribution.
    vocabulary:
        A :class:`~repro.corpus.vocabulary.Vocabulary` (or anything with a
        ``word(id)`` method).
    """
    phi = np.asarray(phi, dtype=np.float64)
    if phi.ndim != 2:
        raise ValueError("phi must be a K x V matrix")
    if num_words <= 0:
        raise ValueError("num_words must be positive")
    num_words = min(num_words, phi.shape[1])
    result = []
    for topic in phi:
        order = np.argsort(topic)[::-1][:num_words]
        result.append([vocabulary.word(int(word_id)) for word_id in order])
    return result


def topic_coherence(
    phi: np.ndarray,
    corpus: Corpus,
    num_words: int = 10,
    epsilon: float = 1.0,
) -> np.ndarray:
    """UMass coherence of each topic.

    ``C(t) = Σ_{i<j} log ((co_doc_count(w_i, w_j) + ε) / doc_count(w_j))`` over
    the topic's ``num_words`` top words, where document counts come from
    ``corpus``.  Higher (closer to zero) is better.
    """
    phi = np.asarray(phi, dtype=np.float64)
    if phi.ndim != 2:
        raise ValueError("phi must be a K x V matrix")
    if phi.shape[1] != corpus.vocabulary_size:
        raise ValueError(
            f"phi has {phi.shape[1]} words but the corpus vocabulary has "
            f"{corpus.vocabulary_size}"
        )
    num_words = min(num_words, phi.shape[1])

    # Document frequency and co-document frequency restricted to the words we
    # actually need (the union of all topics' top words).
    top_ids = [np.argsort(topic)[::-1][:num_words] for topic in phi]
    needed = np.unique(np.concatenate(top_ids))
    column_of = {int(word): i for i, word in enumerate(needed)}

    presence = np.zeros((corpus.num_documents, needed.size), dtype=bool)
    for doc_index in range(corpus.num_documents):
        words = np.unique(corpus.document_words(doc_index))
        for word in words:
            column = column_of.get(int(word))
            if column is not None:
                presence[doc_index, column] = True
    doc_freq = presence.sum(axis=0).astype(np.float64)
    co_freq = (presence.T.astype(np.float64) @ presence.astype(np.float64))

    coherences = np.zeros(phi.shape[0])
    for topic_index, words in enumerate(top_ids):
        score = 0.0
        for j in range(1, len(words)):
            for i in range(j):
                wi = column_of[int(words[i])]
                wj = column_of[int(words[j])]
                denominator = max(doc_freq[wj], 1.0)
                score += float(np.log((co_freq[wi, wj] + epsilon) / denominator))
        coherences[topic_index] = score
    return coherences
