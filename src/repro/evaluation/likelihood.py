"""Log joint likelihood ``log p(W, Z | α, β)``.

This is the metric used throughout the paper's evaluation (Sec. 6.1):

.. math::

    L = \\sum_d \\Big[\\log\\frac{\\Gamma(\\bar\\alpha)}{\\Gamma(\\bar\\alpha+L_d)}
        + \\sum_k \\log\\frac{\\Gamma(\\alpha_k+C_{dk})}{\\Gamma(\\alpha_k)}\\Big]
      + \\sum_k \\Big[\\log\\frac{\\Gamma(\\bar\\beta)}{\\Gamma(\\bar\\beta+C_k)}
        + \\sum_w \\log\\frac{\\Gamma(\\beta+C_{kw})}{\\Gamma(\\beta)}\\Big]

Only non-zero counts contribute to the inner sums, which keeps the computation
cheap even for large sparse count matrices.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
from scipy.special import gammaln

__all__ = ["log_joint_likelihood", "log_joint_likelihood_from_assignments"]


def _as_alpha_vector(alpha: Union[float, np.ndarray], num_topics: int) -> np.ndarray:
    alpha = np.asarray(alpha, dtype=np.float64)
    if alpha.ndim == 0:
        alpha = np.full(num_topics, float(alpha))
    if alpha.shape != (num_topics,):
        raise ValueError(
            f"alpha must be a scalar or a vector of length {num_topics}, got shape {alpha.shape}"
        )
    if np.any(alpha <= 0):
        raise ValueError("alpha entries must be positive")
    return alpha


def log_joint_likelihood(
    doc_topic: np.ndarray,
    word_topic: np.ndarray,
    alpha: Union[float, np.ndarray],
    beta: float,
) -> float:
    """Compute ``log p(W, Z | α, β)`` from the count matrices.

    Parameters
    ----------
    doc_topic:
        ``D x K`` matrix of counts ``C_dk``.
    word_topic:
        ``V x K`` matrix of counts ``C_wk``.
    alpha:
        Scalar (symmetric) or length-``K`` Dirichlet parameter of θ.
    beta:
        Symmetric Dirichlet parameter of φ.
    """
    doc_topic = np.asarray(doc_topic)
    word_topic = np.asarray(word_topic)
    if doc_topic.ndim != 2 or word_topic.ndim != 2:
        raise ValueError("doc_topic and word_topic must be 2-D count matrices")
    if doc_topic.shape[1] != word_topic.shape[1]:
        raise ValueError(
            "doc_topic and word_topic must agree on the number of topics, got "
            f"{doc_topic.shape[1]} and {word_topic.shape[1]}"
        )
    if doc_topic.sum() != word_topic.sum():
        raise ValueError(
            "doc_topic and word_topic must contain the same total number of tokens"
        )
    if beta <= 0:
        raise ValueError("beta must be positive")

    num_topics = doc_topic.shape[1]
    vocabulary_size = word_topic.shape[0]
    alpha_vector = _as_alpha_vector(alpha, num_topics)
    alpha_sum = float(alpha_vector.sum())
    beta_sum = float(beta * vocabulary_size)

    doc_lengths = doc_topic.sum(axis=1).astype(np.float64)
    topic_counts = word_topic.sum(axis=0).astype(np.float64)

    # Document part.  gammaln(alpha_k + C_dk) - gammaln(alpha_k) is zero for
    # zero counts, so restrict to the non-zero entries.
    doc_rows, doc_cols = np.nonzero(doc_topic)
    doc_part = float(
        np.sum(
            gammaln(alpha_vector[doc_cols] + doc_topic[doc_rows, doc_cols])
            - gammaln(alpha_vector[doc_cols])
        )
    )
    doc_part += float(
        np.sum(gammaln(alpha_sum) - gammaln(alpha_sum + doc_lengths))
    )

    # Topic/word part.
    word_rows, word_cols = np.nonzero(word_topic)
    word_part = float(
        np.sum(gammaln(beta + word_topic[word_rows, word_cols]) - gammaln(beta))
    )
    word_part += float(
        np.sum(gammaln(beta_sum) - gammaln(beta_sum + topic_counts))
    )

    return doc_part + word_part


def log_joint_likelihood_from_assignments(
    token_documents: np.ndarray,
    token_words: np.ndarray,
    assignments: np.ndarray,
    num_documents: int,
    vocabulary_size: int,
    num_topics: int,
    alpha: Union[float, np.ndarray],
    beta: float,
) -> float:
    """Compute ``log p(W, Z | α, β)`` directly from per-token assignments.

    Used by WarpLDA, which does not store the count matrices; they are built
    here on the fly.
    """
    token_documents = np.asarray(token_documents, dtype=np.int64)
    token_words = np.asarray(token_words, dtype=np.int64)
    assignments = np.asarray(assignments, dtype=np.int64)
    if not (token_documents.shape == token_words.shape == assignments.shape):
        raise ValueError("token_documents, token_words and assignments must align")
    if assignments.size and (assignments.min() < 0 or assignments.max() >= num_topics):
        raise ValueError("assignments contain out-of-range topics")

    doc_topic = np.zeros((num_documents, num_topics), dtype=np.int64)
    np.add.at(doc_topic, (token_documents, assignments), 1)
    word_topic = np.zeros((vocabulary_size, num_topics), dtype=np.int64)
    np.add.at(word_topic, (token_words, assignments), 1)
    return log_joint_likelihood(doc_topic, word_topic, alpha, beta)
