"""repro.analysis — the project's AST-based invariant linter.

A zero-dependency static-analysis framework (stdlib :mod:`ast` only) plus
six project-specific rule families that machine-check the invariants the
repo's guarantees rest on: RNG discipline (``RNG``), telemetry purity
(``OBS``), kernel purity (``KER``), lock discipline (``LOCK``),
multiprocessing pickling safety (``MP``) and API hygiene (``API``).  See
``docs/invariants.md`` for the rule catalogue and the reasoning behind
each rule, and :mod:`repro.analysis.core` for the framework itself.

Run it::

    python -m repro.analysis src/            # exit 0 = clean
    python -m repro.analysis --list-rules    # the rule catalogue

Suppress a single deliberate violation with a justified comment::

    self._hits += 1  # repro: noqa[LOCK001] — single-threaded stats path

Unused suppressions are themselves findings (``SUP001``), so stale noqa
comments cannot accumulate.
"""

from repro.analysis import checks as _checks  # registers built-in checkers
from repro.analysis.core import (
    Analyzer,
    AnalysisReport,
    Checker,
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    register_checker,
    registered_checkers,
)

__all__ = [
    "Analyzer",
    "AnalysisReport",
    "Checker",
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "register_checker",
    "registered_checkers",
]

del _checks
