"""The invariant-linter framework: findings, checkers, dispatch, suppression.

The repo's reproducibility guarantees (bit-identical instrumented runs,
seed-for-seed facade equivalence, crash-consistent publishes) rest on
invariants that no test can see directly — every random draw threads an
explicit generator, every hot-loop telemetry probe is gated, every shared
write happens under the owning lock.  This module is the machinery that
checks those invariants statically, on the stdlib :mod:`ast` alone:

* :class:`Finding` / :class:`Rule` — one violation, and the description of
  the invariant behind it;
* :class:`Checker` — plugin base class; subclasses declare ``RULES`` and
  ``visit_<NodeType>`` handlers and register with :func:`register_checker`;
* :class:`Analyzer` — walks each module's AST **once**, dispatching every
  node to every interested checker (single-pass visitor dispatch), then
  applies per-line ``# repro: noqa[RULE]`` suppressions — flagging the
  suppressions that matched nothing — and an optional committed baseline.

Checkers receive a :class:`ModuleContext` carrying the dotted module name,
source lines, the ancestor stack of the node being visited, and the scope
(function/class) stack, which is what makes context-sensitive rules (\"is
this call guarded by ``if obs.enabled``?\", \"is this store under ``with
self._lock``?\") single-pass-expressible.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Analyzer",
    "AnalysisReport",
    "Checker",
    "Finding",
    "ModuleContext",
    "Rule",
    "SUPPRESSION_RULE",
    "all_rules",
    "attribute_chain",
    "call_chain",
    "iter_python_files",
    "module_name_for",
    "register_checker",
    "registered_checkers",
    "root_name",
]

#: Rule code of the framework's own finding: a ``# repro: noqa`` comment
#: that suppressed nothing (stale after a fix, or a typo'd rule code).
SUPPRESSION_RULE = "SUP001"

#: Anchored to the start of the comment token, so prose *mentioning* the
#: marker (like this very comment) is not itself a suppression.
_NOQA_PATTERN = re.compile(
    r"\A#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)

#: Node types that open a new lexical scope for the context's scope stack.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@dataclass(frozen=True)
class Rule:
    """One checkable invariant: its code, summary, and the reason it exists."""

    code: str
    summary: str
    invariant: str


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


# --------------------------------------------------------------------- #
# AST helpers shared by the checkers
# --------------------------------------------------------------------- #
def attribute_chain(node: ast.AST) -> Optional[str]:
    """The dotted name of a ``Name``/``Attribute`` chain (else ``None``).

    ``np.random.default_rng`` → ``"np.random.default_rng"``; anything with a
    call, subscript or other expression in the middle returns ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_chain(node: ast.AST) -> Tuple[str, ...]:
    """Attribute/call descent of an expression, outermost attr last.

    Unlike :func:`attribute_chain` this sees *through* calls and subscripts:
    ``obs.registry.counter("x").value`` →
    ``("obs", "registry", "counter", "value")``.  The root element is the
    base name (or the called function's name for a call root).
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        else:
            return tuple(reversed(parts))


def root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` a subscript/attribute/call expression hangs off."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call, ast.Starred)):
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Starred):
            node = node.value
        else:
            node = node.func
    return node.id if isinstance(node, ast.Name) else None


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, walked up through ``__init__.py``s."""
    path = Path(path)
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield path


# --------------------------------------------------------------------- #
# Module context
# --------------------------------------------------------------------- #
class ModuleContext:
    """Everything a checker sees while one module is being walked."""

    def __init__(self, path: str, module: str, source: str, tree: ast.Module):
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.findings: List[Finding] = []
        #: Ancestors of the node currently being dispatched (module first,
        #: immediate parent last; the node itself is not included).
        self.ancestors: List[ast.AST] = []
        #: Enclosing scope nodes (functions/classes/lambdas), outermost first.
        self.scopes: List[ast.AST] = []

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(Finding(self.path, line, rule, message))

    def enclosing_function(self) -> Optional[ast.AST]:
        """Innermost enclosing function (``None`` at module/class level)."""
        for scope in reversed(self.scopes):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return scope
        return None

    def enclosing_class(self) -> Optional[ast.ClassDef]:
        """Innermost enclosing class (``None`` outside any class body)."""
        for scope in reversed(self.scopes):
            if isinstance(scope, ast.ClassDef):
                return scope
        return None


class Checker:
    """Base class for rule-family plugins.

    Subclasses set ``name`` (registry key) and ``RULES`` and implement any
    number of ``visit_<NodeType>(node, ctx)`` methods; the analyzer calls
    each handler exactly once per matching node during its single walk.
    ``begin_module`` / ``finish_module`` bracket the walk for per-module
    state (import tables, deferred whole-module checks).
    """

    name = "base"
    RULES: Tuple[Rule, ...] = ()

    def begin_module(self, ctx: ModuleContext) -> None:
        """Reset per-module state before the walk starts."""

    def finish_module(self, ctx: ModuleContext) -> None:
        """Emit findings that need the whole module (after the walk)."""


#: name → checker class, in registration order (dicts preserve it).
CHECKER_REGISTRY: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to :data:`CHECKER_REGISTRY`."""
    if cls.name in CHECKER_REGISTRY:
        raise ValueError(f"checker {cls.name!r} is already registered")
    CHECKER_REGISTRY[cls.name] = cls
    return cls


def registered_checkers() -> List[Type[Checker]]:
    """Every registered checker class, in registration order."""
    return list(CHECKER_REGISTRY.values())


def all_rules() -> List[Rule]:
    """Every rule of every registered checker, plus the framework's own."""
    rules = [
        Rule(
            SUPPRESSION_RULE,
            "unused `# repro: noqa` suppression",
            "a suppression that matches no finding is stale (the violation "
            "was fixed) or typo'd, and would silently mask a future one",
        )
    ]
    for cls in CHECKER_REGISTRY.values():
        rules.extend(cls.RULES)
    return sorted(rules, key=lambda rule: rule.code)


# --------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------- #
class _Suppression:
    __slots__ = ("line", "codes", "used")

    def __init__(self, line: int, codes: Optional[Set[str]]):
        self.line = line
        self.codes = codes  # None = suppress every rule on the line
        self.used = False

    def matches(self, finding: Finding) -> bool:
        return (
            finding.line == self.line
            and (self.codes is None or finding.rule in self.codes)
        )


def _scan_suppressions(source: str) -> List[_Suppression]:
    """Parse ``# repro: noqa[...]`` comments — real comment tokens only.

    Tokenizing (rather than scanning raw lines) keeps noqa examples inside
    docstrings and string literals from registering as suppressions.
    """
    suppressions = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_PATTERN.search(token.string)
            if match is None:
                continue
            codes = match.group("codes")
            parsed = (
                None
                if codes is None
                else {
                    code.strip().upper()
                    for code in codes.split(",")
                    if code.strip()
                }
            )
            suppressions.append(_Suppression(token.start[0], parsed))
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse catches first
        pass
    return suppressions


# --------------------------------------------------------------------- #
# Reports
# --------------------------------------------------------------------- #
@dataclass
class AnalysisReport:
    """The outcome of one analyzer run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def format_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} in {self.files_checked} files "
            f"({self.suppressed} suppressed, {self.baselined} baselined)"
        )
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# The analyzer
# --------------------------------------------------------------------- #
class Analyzer:
    """Single-pass AST analysis over a set of checkers.

    Parameters
    ----------
    checkers:
        Checker *instances* to run; defaults to one of each registered
        class.
    select / ignore:
        Optional rule-code filters (exact codes or family prefixes, e.g.
        ``"RNG"`` or ``"RNG003"``).  When either is given, unused-suppression
        detection is disabled — a noqa for a deselected rule is not stale.
    """

    def __init__(
        self,
        checkers: Optional[Sequence[Checker]] = None,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ):
        if checkers is None:
            checkers = [cls() for cls in registered_checkers()]
        self._checkers = list(checkers)
        self._select = tuple(code.upper() for code in select) if select else None
        self._ignore = tuple(code.upper() for code in ignore) if ignore else ()
        self._filtered = bool(select) or bool(ignore)
        self._handlers: Dict[str, List[Callable[[ast.AST, ModuleContext], None]]] = {}
        for checker in self._checkers:
            for attr in dir(checker):
                if attr.startswith("visit_"):
                    self._handlers.setdefault(attr[len("visit_"):], []).append(
                        getattr(checker, attr)
                    )

    # ------------------------------------------------------------------ #
    def check_source(
        self, source: str, path: str = "<string>", module: Optional[str] = None
    ) -> List[Finding]:
        """Analyze one module's source; returns its post-suppression findings."""
        tree = ast.parse(source, filename=path)
        if module is None:
            module = module_name_for(Path(path)) if path != "<string>" else "<string>"
        ctx = ModuleContext(path=path, module=module, source=source, tree=tree)
        for checker in self._checkers:
            checker.begin_module(ctx)
        self._walk(tree, ctx)
        for checker in self._checkers:
            checker.finish_module(ctx)
        return self._apply_suppressions(ctx)

    def check_file(self, path: Path) -> List[Finding]:
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return self.check_source(source, path=str(path), module=module_name_for(path))

    def check_paths(
        self,
        paths: Sequence[Path],
        baseline: Optional[Iterable[Tuple[str, str, str]]] = None,
    ) -> AnalysisReport:
        """Analyze files/directories; optionally subtract a baseline.

        ``baseline`` entries are ``(rule, path, message)`` triples (line
        numbers deliberately excluded — grandfathered findings survive
        unrelated edits above them).
        """
        report = AnalysisReport()
        baseline_set = set(baseline) if baseline is not None else set()
        for file_path in iter_python_files([Path(p) for p in paths]):
            findings = self.check_file(file_path)
            report.files_checked += 1
            for finding in findings:
                key = (finding.rule, Path(finding.path).as_posix(), finding.message)
                if key in baseline_set:
                    report.baselined += 1
                else:
                    report.findings.append(finding)
            report.suppressed += self._last_suppressed
        report.findings.sort()
        return report

    # ------------------------------------------------------------------ #
    def _walk(self, node: ast.AST, ctx: ModuleContext) -> None:
        for handler in self._handlers.get(type(node).__name__, ()):
            handler(node, ctx)
        is_scope = isinstance(node, _SCOPE_NODES)
        ctx.ancestors.append(node)
        if is_scope:
            ctx.scopes.append(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx)
        ctx.ancestors.pop()
        if is_scope:
            ctx.scopes.pop()

    _last_suppressed = 0

    def _apply_suppressions(self, ctx: ModuleContext) -> List[Finding]:
        suppressions = _scan_suppressions(ctx.source)
        kept: List[Finding] = []
        suppressed = 0
        for finding in sorted(ctx.findings):
            matched = False
            for suppression in suppressions:
                if suppression.matches(finding):
                    suppression.used = True
                    matched = True
            if matched:
                suppressed += 1
            else:
                kept.append(finding)
        self._last_suppressed = suppressed
        if not self._filtered:
            for suppression in suppressions:
                if not suppression.used:
                    codes = (
                        "all rules"
                        if suppression.codes is None
                        else ", ".join(sorted(suppression.codes))
                    )
                    kept.append(
                        Finding(
                            ctx.path,
                            suppression.line,
                            SUPPRESSION_RULE,
                            f"unused suppression ({codes}): nothing on this "
                            f"line triggers it — remove the noqa",
                        )
                    )
        return [finding for finding in kept if self._selected(finding.rule)]

    def _selected(self, code: str) -> bool:
        if any(code.startswith(prefix) for prefix in self._ignore):
            return False
        if self._select is None:
            return True
        return any(code.startswith(prefix) for prefix in self._select)
