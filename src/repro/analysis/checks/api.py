"""API hygiene: ``__all__`` truthfulness, lazy imports, honest deprecations.

* ``API001`` — a literal ``__all__`` must only name things the module
  actually binds (dangling names break ``from m import *`` and doc tools),
  and every public top-level class/function must be listed (unlisted
  public defs drift out of the documented surface).  Modules whose
  ``__all__`` is computed (the lazy packages) are skipped.
* ``API002`` — PR 5's lazy-import guarantee: ``repro/__init__`` and
  ``repro.evaluation`` may not import ``multiprocessing``/``concurrent``
  or the serving/streaming/training/api packages at module level;
  ``import repro`` must stay cheap and fork-safe.
* ``API003`` — a ``warnings.warn`` whose message says "deprecated" must
  pass ``DeprecationWarning`` (or a subclass); the default ``UserWarning``
  evades test suites' deprecation filters and tooling.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    Rule,
    attribute_chain,
    register_checker,
)

__all__ = ["ApiChecker"]

#: Modules bound by the lazy-import guarantee (PR 5).
_LAZY_MODULES = {"repro", "repro.evaluation"}

#: Imports that must not appear at module level in lazy modules.
_HEAVY_ROOTS = {"multiprocessing", "concurrent"}
_HEAVY_REPRO = {"serving", "streaming", "training", "api"}

_DEPRECATION_CATEGORIES = {
    "DeprecationWarning",
    "PendingDeprecationWarning",
    "FutureWarning",
}


def _literal_all(node: ast.Assign) -> Optional[List[str]]:
    """The string elements of a literal ``__all__``; ``None`` if computed."""
    if not isinstance(node.value, (ast.List, ast.Tuple)):
        return None
    names = []
    for element in node.value.elts:
        if not (
            isinstance(element, ast.Constant) and isinstance(element.value, str)
        ):
            return None
        names.append(element.value)
    return names


def _message_mentions_deprecated(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return "deprecat" in node.value.lower()
    if isinstance(node, ast.JoinedStr):
        return any(
            isinstance(part, ast.Constant)
            and isinstance(part.value, str)
            and "deprecat" in part.value.lower()
            for part in node.values
        )
    return False


@register_checker
class ApiChecker(Checker):
    name = "api"
    RULES = (
        Rule(
            "API001",
            "__all__ out of sync with the module's actual exports",
            "a dangling __all__ name breaks `import *`; an unlisted public "
            "def silently drifts out of the documented surface",
        ),
        Rule(
            "API002",
            "lazy module imports a heavy dependency at module level",
            "repro/__init__ and repro.evaluation promise (PR 5) that "
            "`import repro` never pulls in multiprocessing or the serving "
            "stack — cheap and fork-safe",
        ),
        Rule(
            "API003",
            "deprecation message without DeprecationWarning category",
            "warnings.warn('... deprecated ...') defaults to UserWarning, "
            "which deprecation filters and test gates never see",
        ),
    )

    def begin_module(self, ctx: ModuleContext) -> None:
        self._bound: Set[str] = set()
        self._public_defs: Dict[str, int] = {}
        self._all_names: Optional[List[str]] = None
        self._all_node: Optional[ast.Assign] = None
        self._has_all = False
        for stmt in ctx.tree.body:
            self._collect_binding(stmt)

    def _collect_binding(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self._bound.add(stmt.name)
            if not stmt.name.startswith("_"):
                self._public_defs[stmt.name] = stmt.lineno
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if target.id == "__all__":
                        self._has_all = True
                        self._all_node = stmt
                        self._all_names = _literal_all(stmt)
                    else:
                        self._bound.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            self._bound.add(stmt.target.id)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                self._bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                self._bound.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.If, ast.Try)):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.stmt) and sub is not stmt:
                    self._collect_binding(sub)

    # -------------------------------------------------------------- #
    # API002: lazy-import guarantee.
    # -------------------------------------------------------------- #
    def visit_Import(self, node: ast.Import, ctx: ModuleContext) -> None:
        if ctx.module not in _LAZY_MODULES or self._inside_def(ctx):
            return
        for alias in node.names:
            root = alias.name.split(".")[0]
            parts = alias.name.split(".")
            heavy = root in _HEAVY_ROOTS or (
                root == "repro" and len(parts) > 1 and parts[1] in _HEAVY_REPRO
            )
            if heavy:
                ctx.report(
                    "API002",
                    node,
                    f"module-level `import {alias.name}` breaks the lazy-"
                    f"import guarantee of `{ctx.module}` — defer it into "
                    f"__getattr__",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: ModuleContext) -> None:
        if ctx.module not in _LAZY_MODULES or self._inside_def(ctx):
            return
        if node.level > 0:
            base: Optional[str] = ctx.module if node.level == 1 else None
        else:
            base = node.module
        if base is None:
            return
        root = base.split(".")[0]
        parts = base.split(".")
        heavy = root in _HEAVY_ROOTS or (
            root == "repro" and len(parts) > 1 and parts[1] in _HEAVY_REPRO
        )
        if not heavy and root == "repro" and len(parts) == 1:
            heavy = any(
                alias.name in _HEAVY_REPRO for alias in node.names
            )
        if base == ctx.module:
            heavy = heavy or any(alias.name in _HEAVY_REPRO for alias in node.names)
        if heavy:
            ctx.report(
                "API002",
                node,
                f"module-level `from {base} import ...` breaks the lazy-"
                f"import guarantee of `{ctx.module}` — defer it into "
                f"__getattr__",
            )

    @staticmethod
    def _inside_def(ctx: ModuleContext) -> bool:
        return any(
            isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            for scope in ctx.scopes
        )

    # -------------------------------------------------------------- #
    # API003: honest deprecations.
    # -------------------------------------------------------------- #
    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        name = attribute_chain(node.func)
        if name not in {"warnings.warn", "warn"}:
            return
        if not node.args or not _message_mentions_deprecated(node.args[0]):
            return
        category: Optional[ast.expr] = None
        if len(node.args) >= 2:
            category = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "category":
                category = keyword.value
        category_name = (
            attribute_chain(category) if category is not None else None
        )
        if (
            category_name is None
            or category_name.split(".")[-1] not in _DEPRECATION_CATEGORIES
        ):
            ctx.report(
                "API003",
                node,
                "deprecation message warned without DeprecationWarning — "
                "pass category=DeprecationWarning so filters see it",
            )

    # -------------------------------------------------------------- #
    # API001: __all__ truthfulness (whole-module, so finish hook).
    # -------------------------------------------------------------- #
    def finish_module(self, ctx: ModuleContext) -> None:
        if not self._has_all or self._all_names is None:
            return  # no __all__, or computed __all__ (lazy modules): skip
        assert self._all_node is not None
        for name in self._all_names:
            if name not in self._bound and name != "__version__":
                ctx.report(
                    "API001",
                    self._all_node,
                    f"__all__ lists `{name}` but the module never binds it",
                )
        listed = set(self._all_names)
        for name, lineno in sorted(self._public_defs.items()):
            if name not in listed:
                ctx.findings.append(
                    Finding(
                        ctx.path,
                        lineno,
                        "API001",
                        f"public `{name}` is not listed in __all__ — add it "
                        f"or make it private",
                    )
                )
