"""RNG discipline: every random draw threads an explicit, seeded generator.

The facade equivalence tests (PR 5) and the instrumented-vs-plain
bit-identity guarantee (PR 6) only hold if no code path consults hidden
global RNG state.  The canonical front door is
:func:`repro.sampling.rng.ensure_rng`; these rules keep everything routed
through it:

* ``RNG001`` — no legacy ``np.random.<fn>()`` global-state calls;
* ``RNG002`` — no stdlib ``random.<fn>()`` calls;
* ``RNG003`` — no seedless ``default_rng()`` (seedless = irreproducible);
* ``RNG004`` — a declared ``rng``/``seed`` parameter must actually be used
  (an ignored one silently breaks the caller's determinism expectations).
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.core import (
    Checker,
    ModuleContext,
    Rule,
    attribute_chain,
    register_checker,
)

__all__ = ["RngChecker"]

#: np.random attributes that are constructors/types, not global-state draws.
_ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "RandomState",  # constructing an explicit (owned) legacy state object
}

#: stdlib ``random`` attributes that do not consume global state.
_ALLOWED_STDLIB_RANDOM = {"Random", "SystemRandom", "getstate", "setstate"}

_RNG_PARAM_NAMES = {"rng", "seed"}


def _is_trivial_body(node: ast.AST) -> bool:
    """True for stub bodies: docstring plus ``pass``/``...``/bare ``raise``."""
    body = list(getattr(node, "body", []))
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if not body:
        return True
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        if isinstance(stmt, ast.Raise):
            continue
        return False
    return True


def _is_abstract(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        name = attribute_chain(decorator)
        if name and name.split(".")[-1] in {
            "abstractmethod",
            "abstractproperty",
            "overload",
        }:
            return True
    return False


@register_checker
class RngChecker(Checker):
    name = "rng"
    RULES = (
        Rule(
            "RNG001",
            "legacy np.random global-state call",
            "np.random.<fn>() draws from hidden module-global state; runs "
            "are irreproducible and cross-contaminate — thread a Generator "
            "through repro.sampling.rng.ensure_rng instead",
        ),
        Rule(
            "RNG002",
            "stdlib random global-state call",
            "random.<fn>() consumes interpreter-global state invisible to "
            "seed threading; use the numpy Generator already threaded "
            "through the call chain",
        ),
        Rule(
            "RNG003",
            "seedless default_rng()",
            "default_rng() with no/None seed pulls OS entropy, so no two "
            "runs agree; accept a seed/rng parameter and call "
            "ensure_rng(seed)",
        ),
        Rule(
            "RNG004",
            "declared rng/seed parameter is never used",
            "a function advertising `rng`/`seed` but ignoring it silently "
            "breaks the caller's determinism expectations — use it or "
            "remove it",
        ),
    )

    def begin_module(self, ctx: ModuleContext) -> None:
        self._stdlib_aliases: Set[str] = set()
        self._stdlib_from: Set[str] = set()

    # -------------------------------------------------------------- #
    def visit_Import(self, node: ast.Import, ctx: ModuleContext) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._stdlib_aliases.add(alias.asname or "random")

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: ModuleContext) -> None:
        if node.module == "random" and node.level == 0:
            for alias in node.names:
                if alias.name not in _ALLOWED_STDLIB_RANDOM:
                    self._stdlib_from.add(alias.asname or alias.name)

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        name = attribute_chain(node.func)
        if name is None:
            return
        parts = name.split(".")
        # RNG001: np.random.<fn>( ... ) on module-global state.
        if (
            len(parts) == 3
            and parts[0] in {"np", "numpy"}
            and parts[1] == "random"
            and parts[2] not in _ALLOWED_NP_RANDOM
        ):
            ctx.report(
                "RNG001",
                node,
                f"call to `{name}()` uses numpy's global RNG state; thread "
                f"an explicit Generator (ensure_rng) instead",
            )
            return
        # RNG002: stdlib random.
        if (
            len(parts) == 2
            and parts[0] in self._stdlib_aliases
            and parts[1] not in _ALLOWED_STDLIB_RANDOM
        ) or (len(parts) == 1 and parts[0] in self._stdlib_from):
            ctx.report(
                "RNG002",
                node,
                f"call to `{name}()` uses the stdlib global RNG; use the "
                f"threaded numpy Generator instead",
            )
            return
        # RNG003: default_rng() with no seed (or an explicit None).
        if parts[-1] == "default_rng" and parts[0] in {"np", "numpy", "default_rng"}:
            seedless = not node.args and not node.keywords
            if (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            ):
                seedless = True
            if seedless:
                ctx.report(
                    "RNG003",
                    node,
                    "seedless `default_rng()` pulls OS entropy — pass a "
                    "seed (ensure_rng(seed)) so runs are reproducible",
                )

    # -------------------------------------------------------------- #
    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: ModuleContext) -> None:
        self._check_params_used(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: ModuleContext
    ) -> None:
        self._check_params_used(node, ctx)

    def _check_params_used(self, node: ast.AST, ctx: ModuleContext) -> None:
        if _is_abstract(node) or _is_trivial_body(node):
            return
        arguments = node.args
        declared = [
            arg.arg
            for arg in (
                arguments.posonlyargs + arguments.args + arguments.kwonlyargs
            )
            if arg.arg in _RNG_PARAM_NAMES
        ]
        if not declared:
            return
        used: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id in _RNG_PARAM_NAMES:
                used.add(child.id)
        for param in declared:
            if param not in used:
                ctx.report(
                    "RNG004",
                    node,
                    f"function `{node.name}` declares `{param}` but never "
                    f"uses it; callers expect it to control the randomness",
                )
