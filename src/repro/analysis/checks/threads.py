"""Thread discipline: kernels parallelise only through :mod:`repro.kernels.pool`.

The threaded kernel tier keeps bit-exact determinism by funnelling every
concurrent dispatch through one module — ``repro.kernels.pool`` — which owns
the shared executors, sizes them from the resolved ``threads`` setting, and
collects results in submission order.  A kernel that spins up its own
``ThreadPoolExecutor`` (or raw ``threading.Thread``) sidesteps all of that:
its worker count would not honour ``REPRO_THREADS``, its results could land
in completion order, and the executor would not be shared or reused.

``THR001`` flags thread/executor creation inside ``repro.kernels.*`` (the
pool module itself is the sanctioned owner and is exempt, mirroring its
``KER001`` exemption in :mod:`repro.analysis.checks.kernels`).
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Checker,
    ModuleContext,
    Rule,
    attribute_chain,
    register_checker,
)

__all__ = ["ThreadChecker"]

_KERNEL_PREFIX = "repro.kernels"

#: The one module allowed to create executors (see its module docstring).
_EXEMPT_MODULES = {"repro.kernels.pool"}

#: Constructors that create a thread or a pool of them.
_THREAD_CONSTRUCTORS = {
    "Thread",
    "Timer",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "Pool",
    "ThreadPool",
}


@register_checker
class ThreadChecker(Checker):
    name = "threads"
    RULES = (
        Rule(
            "THR001",
            "kernel creates threads outside repro.kernels.pool",
            "kernels must dispatch concurrent work through "
            "repro.kernels.pool.run_tasks, which owns the shared executors, "
            "honours the threads/REPRO_THREADS setting, and keeps results "
            "in submission order for bit-exact determinism",
        ),
    )

    def begin_module(self, ctx: ModuleContext) -> None:
        self._active = (
            ctx.module == _KERNEL_PREFIX
            or ctx.module.startswith(_KERNEL_PREFIX + ".")
        ) and ctx.module not in _EXEMPT_MODULES

    # -------------------------------------------------------------- #
    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not self._active:
            return
        name = attribute_chain(node.func)
        if name is None:
            return
        last = name.split(".")[-1]
        if last in _THREAD_CONSTRUCTORS:
            ctx.report(
                "THR001",
                node,
                f"`{name}(...)` creates threads inside a kernel module — "
                f"dispatch through repro.kernels.pool.run_tasks instead",
            )
