"""Shared-memory discipline: segments live and die in ``repro.service.shm``.

A ``multiprocessing.shared_memory`` segment is an OS object, not a Python
one: created anywhere and leaked on a crash it survives the interpreter (and
every test run after it) until reboot.  The serving tier therefore funnels
the entire lifecycle through one module — :mod:`repro.service.shm` — which
tracks every created segment (:func:`~repro.service.shm.created_segments`),
suppresses the pre-3.13 attach-side resource-tracker registration, and owns
the single unlink path.

``SVC001`` flags, in any ``repro`` module other than the sanctioned
lifecycle module:

* ``SharedMemory(...)`` construction (creating *or* ad-hoc attaching — both
  must go through the helpers, since raw attaches re-introduce the
  resource-tracker unlink-at-exit footgun the helpers exist to hide);
* ``.unlink()`` calls in modules that import ``shared_memory`` machinery
  (releasing a segment out-of-band would break the pool's ack-gated
  generation reaping and the leak accounting).
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Checker,
    ModuleContext,
    Rule,
    attribute_chain,
    register_checker,
)

__all__ = ["ServiceChecker"]

#: The one module allowed to create/attach/unlink shared-memory segments.
_LIFECYCLE_MODULE = "repro.service.shm"


@register_checker
class ServiceChecker(Checker):
    name = "service"
    RULES = (
        Rule(
            "SVC001",
            "shared-memory segment managed outside repro.service.shm",
            "multiprocessing.shared_memory segments may only be created, "
            "attached or unlinked through the repro.service.shm lifecycle "
            "helpers (SharedSnapshot.create / attach / SharedSnapshot.unlink) "
            "— they track ownership for leak accounting and hide the "
            "pre-3.13 resource-tracker attach footgun",
        ),
    )

    def begin_module(self, ctx: ModuleContext) -> None:
        self._active = ctx.module != _LIFECYCLE_MODULE
        #: Whether this module touches the shared_memory machinery at all
        #: (import-based; gates the .unlink() heuristic so unrelated
        #: ``path.unlink()`` file calls never trip the rule).
        self._imports_shared_memory = False

    def visit_Import(self, node: ast.Import, ctx: ModuleContext) -> None:
        for alias in node.names:
            if alias.name.startswith("multiprocessing.shared_memory"):
                self._imports_shared_memory = True

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: ModuleContext) -> None:
        module = node.module or ""
        if module.startswith("multiprocessing.shared_memory"):
            self._imports_shared_memory = True
        if module == "multiprocessing" and any(
            alias.name == "shared_memory" for alias in node.names
        ):
            self._imports_shared_memory = True

    # -------------------------------------------------------------- #
    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not self._active:
            return
        name = attribute_chain(node.func)
        if name is None:
            return
        last = name.split(".")[-1]
        if last == "SharedMemory":
            ctx.report(
                "SVC001",
                node,
                f"`{name}(...)` manages a shared-memory segment outside "
                f"{_LIFECYCLE_MODULE} — go through SharedSnapshot.create / "
                f"attach instead",
            )
        elif last == "unlink" and self._imports_shared_memory:
            ctx.report(
                "SVC001",
                node,
                f"`{name}()` in a module using multiprocessing.shared_memory "
                f"— segments are released only by SharedSnapshot.unlink in "
                f"{_LIFECYCLE_MODULE}",
            )
