"""Kernel purity: :mod:`repro.kernels` functions are pure over their inputs.

The kernel tier is the part of the codebase ROADMAP item 2 wants to run
compiled and multi-threaded; that only stays safe if kernels never touch
module-level mutable state and if every in-place output parameter is part
of the documented contract:

* ``KER001`` — no ``global`` statements, and no mutation of a module-level
  mutable binding (list/dict/set) from inside a kernel function;
* ``KER002`` — a parameter a kernel writes through (subscript stores,
  ``np.copyto``/``np.add.at``-style in-place calls) must be named in the
  docstring together with an in-place/mutation marker word, so callers can
  see the output contract without reading the body.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.core import (
    Checker,
    ModuleContext,
    Rule,
    attribute_chain,
    register_checker,
    root_name,
)

__all__ = ["KernelChecker"]

_KERNEL_PREFIX = "repro.kernels"

#: The one sanctioned owner of shared executor state in the kernel tier.
#: ``repro.kernels.pool`` exists precisely to hold the lazily-created thread
#: pools every kernel dispatches through (the ``THR001`` counterpart rule in
#: :mod:`repro.analysis.checks.threads` forces kernels to use it), so its
#: module-level executor cache is the contract, not a violation.
_EXEMPT_MODULES = {"repro.kernels.pool"}

#: Method calls that mutate a list/dict/set receiver.
_CONTAINER_MUTATORS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "add",
    "discard",
    "update",
    "setdefault",
    "popitem",
    "sort",
    "reverse",
}

#: numpy functions whose first argument is written in place.
_NP_INPLACE_FIRST_ARG = {
    "copyto",
    "put",
    "place",
    "putmask",
    "fill_diagonal",
}

#: ufunc methods (``np.add.at``) whose first argument is written in place.
_UFUNC_INPLACE_METHODS = {"at"}

#: ndarray methods that write the receiver in place.
_NDARRAY_INPLACE_METHODS = {"fill", "sort", "partition", "resize"}

#: docstring marker words acknowledging an in-place output contract.
_DOC_MARKERS = ("in place", "in-place", "mutat", "accumulat", "overwrit", "filled")

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_FACTORIES = {"list", "dict", "set", "defaultdict", "OrderedDict", "deque"}


def _walk_skip_nested(node: ast.AST):
    """Yield descendants of a function body without entering nested defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))


@register_checker
class KernelChecker(Checker):
    name = "kernels"
    RULES = (
        Rule(
            "KER001",
            "kernel writes module-level mutable state",
            "kernels must be pure over their arguments so they can be run "
            "compiled and multi-threaded (ROADMAP item 2); module-level "
            "writes are hidden shared state",
        ),
        Rule(
            "KER002",
            "undocumented in-place mutation of a kernel parameter",
            "a kernel's output contract is its docstring: every parameter "
            "written in place must be named there with an in-place marker "
            "so callers know what changes under them",
        ),
    )

    def begin_module(self, ctx: ModuleContext) -> None:
        self._active = (
            ctx.module == _KERNEL_PREFIX
            or ctx.module.startswith(_KERNEL_PREFIX + ".")
        ) and ctx.module not in _EXEMPT_MODULES
        self._module_mutables: Set[str] = set()
        if not self._active:
            return
        for stmt in ctx.tree.body:
            targets: List[ast.expr] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            mutable = isinstance(value, _MUTABLE_LITERALS) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_FACTORIES
            )
            if mutable:
                for target in targets:
                    if isinstance(target, ast.Name):
                        self._module_mutables.add(target.id)

    # -------------------------------------------------------------- #
    # KER001
    # -------------------------------------------------------------- #
    def visit_Global(self, node: ast.Global, ctx: ModuleContext) -> None:
        if self._active:
            ctx.report(
                "KER001",
                node,
                f"`global {', '.join(node.names)}` in a kernel module — "
                f"kernels may not rebind module state",
            )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not self._active or ctx.enclosing_function() is None:
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _CONTAINER_MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in self._module_mutables
        ):
            ctx.report(
                "KER001",
                node,
                f"`{func.value.id}.{func.attr}(...)` mutates module-level "
                f"state from inside a kernel function",
            )

    def visit_Assign(self, node: ast.Assign, ctx: ModuleContext) -> None:
        self._check_module_store(node.targets, node, ctx)

    def visit_AugAssign(self, node: ast.AugAssign, ctx: ModuleContext) -> None:
        self._check_module_store([node.target], node, ctx)

    def _check_module_store(
        self, targets: List[ast.expr], node: ast.AST, ctx: ModuleContext
    ) -> None:
        if not self._active or ctx.enclosing_function() is None:
            return
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                base = root_name(target)
                if base in self._module_mutables:
                    ctx.report(
                        "KER001",
                        node,
                        f"store into module-level `{base}` from inside a "
                        f"kernel function",
                    )

    # -------------------------------------------------------------- #
    # KER002
    # -------------------------------------------------------------- #
    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: ModuleContext) -> None:
        if not self._active:
            return
        params = {
            arg.arg
            for arg in (
                node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            )
            if arg.arg not in {"self", "cls"}
        }
        if not params:
            return
        mutated: Set[str] = set()
        rebound: Set[str] = set()
        for child in _walk_skip_nested(node):
            if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        base = root_name(target)
                        if base in params:
                            mutated.add(base)
                    elif isinstance(target, ast.Name) and target.id in params:
                        # `word_rows = word_rows.astype(...)`: the name now
                        # points at a local copy, not the caller's array.
                        rebound.add(target.id)
            elif isinstance(child, ast.Call):
                mutated.update(self._call_mutations(child, params))
        mutated -= rebound
        if not mutated:
            return
        docstring = (ast.get_docstring(node) or "").lower()
        has_marker = any(marker in docstring for marker in _DOC_MARKERS)
        for param in sorted(mutated):
            if param.lower() not in docstring or not has_marker:
                ctx.report(
                    "KER002",
                    node,
                    f"kernel `{node.name}` writes parameter `{param}` in "
                    f"place but its docstring does not document the "
                    f"mutation (name the parameter and say it is modified "
                    f"in place)",
                )

    @staticmethod
    def _call_mutations(node: ast.Call, params: Set[str]) -> Set[str]:
        mutated: Set[str] = set()
        func = node.func
        name = attribute_chain(func)
        if name is not None:
            parts = name.split(".")
            # np.copyto(dst, ...), np.add.at(arr, ...), etc.
            first_arg_inplace = (
                len(parts) >= 2
                and parts[0] in {"np", "numpy"}
                and (
                    parts[-1] in _NP_INPLACE_FIRST_ARG
                    or parts[-1] in _UFUNC_INPLACE_METHODS
                )
            )
            if first_arg_inplace and node.args:
                base = root_name(node.args[0])
                if base in params:
                    mutated.add(base)
        # param.fill(0), param.sort(), ...
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _NDARRAY_INPLACE_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in params
        ):
            mutated.add(func.value.id)
        # np.maximum(x, 0, out=param) — the ufunc `out=` idiom.
        for keyword in node.keywords:
            if keyword.arg == "out":
                base = root_name(keyword.value)
                if base in params:
                    mutated.add(base)
        return mutated
