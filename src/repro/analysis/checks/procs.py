"""Multiprocessing pickling safety: only importable callables cross processes.

The spawn start method (the only portable one, and what
:class:`repro.training.parallel.ParallelTrainer` uses) pickles the target
callable by qualified name.  A lambda, closure, or function defined inside
another function fails that pickling — at *spawn* time, on the user's
machine, not in tests that happen to use fork.  ``MP001`` flags them at the
call site, where the fix (hoist to module level, like
``repro.training.parallel._worker_main``) is obvious.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from repro.analysis.core import (
    Checker,
    ModuleContext,
    Rule,
    attribute_chain,
    register_checker,
)

__all__ = ["ProcessChecker"]

#: Pool/executor methods whose first argument is a callable shipped to
#: another process.
_SUBMIT_METHODS = {
    "submit",
    "apply",
    "apply_async",
    "map",
    "map_async",
    "starmap",
    "starmap_async",
    "imap",
    "imap_unordered",
}

#: Constructors whose ``target=`` is a callable shipped to another process.
_SPAWN_CONSTRUCTORS = {"Process"}


@register_checker
class ProcessChecker(Checker):
    name = "procs"
    RULES = (
        Rule(
            "MP001",
            "unpicklable callable crosses a process boundary",
            "spawn pickles the target by qualified name; lambdas, closures "
            "and function-local defs fail at spawn time on the user's "
            "machine — hoist the worker to module level",
        ),
    )

    def begin_module(self, ctx: ModuleContext) -> None:
        # Pre-scan: names of callables defined inside a function scope
        # (nested defs, and lambdas bound to a name).
        self._local_callables: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for child in ast.walk(node):
                if child is node:
                    continue
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._local_callables.add(child.name)
                elif isinstance(child, ast.Assign) and isinstance(
                    child.value, ast.Lambda
                ):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            self._local_callables.add(target.id)

    # -------------------------------------------------------------- #
    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        candidate = self._shipped_callable(node)
        if candidate is None:
            return
        if isinstance(candidate, ast.Lambda):
            ctx.report(
                "MP001",
                node,
                "lambda passed across a process boundary cannot be pickled "
                "under spawn — hoist it to a module-level function",
            )
        elif (
            isinstance(candidate, ast.Name)
            and candidate.id in self._local_callables
        ):
            ctx.report(
                "MP001",
                node,
                f"`{candidate.id}` is defined inside a function, so it "
                f"cannot be pickled under spawn — hoist it to module level",
            )

    @staticmethod
    def _shipped_callable(node: ast.Call) -> Optional[ast.expr]:
        func = node.func
        name = attribute_chain(func)
        last = name.split(".")[-1] if name else None
        if last in _SPAWN_CONSTRUCTORS:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    return keyword.value
            return None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SUBMIT_METHODS
            and node.args
        ):
            return node.args[0]
        return None
