"""Telemetry purity: observation must never perturb (or feed) computation.

PR 6's bit-identity guarantee — instrumented and plain runs produce the
same model — holds because hot loops pay for telemetry only behind the
``enabled`` flag and because no numeric code path depends on a recorded
value.  Two rules enforce it:

* ``OBS001`` — a recording call (``count``/``gauge``/``observe``/``record``)
  on a handle obtained from ``get_telemetry()`` must be lexically inside an
  ``if <handle>.enabled:`` guard.  ``span``/``event`` at coarse boundaries
  are exempt (the no-op implementation makes them free; see
  :mod:`repro.obs.trace`), as is :mod:`repro.obs` itself.
* ``OBS002`` — reading a metric value back (``.value``, ``.percentile()``,
  …) through a live handle's ``registry`` is feedback from observation into
  state; export/reporting modules read registries passed as plain data
  instead.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.core import (
    Checker,
    ModuleContext,
    Rule,
    attribute_chain,
    call_chain,
    register_checker,
)

__all__ = ["TelemetryChecker"]

#: Recording methods that must be gated in hot paths.
_RECORDING_METHODS = {"count", "gauge", "observe", "record"}

#: Metric read-back terminals (attributes or methods) under ``.registry``.
_READBACK_TERMINALS = {
    "value",
    "mean",
    "total",
    "last",
    "min",
    "max",
    "percentile",
    "summary",
    "values",
}

#: Modules where telemetry is *implemented*, not consumed.
_EXEMPT_PREFIX = "repro.obs"


@register_checker
class TelemetryChecker(Checker):
    name = "telemetry"
    RULES = (
        Rule(
            "OBS001",
            "ungated telemetry recording call",
            "count/gauge/observe/record on a get_telemetry() handle outside "
            "an `if <handle>.enabled:` guard pays dict/lock costs on every "
            "hot-loop iteration even when telemetry is off",
        ),
        Rule(
            "OBS002",
            "metric value read back through a live telemetry handle",
            "reading .value/.percentile() off get_telemetry().registry feeds "
            "observation back into computation, breaking instrumented-vs-"
            "plain bit-identity",
        ),
    )

    def begin_module(self, ctx: ModuleContext) -> None:
        # scope-id -> names bound from get_telemetry() in that scope.
        self._handles: Dict[int, Set[str]] = {}

    def _exempt(self, ctx: ModuleContext) -> bool:
        return ctx.module == _EXEMPT_PREFIX or ctx.module.startswith(
            _EXEMPT_PREFIX + "."
        )

    def _scope_key(self, ctx: ModuleContext) -> int:
        return id(ctx.scopes[-1]) if ctx.scopes else id(ctx.tree)

    def _tracked(self, name: str, ctx: ModuleContext) -> bool:
        for scope in [ctx.tree] + list(ctx.scopes):
            if name in self._handles.get(id(scope), ()):
                return True
        return False

    # -------------------------------------------------------------- #
    def visit_Assign(self, node: ast.Assign, ctx: ModuleContext) -> None:
        if not isinstance(node.value, ast.Call):
            return
        func = attribute_chain(node.value.func)
        if func is None or func.split(".")[-1] != "get_telemetry":
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._handles.setdefault(self._scope_key(ctx), set()).add(target.id)

    # -------------------------------------------------------------- #
    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        if self._exempt(ctx):
            return
        func = node.func
        # OBS001: <handle>.count(...) etc. must be under `if <handle>.enabled`.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _RECORDING_METHODS
            and isinstance(func.value, ast.Name)
            and self._tracked(func.value.id, ctx)
            and not self._guarded(func.value.id, ctx.ancestors)
        ):
            ctx.report(
                "OBS001",
                node,
                f"`{func.value.id}.{func.attr}(...)` is not inside an "
                f"`if {func.value.id}.enabled:` guard — hot paths must not "
                f"pay for disabled telemetry",
            )
        # OBS002 for method-style read-backs: ....registry....percentile().
        if isinstance(func, ast.Attribute) and func.attr in {
            "percentile",
            "summary",
        }:
            self._check_readback(func, ctx)

    def visit_Attribute(self, node: ast.Attribute, ctx: ModuleContext) -> None:
        if self._exempt(ctx):
            return
        if node.attr in _READBACK_TERMINALS - {"percentile", "summary"}:
            self._check_readback(node, ctx)

    def _check_readback(self, node: ast.Attribute, ctx: ModuleContext) -> None:
        chain = call_chain(node)
        if len(chain) < 3 or "registry" not in chain[:-1]:
            return
        root = chain[0]
        if root == "get_telemetry" or self._tracked(root, ctx):
            ctx.report(
                "OBS002",
                node,
                f"`{'.'.join(chain)}` reads a metric value back through a "
                f"live telemetry handle; telemetry must stay write-only "
                f"from compute code",
            )

    # -------------------------------------------------------------- #
    @staticmethod
    def _guarded(handle: str, ancestors: List[ast.AST]) -> bool:
        """Is any enclosing ``if``/ternary test a read of ``handle.enabled``?"""
        for ancestor in ancestors:
            if not isinstance(ancestor, (ast.If, ast.IfExp)):
                continue
            for sub in ast.walk(ancestor.test):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == "enabled"
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == handle
                ):
                    return True
        return False
