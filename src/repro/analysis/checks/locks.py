"""Lock discipline (race-detector-lite): guarded classes stay guarded.

A class that constructs a :class:`threading.Lock`/``RLock`` for itself has
declared its instance state shared; from then on, every direct attribute
write in a public code path must happen under that lock, or two threads
can interleave half-updated state (exactly the registry/serving races the
PR 4 design closed).  ``LOCK001`` flags direct ``self.<attr>`` stores (and
container-mutator calls on them) outside a ``with self.<lock>:`` block.

Deliberately out of scope, to keep the signal clean:

* ``__init__``/``__post_init__``/``__new__`` — construction happens before
  the instance is shared;
* methods named ``*_locked`` — the repo's convention for "caller holds the
  lock" helpers (:meth:`repro.streaming.registry.ModelRegistry._gc_locked`);
* nested attribute writes (``self._local.stack = …``) — thread-local and
  delegate objects manage their own safety.

Suppress a deliberate unguarded write with
``# repro: noqa[LOCK001] — <why it is safe>``.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.core import (
    Checker,
    ModuleContext,
    Rule,
    attribute_chain,
    register_checker,
)

__all__ = ["LockChecker"]

_LOCK_FACTORY_NAMES = {"Lock", "RLock"}

_EXEMPT_METHODS = {"__init__", "__post_init__", "__new__", "__del__"}

_CONTAINER_MUTATORS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "add",
    "discard",
    "update",
    "setdefault",
    "popitem",
}


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


@register_checker
class LockChecker(Checker):
    name = "locks"
    RULES = (
        Rule(
            "LOCK001",
            "unguarded attribute write in a lock-owning class",
            "a class that constructs a threading.Lock/RLock has declared "
            "its state shared; writes outside `with self.<lock>:` let "
            "threads observe half-updated state",
        ),
    )

    def visit_ClassDef(self, node: ast.ClassDef, ctx: ModuleContext) -> None:
        lock_attrs = self._find_lock_attrs(node)
        if not lock_attrs:
            return
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _EXEMPT_METHODS or item.name.endswith("_locked"):
                continue
            self._check_method(item, lock_attrs, node.name, ctx)

    # -------------------------------------------------------------- #
    @staticmethod
    def _find_lock_attrs(node: ast.ClassDef) -> Set[str]:
        """Names of ``self.<attr>`` bound to ``threading.Lock()``/``RLock()``."""
        lock_attrs: Set[str] = set()
        for child in ast.walk(node):
            if not isinstance(child, ast.Assign):
                continue
            if not isinstance(child.value, ast.Call):
                continue
            func = attribute_chain(child.value.func)
            if func is None or func.split(".")[-1] not in _LOCK_FACTORY_NAMES:
                continue
            for target in child.targets:
                if _is_self_attr(target):
                    lock_attrs.add(target.attr)
        return lock_attrs

    # -------------------------------------------------------------- #
    def _check_method(
        self,
        method: ast.AST,
        lock_attrs: Set[str],
        class_name: str,
        ctx: ModuleContext,
    ) -> None:
        def is_lock_guard(with_node: ast.AST) -> bool:
            for item in with_node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                if _is_self_attr(expr) and expr.attr in lock_attrs:
                    return True
            return False

        def walk(node: ast.AST, under_lock: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs run later, in their own context
                child_locked = under_lock
                if isinstance(child, (ast.With, ast.AsyncWith)) and is_lock_guard(
                    child
                ):
                    child_locked = True
                if not under_lock:
                    self._check_store(child, lock_attrs, class_name, method, ctx)
                walk(child, child_locked)

        walk(method, under_lock=False)

    def _check_store(
        self,
        node: ast.AST,
        lock_attrs: Set[str],
        class_name: str,
        method: ast.AST,
        ctx: ModuleContext,
    ) -> None:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attr = None
            if _is_self_attr(target):
                attr = target.attr
            elif isinstance(target, ast.Subscript) and _is_self_attr(target.value):
                attr = target.value.attr
            if attr is not None and attr not in lock_attrs:
                ctx.report(
                    "LOCK001",
                    node,
                    f"`{class_name}.{method.name}` writes `self.{attr}` "
                    f"outside `with self.<lock>:` although {class_name} "
                    f"owns a lock",
                )
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _CONTAINER_MUTATORS
                and _is_self_attr(func.value)
            ):
                ctx.report(
                    "LOCK001",
                    node,
                    f"`{class_name}.{method.name}` mutates "
                    f"`self.{func.value.attr}` via `.{func.attr}()` outside "
                    f"`with self.<lock>:` although {class_name} owns a lock",
                )
