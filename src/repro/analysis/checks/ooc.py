"""Out-of-core discipline: corpus arrays open memory-mapped, or not at all.

* ``OOC001`` — inside :mod:`repro.corpus`, every ``np.load`` must pass a
  non-``None`` ``mmap_mode``.  The store layer's whole guarantee is that a
  corpus file never materialises on open; one bare ``np.load`` on a store
  path silently re-introduces an O(corpus) allocation that no unit test on
  laptop-sized fixtures will ever notice.  ``np.lib.format.open_memmap`` —
  the writer's chunked-output primitive — is the sanctioned alternative and
  is not flagged.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import (
    Checker,
    ModuleContext,
    Rule,
    attribute_chain,
    register_checker,
)

__all__ = ["OutOfCoreChecker"]

#: The package whose file-opening discipline the rule enforces.
_STORE_PACKAGE = "repro.corpus"

_LOAD_CALLS = {"np.load", "numpy.load"}


def _is_store_module(module: str) -> bool:
    return module == _STORE_PACKAGE or module.startswith(_STORE_PACKAGE + ".")


def _mmap_mode_argument(node: ast.Call) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == "mmap_mode":
            return keyword.value
    if len(node.args) >= 2:  # np.load(file, mmap_mode, ...)
        return node.args[1]
    return None


@register_checker
class OutOfCoreChecker(Checker):
    name = "ooc"
    RULES = (
        Rule(
            "OOC001",
            "bare np.load in repro.corpus (no mmap_mode)",
            "corpus files may only be opened through the store layer's "
            "memory-mapped path: np.load without mmap_mode materialises the "
            "whole array, which on a real store is an O(corpus) allocation "
            "the out-of-core guarantee forbids",
        ),
    )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not _is_store_module(ctx.module):
            return
        if attribute_chain(node.func) not in _LOAD_CALLS:
            return
        mode = _mmap_mode_argument(node)
        if mode is None or (
            isinstance(mode, ast.Constant) and mode.value is None
        ):
            ctx.report(
                "OOC001",
                node,
                "np.load without mmap_mode materialises the file — open "
                "corpus arrays via repro.corpus.store (np.load(..., "
                "mmap_mode='r')) or write through open_memmap",
            )
