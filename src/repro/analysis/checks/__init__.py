"""The built-in checker plugins.

Importing this package registers every built-in checker with
:data:`repro.analysis.core.CHECKER_REGISTRY` (registration happens at
class-definition time via the :func:`~repro.analysis.core.register_checker`
decorator).  Third-party checkers register the same way: subclass
:class:`~repro.analysis.core.Checker`, decorate, import before building the
:class:`~repro.analysis.core.Analyzer`.
"""

from repro.analysis.checks.api import ApiChecker
from repro.analysis.checks.kernels import KernelChecker
from repro.analysis.checks.locks import LockChecker
from repro.analysis.checks.ooc import OutOfCoreChecker
from repro.analysis.checks.procs import ProcessChecker
from repro.analysis.checks.rng import RngChecker
from repro.analysis.checks.service import ServiceChecker
from repro.analysis.checks.telemetry import TelemetryChecker
from repro.analysis.checks.threads import ThreadChecker

__all__ = [
    "ApiChecker",
    "KernelChecker",
    "LockChecker",
    "OutOfCoreChecker",
    "ProcessChecker",
    "RngChecker",
    "ServiceChecker",
    "TelemetryChecker",
    "ThreadChecker",
]
