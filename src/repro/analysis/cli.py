"""``python -m repro.analysis [paths]`` — run the invariant linter.

Exit status is 0 when no findings survive suppressions and the baseline,
1 otherwise (and 2 for usage errors), so the command slots directly into
CI.  ``--format json`` emits a machine-readable report;
``--write-baseline`` snapshots the current findings into a baseline file
that future runs subtract (the committed baseline for this repo is
*empty* — fix findings, don't grandfather them).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import Analyzer, all_rules

__all__ = ["main"]

#: Default baseline location, relative to the current directory.
DEFAULT_BASELINE = "analysis-baseline.json"


def _load_baseline(path: Path) -> List[Tuple[str, str, str]]:
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data["findings"] if isinstance(data, dict) else data
    baseline = []
    for entry in entries:
        baseline.append(
            (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
        )
    return baseline


def _write_baseline(path: Path, findings: Iterable) -> None:
    entries = [
        {"rule": f.rule, "path": Path(f.path).as_posix(), "message": f.message}
        for f in findings
    ]
    path.write_text(
        json.dumps({"findings": entries}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repro invariant linter over Python sources.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="only run rules matching this code/prefix (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip rules matching this code/prefix (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file of grandfathered findings (default: "
        f"{DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write the current findings to FILE as a new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its invariant and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
            print(f"        {rule.invariant}")
        return 0

    baseline: List[Tuple[str, str, str]] = []
    baseline_path: Optional[Path] = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"baseline file not found: {baseline_path}", file=sys.stderr)
            return 2
    elif Path(DEFAULT_BASELINE).exists():
        baseline_path = Path(DEFAULT_BASELINE)
    if baseline_path is not None:
        try:
            baseline = _load_baseline(baseline_path)
        except (ValueError, KeyError, TypeError) as exc:
            print(f"malformed baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    analyzer = Analyzer(select=args.select, ignore=args.ignore)
    report = analyzer.check_paths(
        [Path(p) for p in args.paths], baseline=baseline
    )

    if args.write_baseline is not None:
        _write_baseline(Path(args.write_baseline), report.findings)
        print(
            f"wrote {len(report.findings)} findings to {args.write_baseline}"
        )
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_text())
    return 0 if report.ok else 1
