"""The canonical algorithm registry: CLI/spec names → sampler classes.

This is the single place a spelling like ``"warplda"`` is resolved to a
class.  It lives in :mod:`repro.samplers` (not :mod:`repro.training`, its
historical home) so that the declarative API layer (:mod:`repro.api`) can
enumerate and validate algorithm names without importing the training
stack — and, through it, :mod:`multiprocessing` — at import time.
:data:`repro.training.parallel.SAMPLER_REGISTRY` re-exports this mapping
unchanged for existing callers.
"""

from __future__ import annotations

from repro.core.warplda import WarpLDA
from repro.samplers.aliaslda import AliasLDASampler
from repro.samplers.cgs import CollapsedGibbsSampler
from repro.samplers.fpluslda import FPlusLDASampler
from repro.samplers.lightlda import LightLDASampler
from repro.samplers.sparselda import SparseLDASampler

__all__ = ["SAMPLER_REGISTRY"]

#: Samplers addressable by name.  Keys are the CLI / ``ModelSpec`` spellings.
SAMPLER_REGISTRY = {
    "warplda": WarpLDA,
    "cgs": CollapsedGibbsSampler,
    "sparselda": SparseLDASampler,
    "aliaslda": AliasLDASampler,
    "fpluslda": FPlusLDASampler,
    "lightlda": LightLDASampler,
}
