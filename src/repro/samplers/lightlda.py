"""LightLDA (Yuan et al., WWW 2015): O(1) cycle Metropolis-Hastings proposals.

Each token alternates between two cheap proposals:

* **doc proposal** ``q_doc(k) ∝ C_dk + α_k`` — drawn in O(1) via the
  mixture-of-multinomials trick (pick the topic of a uniformly random position
  of the document with probability ``L_d / (L_d + ᾱ)``, otherwise draw from the
  prior α).
* **word proposal** ``q_word(k) ∝ (C_wk + β) / (C_k + β̄)`` — drawn in O(1)
  from a *stale* per-word alias table; the acceptance ratio uses the stale
  table's own density, so staleness does not bias the chain.

Counts are updated **instantly** after every token (unlike WarpLDA's delayed
updates), and tokens are visited document-by-document, which is why the
accesses to ``C_w`` spread over the whole O(KV) matrix (paper, Table 2).

``num_mh_steps`` is the paper's ``M``: the number of proposal/acceptance steps
per token (alternating doc / word), matching the knob swept in Fig. 5.

The default ``kernel="slab"`` path runs the cycle under WarpLDA's delayed
counts via :func:`repro.kernels.light.delayed_cycle_sweep`: all counts are
frozen for a sweep, every token's chain becomes independent, and the whole
corpus executes as a flat vectorised MH chain whose acceptance rates collapse
to the two factors of Eq. (7).  ``kernel="scalar"`` keeps the original
instant-update per-token loop as the correctness oracle.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.kernels.light import delayed_cycle_sweep
from repro.samplers.base import LDASampler
from repro.sampling.alias import AliasTable

__all__ = ["LightLDASampler"]


class _StaleWordProposal:
    """Stale alias table for ``q_word(k) ∝ (C_wk + β) / (C_k + β̄)``."""

    __slots__ = ("alias", "weights", "draws_remaining")

    def __init__(self, weights: np.ndarray, refresh_interval: int):
        self.alias = AliasTable(weights)
        self.weights = weights
        self.draws_remaining = refresh_interval

    def density(self, topic: int) -> float:
        return float(self.weights[topic])

    def draw(self, rng: np.random.Generator) -> int:
        self.draws_remaining -= 1
        return int(self.alias.draw(rng))


class LightLDASampler(LDASampler):
    """MH-based O(1) sampler with instant count updates."""

    name = "LightLDA"
    KERNELS = ("slab", "scalar")
    DEFAULT_KERNEL = "slab"

    def __init__(self, *args, num_mh_steps: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        if num_mh_steps <= 0:
            raise ValueError(f"num_mh_steps must be positive, got {num_mh_steps}")
        self.num_mh_steps = int(num_mh_steps)
        self._word_proposals: Dict[int, _StaleWordProposal] = {}
        # Alias table over the (fixed) prior α used by the doc proposal's
        # second mixture component.  The slab kernel draws the prior
        # component uniformly when α is symmetric (same distribution, one
        # RNG call) and from this table otherwise.
        self._alpha_alias = AliasTable(self.alpha)
        self._alpha_is_symmetric = bool(np.allclose(self.alpha, self.alpha[0]))

    def invalidate_caches(self) -> None:
        """Drop the stale per-word proposal tables (counts changed underneath)."""
        self._word_proposals.clear()

    # ------------------------------------------------------------------ #
    def _word_proposal(self, word: int) -> _StaleWordProposal:
        proposal = self._word_proposals.get(word)
        if proposal is None or proposal.draws_remaining <= 0:
            weights = (self.state.word_topic[word] + self.beta) / (
                self.state.topic_counts + self.beta_sum
            )
            refresh = max(int(self.corpus.word_frequencies()[word]), 8)
            proposal = _StaleWordProposal(weights, refresh)
            self._word_proposals[word] = proposal
        return proposal

    def _draw_doc_proposal(
        self, doc_token_indices: np.ndarray, doc_length: int, rng: np.random.Generator
    ) -> int:
        """Draw from ``q_doc(k) ∝ C_dk + α_k`` via random positioning."""
        if rng.random() * (doc_length + self.alpha_sum) < doc_length:
            position = int(rng.integers(doc_length))
            return int(self.state.assignments[doc_token_indices[position]])
        return self._alpha_alias.draw(rng)

    # ------------------------------------------------------------------ #
    def _sample_iteration(self) -> None:
        if self.kernel == "slab":
            delayed_cycle_sweep(
                self.state,
                self.alpha,
                self.alpha_sum,
                self.beta,
                self.beta_sum,
                self.num_mh_steps,
                self.rng,
                alpha_alias=None if self._alpha_is_symmetric else self._alpha_alias,
                threads=self.threads,
            )
            return
        self._sample_iteration_scalar()

    def _sample_iteration_scalar(self) -> None:
        state = self.state
        rng = self.rng
        alpha = self.alpha
        beta = self.beta
        beta_sum = self.beta_sum

        for doc_index in range(self.corpus.num_documents):
            token_indices = self.corpus.document_token_indices(doc_index)
            doc_length = int(token_indices.size)
            if doc_length == 0:
                continue
            doc_counts = state.doc_topic[doc_index]

            for token_index in token_indices:
                word = int(self.corpus.token_words[token_index])
                current = int(state.assignments[token_index])

                # One "MH step" is a full cycle: one doc-proposal move followed
                # by one word-proposal move, matching the paper's usage of M.
                for step in range(2 * self.num_mh_steps):
                    use_doc_proposal = step % 2 == 0
                    if use_doc_proposal:
                        candidate = self._draw_doc_proposal(token_indices, doc_length, rng)
                    else:
                        candidate = self._word_proposal(word).draw(rng)
                    if candidate == current:
                        continue

                    # ¬dn counts: exclude the token being resampled.
                    doc_current = doc_counts[current] - 1
                    word_current = state.word_topic[word, current] - 1
                    topic_current = state.topic_counts[current] - 1
                    doc_candidate = doc_counts[candidate]
                    word_candidate = state.word_topic[word, candidate]
                    topic_candidate = state.topic_counts[candidate]

                    target_ratio = (
                        (doc_candidate + alpha[candidate])
                        * (word_candidate + beta)
                        * (topic_current + beta_sum)
                    ) / (
                        (doc_current + alpha[current])
                        * (word_current + beta)
                        * (topic_candidate + beta_sum)
                    )
                    if use_doc_proposal:
                        # q_doc uses the *full* counts (the token included).
                        proposal_ratio = (doc_counts[current] + alpha[current]) / (
                            doc_counts[candidate] + alpha[candidate]
                        )
                    else:
                        stale = self._word_proposal(word)
                        proposal_ratio = stale.density(current) / max(
                            stale.density(candidate), 1e-300
                        )

                    acceptance = min(1.0, target_ratio * proposal_ratio)
                    if rng.random() < acceptance:
                        # Instant count update (the defining difference from
                        # WarpLDA's delayed updates).
                        doc_counts[current] -= 1
                        state.word_topic[word, current] -= 1
                        state.topic_counts[current] -= 1
                        doc_counts[candidate] += 1
                        state.word_topic[word, candidate] += 1
                        state.topic_counts[candidate] += 1
                        state.assignments[token_index] = candidate
                        current = candidate
