"""Baseline LDA samplers.

These are the algorithms the paper analyses and compares against (Table 2):

* :class:`~repro.samplers.cgs.CollapsedGibbsSampler` — plain collapsed Gibbs
  sampling, O(K) per token (Griffiths & Steyvers 2004).
* :class:`~repro.samplers.sparselda.SparseLDASampler` — the three-bucket
  sparsity-aware decomposition of Yao et al. (KDD 2009).
* :class:`~repro.samplers.aliaslda.AliasLDASampler` — sparse document part plus
  a stale alias-table word proposal with MH correction (Li et al., KDD 2014).
* :class:`~repro.samplers.fpluslda.FPlusLDASampler` — word-by-word exact
  sampling with an F+ tree (Yu et al., WWW 2015).
* :class:`~repro.samplers.lightlda.LightLDASampler` — O(1) cycle
  Metropolis-Hastings proposals (Yuan et al., WWW 2015).

All of them share :class:`~repro.samplers.base.LDASampler` /
:class:`~repro.samplers.base.TopicState`, so they are interchangeable in the
benchmark harness and the example applications.
"""

from repro.samplers.aliaslda import AliasLDASampler
from repro.samplers.base import LDASampler, TopicState
from repro.samplers.cgs import CollapsedGibbsSampler
from repro.samplers.fpluslda import FPlusLDASampler
from repro.samplers.lightlda import LightLDASampler
from repro.samplers.sparselda import SparseLDASampler

__all__ = [
    "AliasLDASampler",
    "CollapsedGibbsSampler",
    "FPlusLDASampler",
    "LDASampler",
    "LightLDASampler",
    "SparseLDASampler",
    "TopicState",
]
