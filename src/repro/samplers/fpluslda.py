"""F+LDA (Yu, Hsieh, Yun, Vishwanathan & Dhillon, WWW 2015).

Same factorisation as AliasLDA::

    p(k) ∝ C_dk (C_wk + β) / (C_k + β̄)    (document part)
         + α_k (C_wk + β) / (C_k + β̄)     (prior part)

but the tokens are visited **word-by-word** and the prior part is sampled
*exactly* with an F+ tree that supports O(log K) weight updates, so no MH
correction is needed.  The document part is enumerated over the non-zero
entries of ``c_d`` — since documents are visited out of order, these are the
random accesses into the O(DK) matrix that the paper's Table 2 attributes to
F+LDA.
"""

from __future__ import annotations

import numpy as np

from repro.samplers.base import LDASampler
from repro.sampling.ftree import FPlusTree

__all__ = ["FPlusLDASampler"]


class FPlusLDASampler(LDASampler):
    """Exact sparsity-aware sampler visiting tokens word-by-word."""

    name = "F+LDA"

    def _sample_iteration(self) -> None:
        state = self.state
        rng = self.rng
        alpha = self.alpha
        beta = self.beta
        beta_sum = self.beta_sum

        for word in range(self.corpus.vocabulary_size):
            token_indices = self.corpus.word_token_indices(word)
            if token_indices.size == 0:
                continue
            word_counts = state.word_topic[word]

            # Exact prior-part weights for this word, kept in sync by O(log K)
            # updates as counts change.
            tree = FPlusTree(
                alpha * (word_counts + beta) / (state.topic_counts + beta_sum)
            )
            uniforms = rng.random(token_indices.size)

            for position, token_index in enumerate(token_indices):
                doc = int(self.corpus.token_documents[token_index])
                old_topic = int(state.assignments[token_index])

                # Remove the token and refresh the affected tree leaf.
                state.doc_topic[doc, old_topic] -= 1
                word_counts[old_topic] -= 1
                state.topic_counts[old_topic] -= 1
                tree.update(
                    old_topic,
                    alpha[old_topic]
                    * (word_counts[old_topic] + beta)
                    / (state.topic_counts[old_topic] + beta_sum),
                )

                # Document part over the non-zero entries of c_d.
                doc_row = state.doc_topic[doc]
                doc_nonzero = np.nonzero(doc_row)[0]
                doc_weights = (
                    doc_row[doc_nonzero]
                    * (word_counts[doc_nonzero] + beta)
                    / (state.topic_counts[doc_nonzero] + beta_sum)
                )
                doc_total = float(doc_weights.sum())

                target = uniforms[position] * (doc_total + tree.total)
                if target < doc_total and doc_total > 0:
                    cumulative = np.cumsum(doc_weights)
                    choice = int(np.searchsorted(cumulative, target))
                    choice = min(choice, doc_nonzero.size - 1)
                    new_topic = int(doc_nonzero[choice])
                else:
                    new_topic = tree.sample(rng)

                # Add the token back and refresh the affected tree leaf.
                state.doc_topic[doc, new_topic] += 1
                word_counts[new_topic] += 1
                state.topic_counts[new_topic] += 1
                state.assignments[token_index] = new_topic
                tree.update(
                    new_topic,
                    alpha[new_topic]
                    * (word_counts[new_topic] + beta)
                    / (state.topic_counts[new_topic] + beta_sum),
                )
