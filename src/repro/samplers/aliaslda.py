"""AliasLDA (Li, Ahmed, Ravi & Smola, KDD 2014).

The conditional is factorised as::

    p(k) ∝ C_dk (C_wk + β) / (C_k + β̄)    (document part, fresh counts)
         + α_k (C_wk + β) / (C_k + β̄)     (prior part)

The document part is enumerated exactly over the non-zero entries of ``c_d``
(O(K_d)).  The prior part is sampled from a **stale** per-word alias table in
O(1); a Metropolis-Hastings correction step removes the bias introduced by the
staleness.  Tables are rebuilt after a word has consumed as many draws as the
table has entries, which amortises the O(K) construction cost.

As in the original algorithm, tokens are visited document-by-document, so the
random accesses to ``C_w`` spread over the whole O(KV) matrix — this is the
behaviour the paper's Table 2 records.

The default ``kernel="slab"`` path runs the same decomposition under delayed
counts via :func:`repro.kernels.cgs.blocked_gibbs_sweep` with
``stale_word_counts=True``: the word/topic factor is frozen at block entry
(the role the stale alias tables play — the scalar sampler likewise refreshes
a word's table only every ~K draws), the document factor is fresh per inner
pass, and — because the proposal then *equals* the stale conditional — the
Metropolis-Hastings staleness correction cancels identically, leaving an
exact blocked draw.  ``kernel="scalar"`` keeps the original per-token
MH loop with amortised alias-table rebuilds as the correctness oracle.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels.cgs import blocked_gibbs_sweep
from repro.samplers.base import LDASampler
from repro.sampling.alias import AliasTable

__all__ = ["AliasLDASampler"]


class _StaleWordTable:
    """A stale alias table for the prior part of one word's conditional."""

    __slots__ = ("alias", "topics", "weights", "total", "draws_remaining")

    def __init__(self, alias: AliasTable, topics: np.ndarray, weights: np.ndarray):
        self.alias = alias
        self.topics = topics
        self.weights = weights
        self.total = alias.total_weight
        self.draws_remaining = max(int(topics.size), 4)

    def density(self, topic: int) -> float:
        """Stale (unnormalised) proposal weight of ``topic``."""
        return float(self.weights[topic])

    def draw(self, rng: np.random.Generator) -> int:
        self.draws_remaining -= 1
        return int(self.topics[self.alias.draw(rng)])


class AliasLDASampler(LDASampler):
    """Sparsity-aware + MH sampler with stale per-word alias tables."""

    name = "AliasLDA"
    KERNELS = ("slab", "scalar")
    DEFAULT_KERNEL = "slab"

    def __init__(self, *args, num_mh_steps: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        if num_mh_steps <= 0:
            raise ValueError(f"num_mh_steps must be positive, got {num_mh_steps}")
        self.num_mh_steps = int(num_mh_steps)
        self._word_tables: Dict[int, _StaleWordTable] = {}

    def invalidate_caches(self) -> None:
        """Drop the stale per-word alias tables (counts changed underneath)."""
        self._word_tables.clear()

    # ------------------------------------------------------------------ #
    def _build_word_table(self, word: int) -> _StaleWordTable:
        """(Re)build the stale alias table for the prior part of ``word``."""
        weights = (
            self.alpha
            * (self.state.word_topic[word] + self.beta)
            / (self.state.topic_counts + self.beta_sum)
        )
        topics = np.arange(self.num_topics)
        table = _StaleWordTable(AliasTable(weights), topics, weights.copy())
        self._word_tables[word] = table
        return table

    def _word_table(self, word: int) -> _StaleWordTable:
        table = self._word_tables.get(word)
        if table is None or table.draws_remaining <= 0:
            table = self._build_word_table(word)
        return table

    # ------------------------------------------------------------------ #
    def _true_weight(self, doc: int, word: int, topic: int) -> float:
        """Fresh (¬dn already removed) conditional weight of ``topic``."""
        return float(
            (self.state.doc_topic[doc, topic] + self.alpha[topic])
            * (self.state.word_topic[word, topic] + self.beta)
            / (self.state.topic_counts[topic] + self.beta_sum)
        )

    def _proposal_weight(
        self, doc: int, topic: int, table: _StaleWordTable, doc_nonzero: np.ndarray,
        doc_weights: np.ndarray
    ) -> float:
        """Unnormalised proposal density (doc part fresh, prior part stale)."""
        doc_part = 0.0
        positions = np.nonzero(doc_nonzero == topic)[0]
        if positions.size:
            doc_part = float(doc_weights[positions[0]])
        return doc_part + table.density(topic)

    def _sample_iteration(self) -> None:
        if self.kernel == "slab":
            blocked_gibbs_sweep(
                self.state,
                self.alpha,
                self.beta,
                self.beta_sum,
                self.rng,
                stale_word_counts=True,
                threads=self.threads,
            )
            return
        self._sample_iteration_scalar()

    def _sample_iteration_scalar(self) -> None:
        state = self.state
        rng = self.rng
        beta = self.beta
        beta_sum = self.beta_sum

        for doc_index in range(self.corpus.num_documents):
            token_indices = self.corpus.document_token_indices(doc_index)
            doc_counts = state.doc_topic[doc_index]
            for token_index in token_indices:
                word = int(self.corpus.token_words[token_index])
                old_topic = int(state.assignments[token_index])

                # Remove the token (¬dn counts).
                doc_counts[old_topic] -= 1
                state.word_topic[word, old_topic] -= 1
                state.topic_counts[old_topic] -= 1

                table = self._word_table(word)
                doc_nonzero = np.nonzero(doc_counts)[0]
                doc_weights = (
                    doc_counts[doc_nonzero]
                    * (state.word_topic[word, doc_nonzero] + beta)
                    / (state.topic_counts[doc_nonzero] + beta_sum)
                )
                doc_total = float(doc_weights.sum())

                current = old_topic
                current_true = self._true_weight(doc_index, word, current)
                current_proposal = self._proposal_weight(
                    doc_index, current, table, doc_nonzero, doc_weights
                )
                for _ in range(self.num_mh_steps):
                    # Draw from the mixture proposal.
                    if rng.random() * (doc_total + table.total) < doc_total and doc_total > 0:
                        cumulative = np.cumsum(doc_weights)
                        choice = int(
                            np.searchsorted(cumulative, rng.random() * cumulative[-1])
                        )
                        choice = min(choice, doc_nonzero.size - 1)
                        candidate = int(doc_nonzero[choice])
                    else:
                        candidate = table.draw(rng)

                    candidate_true = self._true_weight(doc_index, word, candidate)
                    candidate_proposal = self._proposal_weight(
                        doc_index, candidate, table, doc_nonzero, doc_weights
                    )
                    acceptance = 1.0
                    denominator = current_true * candidate_proposal
                    if denominator > 0:
                        acceptance = min(
                            1.0, (candidate_true * current_proposal) / denominator
                        )
                    if rng.random() < acceptance:
                        current = candidate
                        current_true = candidate_true
                        current_proposal = candidate_proposal

                # Add the token back with the (possibly unchanged) topic.
                new_topic = current
                doc_counts[new_topic] += 1
                state.word_topic[word, new_topic] += 1
                state.topic_counts[new_topic] += 1
                state.assignments[token_index] = new_topic
