"""Plain collapsed Gibbs sampling (Griffiths & Steyvers 2004).

For each token the full conditional of Eq. (1) is enumerated over all ``K``
topics, so the per-token cost is O(K).  This is the reference sampler: every
faster algorithm in the library must target the same stationary distribution,
and the tests compare their conditionals against this one.

Two execution paths share the conditional.  The default ``kernel="slab"``
path runs the blocked dense kernel of :mod:`repro.kernels.cgs`: the
conditional is enumerated for a whole document block with one matrix
expression, sampled with one cumulative-sum pass, and counts are scattered
back per block — counts are frozen within a block (the AD-LDA delayed-count
device), so the chain is statistically equivalent to, but not a bit-identical
replay of, the sequential scan.  ``kernel="scalar"`` keeps the token-by-token
loop as the correctness oracle.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.cgs import blocked_gibbs_sweep
from repro.samplers.base import LDASampler

__all__ = ["CollapsedGibbsSampler"]


class CollapsedGibbsSampler(LDASampler):
    """O(K)-per-token collapsed Gibbs sampler, visiting tokens document-by-document."""

    name = "CGS"
    KERNELS = ("slab", "scalar")
    DEFAULT_KERNEL = "slab"

    def conditional_distribution(self, token_index: int) -> np.ndarray:
        """Unnormalised CGS conditional of Eq. (1) for one token.

        The token's own assignment is excluded from the counts (the ``¬dn``
        superscript in the paper).  Exposed for tests, which validate the fast
        samplers against it.
        """
        doc = int(self.corpus.token_documents[token_index])
        word = int(self.corpus.token_words[token_index])
        topic = int(self.state.assignments[token_index])

        doc_counts = self.state.doc_topic[doc].astype(np.float64).copy()
        word_counts = self.state.word_topic[word].astype(np.float64).copy()
        topic_counts = self.state.topic_counts.astype(np.float64).copy()
        doc_counts[topic] -= 1
        word_counts[topic] -= 1
        topic_counts[topic] -= 1

        return (doc_counts + self.alpha) * (word_counts + self.beta) / (
            topic_counts + self.beta_sum
        )

    def _sample_iteration(self) -> None:
        if self.kernel == "slab":
            blocked_gibbs_sweep(
                self.state,
                self.alpha,
                self.beta,
                self.beta_sum,
                self.rng,
                threads=self.threads,
            )
            return
        self._sample_iteration_scalar()

    def _sample_iteration_scalar(self) -> None:
        state = self.state
        alpha = self.alpha
        beta = self.beta
        beta_sum = self.beta_sum
        token_documents = self.corpus.token_documents
        token_words = self.corpus.token_words
        rng = self.rng

        # Pre-draw one uniform per token; the inverse-CDF draw below consumes
        # exactly one.
        uniforms = rng.random(self.corpus.num_tokens)

        for token_index in range(self.corpus.num_tokens):
            doc = token_documents[token_index]
            word = token_words[token_index]
            old_topic = state.assignments[token_index]

            state.doc_topic[doc, old_topic] -= 1
            state.word_topic[word, old_topic] -= 1
            state.topic_counts[old_topic] -= 1

            weights = (
                (state.doc_topic[doc] + alpha)
                * (state.word_topic[word] + beta)
                / (state.topic_counts + beta_sum)
            )
            cumulative = np.cumsum(weights)
            new_topic = int(
                np.searchsorted(cumulative, uniforms[token_index] * cumulative[-1])
            )
            if new_topic >= self.num_topics:  # numerical edge case
                new_topic = self.num_topics - 1

            state.assignments[token_index] = new_topic
            state.doc_topic[doc, new_topic] += 1
            state.word_topic[word, new_topic] += 1
            state.topic_counts[new_topic] += 1
