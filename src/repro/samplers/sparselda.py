"""SparseLDA (Yao, Mimno & McCallum, KDD 2009).

The CGS conditional is split into three buckets::

    p(k) ∝ α_k β / (C_k + β̄)                     (s: smoothing-only)
         + C_dk β / (C_k + β̄)                    (r: document)
         + C_wk (C_dk + α_k) / (C_k + β̄)         (q: word)

The s bucket changes only when a global topic count changes, the r bucket only
when the current document's counts change, and the q bucket is recomputed per
token over the non-zero entries of ``c_w``.  The per-token cost is therefore
O(K_d + K_w) — but, as the paper's Table 2 notes, the random accesses still
touch both ``C_d`` and the large ``C_w`` matrix.

This implementation maintains the s and r sums incrementally (recomputed at
the start of every document for numerical hygiene) and samples exactly, so it
is a drop-in exact CGS sampler.
"""

from __future__ import annotations

import numpy as np

from repro.samplers.base import LDASampler

__all__ = ["SparseLDASampler"]


class SparseLDASampler(LDASampler):
    """Exact sparsity-aware CGS sampler, visiting tokens document-by-document."""

    name = "SparseLDA"

    def _sample_iteration(self) -> None:
        state = self.state
        alpha = self.alpha
        beta = self.beta
        beta_sum = self.beta_sum
        rng = self.rng

        denominators = 1.0 / (state.topic_counts + beta_sum)
        s_bucket = float(np.sum(alpha * beta * denominators))

        for doc_index in range(self.corpus.num_documents):
            token_indices = self.corpus.document_token_indices(doc_index)
            if token_indices.size == 0:
                continue
            doc_counts = state.doc_topic[doc_index]
            uniforms = rng.random(token_indices.size)

            # Document bucket and per-document q coefficients, rebuilt when the
            # document is entered and updated incrementally inside it.
            r_bucket = float(np.sum(doc_counts * beta * denominators))
            q_coefficients = (alpha + doc_counts) * denominators

            for position, token_index in enumerate(token_indices):
                word = int(self.corpus.token_words[token_index])
                old_topic = int(state.assignments[token_index])

                # --- remove the token, updating the buckets incrementally ---
                s_bucket -= alpha[old_topic] * beta * denominators[old_topic]
                r_bucket -= doc_counts[old_topic] * beta * denominators[old_topic]
                doc_counts[old_topic] -= 1
                state.word_topic[word, old_topic] -= 1
                state.topic_counts[old_topic] -= 1
                denominators[old_topic] = 1.0 / (
                    state.topic_counts[old_topic] + beta_sum
                )
                s_bucket += alpha[old_topic] * beta * denominators[old_topic]
                r_bucket += doc_counts[old_topic] * beta * denominators[old_topic]
                q_coefficients[old_topic] = (
                    alpha[old_topic] + doc_counts[old_topic]
                ) * denominators[old_topic]

                # --- word bucket over the non-zero entries of c_w ---
                word_row = state.word_topic[word]
                nonzero_topics = np.nonzero(word_row)[0]
                word_weights = word_row[nonzero_topics] * q_coefficients[nonzero_topics]
                q_bucket = float(word_weights.sum())

                # --- sample the bucket, then the topic within it ---
                target = uniforms[position] * (s_bucket + r_bucket + q_bucket)
                if target < q_bucket and q_bucket > 0:
                    cumulative = np.cumsum(word_weights)
                    choice = int(np.searchsorted(cumulative, target))
                    choice = min(choice, nonzero_topics.size - 1)
                    new_topic = int(nonzero_topics[choice])
                elif target < q_bucket + r_bucket:
                    target -= q_bucket
                    doc_nonzero = np.nonzero(doc_counts)[0]
                    doc_weights = doc_counts[doc_nonzero] * beta * denominators[doc_nonzero]
                    cumulative = np.cumsum(doc_weights)
                    choice = int(np.searchsorted(cumulative, target))
                    choice = min(choice, doc_nonzero.size - 1)
                    new_topic = int(doc_nonzero[choice])
                else:
                    target -= q_bucket + r_bucket
                    smoothing_weights = alpha * beta * denominators
                    cumulative = np.cumsum(smoothing_weights)
                    choice = int(np.searchsorted(cumulative, target))
                    new_topic = min(choice, self.num_topics - 1)

                # --- add the token back with the new topic ---
                s_bucket -= alpha[new_topic] * beta * denominators[new_topic]
                r_bucket -= doc_counts[new_topic] * beta * denominators[new_topic]
                doc_counts[new_topic] += 1
                state.word_topic[word, new_topic] += 1
                state.topic_counts[new_topic] += 1
                denominators[new_topic] = 1.0 / (
                    state.topic_counts[new_topic] + beta_sum
                )
                s_bucket += alpha[new_topic] * beta * denominators[new_topic]
                r_bucket += doc_counts[new_topic] * beta * denominators[new_topic]
                q_coefficients[new_topic] = (
                    alpha[new_topic] + doc_counts[new_topic]
                ) * denominators[new_topic]
                state.assignments[token_index] = new_topic
