"""Shared infrastructure for collapsed-Gibbs-style LDA samplers.

:class:`TopicState` owns the per-token topic assignments ``Z`` and the three
count structures of Eq. (1): the document-topic matrix ``C_d``, the word-topic
matrix ``C_w`` and the global topic vector ``c_k``.  :class:`LDASampler` is the
abstract base every baseline derives from; it provides hyper-parameter
handling (α = 50/K, β = 0.01 by default, as in Sec. 6.1), the ``fit`` loop
with optional convergence tracking, and the Θ / Φ point estimates.

WarpLDA does **not** derive from this class — by design it stores no count
matrices (see :mod:`repro.core.warplda`) — but exposes the same ``fit`` /
``log_likelihood`` / ``phi`` interface so the benchmark harness can treat all
samplers uniformly.
"""

from __future__ import annotations

import abc
import time
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.corpus.corpus import Corpus
from repro.evaluation.convergence import ConvergenceTracker
from repro.evaluation.likelihood import log_joint_likelihood
from repro.obs import get_telemetry
from repro.sampling.rng import RngLike, ensure_rng, export_rng_state, restore_rng_state

__all__ = [
    "TopicState",
    "LDASampler",
    "resolve_hyperparameters",
    "resolve_kernel",
    "validate_hyperparameters",
]


def resolve_kernel(sampler_cls: type, kernel: str) -> str:
    """Best supported execution path for ``kernel`` on ``sampler_cls``.

    The degradation order mirrors the kernels' capability ladder:
    a requested path the sampler implements is used as-is; ``"jit"`` (the
    WarpLDA-only compiled tier) degrades to ``"slab"`` where available; and
    anything else degrades to ``"scalar"``, which every sampler implements.
    This keeps one config (``TrainerConfig``/``ModelSpec``) valid across
    samplers with different kernel support instead of erroring midway
    through construction.
    """
    kernels = getattr(sampler_cls, "KERNELS", ("scalar",))
    if kernel in kernels:
        return kernel
    if "slab" in kernels:
        return "slab"
    return "scalar"


def resolve_hyperparameters(
    num_topics: int,
    alpha: Optional[Union[float, np.ndarray]],
    beta: float,
    vocabulary_size: int,
) -> tuple[np.ndarray, float, float, float]:
    """Return ``(alpha_vector, alpha_sum, beta, beta_sum)``.

    ``alpha=None`` resolves to the paper's default 50/K (symmetric).
    """
    if num_topics <= 0:
        raise ValueError(f"num_topics must be positive, got {num_topics}")
    if alpha is None:
        alpha = 50.0 / num_topics
    alpha_vector = np.asarray(alpha, dtype=np.float64)
    if alpha_vector.ndim == 0:
        alpha_vector = np.full(num_topics, float(alpha_vector))
    if alpha_vector.shape != (num_topics,):
        raise ValueError(
            f"alpha must be a scalar or length-{num_topics} vector, got shape "
            f"{alpha_vector.shape}"
        )
    if np.any(alpha_vector <= 0):
        raise ValueError("alpha entries must be positive")
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    return alpha_vector, float(alpha_vector.sum()), float(beta), float(beta * vocabulary_size)


def validate_hyperparameters(
    num_topics: int,
    alpha: Optional[Union[float, np.ndarray]],
    beta: float,
) -> None:
    """Raise the shared ``ValueError`` family for an invalid ``(K, α, β)``.

    Every entry point — the sampler constructors, ``WarpLDAConfig``,
    ``TrainerConfig``, ``OnlineTrainerConfig`` and ``repro.api.ModelSpec`` —
    funnels through this one check, so ``num_topics=0`` or a negative ``beta``
    raises the same error everywhere instead of only where a particular
    config dataclass happened to validate it.
    """
    resolve_hyperparameters(num_topics, alpha, beta, vocabulary_size=1)


class TopicState:
    """Topic assignments plus the count matrices of collapsed Gibbs sampling.

    Parameters
    ----------
    corpus:
        The corpus being sampled.
    num_topics:
        Number of topics ``K``.
    rng:
        Seed or generator used for the random initial assignment.
    assignments:
        Optional explicit initial assignments (length ``num_tokens``); if
        omitted, topics are drawn uniformly at random.
    """

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int,
        rng: RngLike = None,
        assignments: Optional[np.ndarray] = None,
    ):
        if num_topics <= 0:
            raise ValueError(f"num_topics must be positive, got {num_topics}")
        self.corpus = corpus
        self.num_topics = int(num_topics)
        rng = ensure_rng(rng)

        if assignments is None:
            assignments = rng.integers(num_topics, size=corpus.num_tokens)
        assignments = np.asarray(assignments, dtype=np.int64)
        if assignments.shape != (corpus.num_tokens,):
            raise ValueError(
                f"assignments must have length {corpus.num_tokens}, got shape "
                f"{assignments.shape}"
            )
        if assignments.size and (assignments.min() < 0 or assignments.max() >= num_topics):
            raise ValueError("assignments contain out-of-range topics")
        self.assignments = assignments

        self.doc_topic = np.zeros((corpus.num_documents, num_topics), dtype=np.int64)
        self.word_topic = np.zeros((corpus.vocabulary_size, num_topics), dtype=np.int64)
        self.topic_counts = np.zeros(num_topics, dtype=np.int64)
        self.recompute_counts()

    # ------------------------------------------------------------------ #
    def recompute_counts(self) -> None:
        """Rebuild all three count structures from the assignments."""
        self.doc_topic[:] = 0
        self.word_topic[:] = 0
        np.add.at(
            self.doc_topic, (self.corpus.token_documents, self.assignments), 1
        )
        np.add.at(self.word_topic, (self.corpus.token_words, self.assignments), 1)
        self.topic_counts = self.word_topic.sum(axis=0)

    def remove_token(self, token_index: int) -> int:
        """Decrement all counts for one token and return its current topic."""
        topic = int(self.assignments[token_index])
        doc = int(self.corpus.token_documents[token_index])
        word = int(self.corpus.token_words[token_index])
        self.doc_topic[doc, topic] -= 1
        self.word_topic[word, topic] -= 1
        self.topic_counts[topic] -= 1
        return topic

    def assign_token(self, token_index: int, topic: int) -> None:
        """Set the topic of one token and increment all counts."""
        doc = int(self.corpus.token_documents[token_index])
        word = int(self.corpus.token_words[token_index])
        self.assignments[token_index] = topic
        self.doc_topic[doc, topic] += 1
        self.word_topic[word, topic] += 1
        self.topic_counts[topic] += 1

    # ------------------------------------------------------------------ #
    # Shard-state hooks for data-parallel training (repro.training)
    # ------------------------------------------------------------------ #
    def local_word_topic(self) -> np.ndarray:
        """The ``V x K`` word-topic counts contributed by *this* corpus.

        Unlike :attr:`word_topic` — which may hold imported global counts
        during a data-parallel epoch — this is always recomputed from the
        assignments, i.e. the shard's own contribution to the global state.
        """
        counts = np.zeros_like(self.word_topic)
        np.add.at(counts, (self.corpus.token_words, self.assignments), 1)
        return counts

    def import_global_word_topic(self, word_topic: np.ndarray) -> None:
        """Install frozen *global* word-topic counts for a data-parallel epoch.

        The document-topic counts stay local (documents are disjoint across
        shards, so they are exact); the word-topic matrix and the topic totals
        are replaced by the cluster-wide counts so the conditional
        distributions see every shard's tokens.  This is the AD-LDA /
        ``ldamulticore`` pattern: sample against counts frozen at the epoch
        barrier, then merge deltas.
        """
        word_topic = np.asarray(word_topic, dtype=np.int64)
        if word_topic.shape != self.word_topic.shape:
            raise ValueError(
                f"word_topic must have shape {self.word_topic.shape}, got "
                f"{word_topic.shape}"
            )
        self.word_topic = word_topic.copy()
        self.topic_counts = self.word_topic.sum(axis=0)

    def word_topic_delta(self, baseline: np.ndarray) -> np.ndarray:
        """Count changes relative to ``baseline`` (what a barrier merge sums)."""
        baseline = np.asarray(baseline, dtype=np.int64)
        if baseline.shape != self.word_topic.shape:
            raise ValueError(
                f"baseline must have shape {self.word_topic.shape}, got "
                f"{baseline.shape}"
            )
        return self.word_topic - baseline

    def apply_word_topic_delta(self, delta: np.ndarray) -> None:
        """Merge another shard's count delta into this state's word-topic counts."""
        delta = np.asarray(delta, dtype=np.int64)
        if delta.shape != self.word_topic.shape:
            raise ValueError(
                f"delta must have shape {self.word_topic.shape}, got {delta.shape}"
            )
        self.word_topic += delta
        self.topic_counts = self.word_topic.sum(axis=0)
        if np.any(self.word_topic < 0):
            raise ValueError("word-topic counts became negative after delta merge")

    def check_consistency(self) -> bool:
        """Verify that the count matrices match the assignments exactly."""
        doc_topic = np.zeros_like(self.doc_topic)
        word_topic = np.zeros_like(self.word_topic)
        np.add.at(doc_topic, (self.corpus.token_documents, self.assignments), 1)
        np.add.at(word_topic, (self.corpus.token_words, self.assignments), 1)
        return (
            np.array_equal(doc_topic, self.doc_topic)
            and np.array_equal(word_topic, self.word_topic)
            and np.array_equal(word_topic.sum(axis=0), self.topic_counts)
        )


class LDASampler(abc.ABC):
    """Abstract base class of all count-matrix-based LDA samplers.

    Parameters
    ----------
    corpus:
        Corpus to train on.
    num_topics:
        Number of topics ``K``.
    alpha:
        Symmetric scalar or length-``K`` document Dirichlet parameter;
        defaults to ``50 / K`` (paper, Sec. 6.1).
    beta:
        Symmetric word Dirichlet parameter; defaults to ``0.01``.
    seed:
        Seed or generator controlling both the initial assignment and the
        sampling trajectory.
    kernel:
        Execution path: one of the class's :attr:`KERNELS`.  ``None`` picks
        :attr:`DEFAULT_KERNEL`.  Samplers with a vectorised path in
        :mod:`repro.kernels` accept ``"slab"`` (their default) and keep the
        legacy per-token loop behind ``"scalar"`` as the correctness oracle;
        the rest only accept ``"scalar"``.
    threads:
        Worker threads for the slab kernels (dispatched through
        :mod:`repro.kernels.pool`); ``None`` defers to the ``REPRO_THREADS``
        environment variable (default 1).  The trajectory is bit-identical
        for every thread count; the scalar path ignores the setting.
    """

    #: Human-readable algorithm name used in benchmark tables.
    name: str = "lda"
    #: Execution paths this sampler implements.
    KERNELS: tuple = ("scalar",)
    #: Path chosen when ``kernel=None``.
    DEFAULT_KERNEL: str = "scalar"

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int,
        alpha: Optional[Union[float, np.ndarray]] = None,
        beta: float = 0.01,
        seed: RngLike = None,
        kernel: Optional[str] = None,
        threads: Optional[int] = None,
    ):
        self.corpus = corpus
        self.num_topics = int(num_topics)
        self.alpha, self.alpha_sum, self.beta, self.beta_sum = resolve_hyperparameters(
            num_topics, alpha, beta, corpus.vocabulary_size
        )
        if kernel is None:
            kernel = type(self).DEFAULT_KERNEL
        if kernel not in type(self).KERNELS:
            raise ValueError(
                f"{type(self).__name__} kernel must be one of "
                f"{type(self).KERNELS}, got {kernel!r}"
            )
        if threads is not None and threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        self.kernel = kernel
        self.threads = threads
        self.rng = ensure_rng(seed)
        self.state = TopicState(corpus, num_topics, rng=self.rng)
        self.iterations_completed = 0

    # ------------------------------------------------------------------ #
    # Training loop
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _sample_iteration(self) -> None:
        """Run one full sweep over all tokens (algorithm specific)."""

    def fit(
        self,
        num_iterations: int,
        tracker: Optional[ConvergenceTracker] = None,
        evaluate_every: int = 1,
    ) -> "LDASampler":
        """Run ``num_iterations`` sweeps, optionally recording convergence.

        Parameters
        ----------
        num_iterations:
            Number of full passes over the corpus.
        tracker:
            Optional :class:`ConvergenceTracker`; if given, the log joint
            likelihood is recorded every ``evaluate_every`` iterations.
        evaluate_every:
            Evaluation stride (evaluation itself is not free).
        """
        if num_iterations < 0:
            raise ValueError(f"num_iterations must be non-negative, got {num_iterations}")
        if evaluate_every <= 0:
            raise ValueError(f"evaluate_every must be positive, got {evaluate_every}")
        if tracker is not None:
            tracker.start()
        obs = get_telemetry()
        for _ in range(num_iterations):
            if obs.enabled:
                started = time.perf_counter()
                with obs.span(
                    "sweep", sampler=self.name, iteration=self.iterations_completed
                ):
                    self._sample_iteration()
                elapsed = time.perf_counter() - started
                num_tokens = self.corpus.num_tokens
                obs.count("sampler.tokens_sampled", num_tokens)
                if elapsed > 0:
                    obs.record("sampler.tokens_per_sec", num_tokens / elapsed)
            else:
                self._sample_iteration()
            self.iterations_completed += 1
            if tracker is not None and self.iterations_completed % evaluate_every == 0:
                tracker.record(
                    iteration=self.iterations_completed,
                    log_likelihood=self.log_likelihood(),
                    tokens_processed=self.iterations_completed * self.corpus.num_tokens,
                )
        return self

    # ------------------------------------------------------------------ #
    # Model access
    # ------------------------------------------------------------------ #
    def log_likelihood(self) -> float:
        """Log joint likelihood ``log p(W, Z | α, β)`` of the current state."""
        return log_joint_likelihood(
            self.state.doc_topic, self.state.word_topic, self.alpha, self.beta
        )

    def theta(self) -> np.ndarray:
        """Posterior-mean estimate of the document-topic proportions Θ."""
        counts = self.state.doc_topic.astype(np.float64) + self.alpha
        return counts / counts.sum(axis=1, keepdims=True)

    def phi(self) -> np.ndarray:
        """Posterior-mean estimate of the topic-word distributions Φ (K x V)."""
        counts = self.state.word_topic.T.astype(np.float64) + self.beta
        return counts / counts.sum(axis=1, keepdims=True)

    def export_snapshot(self):
        """Freeze the current model into a :class:`~repro.serving.ModelSnapshot`.

        The snapshot captures Φ, α, β and the vocabulary and is the input to
        the serving layer (:mod:`repro.serving`).
        """
        # Imported here so the training layer has no hard dependency on serving.
        from repro.serving.snapshot import ModelSnapshot

        return ModelSnapshot.from_model(self)

    def invalidate_caches(self) -> None:
        """Drop derived sampling caches (stale alias tables and the like).

        Called whenever the count matrices change underneath the sampler —
        after a data-parallel global-count import or a state restore.  The
        base class keeps no caches; samplers that do (AliasLDA, LightLDA)
        override this.
        """

    # ------------------------------------------------------------------ #
    # Mutable-state export/import (checkpointing, data-parallel shards)
    # ------------------------------------------------------------------ #
    def export_state(self) -> Dict[str, Any]:
        """Capture everything needed to continue this run bit-exactly.

        The counts are not exported: they are a pure function of the
        assignments (and, during a data-parallel epoch, of the imported
        global counts, which the trainer re-broadcasts every epoch anyway).
        """
        return {
            "assignments": self.state.assignments.copy(),
            "rng_state": export_rng_state(self.rng),
            "iterations_completed": int(self.iterations_completed),
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        """Restore a state captured by :meth:`export_state`."""
        assignments = np.asarray(state["assignments"], dtype=np.int64)
        if assignments.shape != self.state.assignments.shape:
            raise ValueError(
                f"assignments must have shape {self.state.assignments.shape}, "
                f"got {assignments.shape}"
            )
        if assignments.size and (
            assignments.min() < 0 or assignments.max() >= self.num_topics
        ):
            raise ValueError("assignments contain out-of-range topics")
        self.state.assignments[:] = assignments
        self.state.recompute_counts()
        self.rng = restore_rng_state(state["rng_state"])
        self.iterations_completed = int(state["iterations_completed"])
        self.invalidate_caches()

    @property
    def assignments(self) -> np.ndarray:
        """Per-token topic assignments (aligned with the corpus token order)."""
        return self.state.assignments

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(K={self.num_topics}, D={self.corpus.num_documents}, "
            f"iterations={self.iterations_completed})"
        )
