"""Tests for the shared-memory snapshot lifecycle (`repro.service.shm`)."""

import json

import numpy as np
import pytest

from repro.corpus.vocabulary import Vocabulary
from repro.serving.snapshot import ModelSnapshot
from repro.service.shm import SharedSnapshot, attach, created_segments


def make_snapshot(seed=0, num_topics=4, vocab_size=30):
    rng = np.random.default_rng(seed)
    phi = rng.random((num_topics, vocab_size))
    phi /= phi.sum(axis=1, keepdims=True)
    vocabulary = Vocabulary([f"w{i}" for i in range(vocab_size)])
    return ModelSnapshot(phi, 0.1, 0.01, vocabulary, {"sampler": "fixture"})


@pytest.fixture
def snapshot():
    return make_snapshot()


class TestSharedSnapshot:
    def test_round_trip_preserves_everything(self, snapshot):
        shared = SharedSnapshot.create(snapshot, version=3)
        try:
            attached = attach(shared.descriptor())
            try:
                adopted = attached.snapshot
                np.testing.assert_array_equal(adopted.phi, snapshot.phi)
                np.testing.assert_array_equal(adopted.alpha, snapshot.alpha)
                assert adopted.beta == snapshot.beta
                assert adopted.vocabulary == snapshot.vocabulary
                assert adopted.metadata == snapshot.metadata
                assert attached.version == 3
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_attached_snapshot_is_zero_copy_and_read_only(self, snapshot):
        shared = SharedSnapshot.create(snapshot, version=0)
        try:
            attached = attach(shared.descriptor())
            try:
                adopted = attached.snapshot
                # The adopted phi IS the shared buffer, not a private copy.
                assert np.shares_memory(adopted.phi, attached.phi_view)
                assert not adopted.phi.flags.writeable
                assert not adopted.alpha.flags.writeable
                with pytest.raises(ValueError):
                    adopted.phi[0, 0] = 0.5
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_descriptor_is_json_serializable(self, snapshot):
        shared = SharedSnapshot.create(snapshot, version=1)
        try:
            descriptor = json.loads(json.dumps(shared.descriptor()))
            attached = attach(descriptor)
            try:
                np.testing.assert_array_equal(attached.snapshot.phi, snapshot.phi)
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_created_segments_accounting(self, snapshot):
        before = created_segments()
        shared = SharedSnapshot.create(snapshot)
        assert shared.segment_name in created_segments()
        shared.unlink()
        assert created_segments() == before

    def test_unlink_is_idempotent(self, snapshot):
        shared = SharedSnapshot.create(snapshot)
        shared.unlink()
        shared.unlink()  # second release is a no-op, not an error

    def test_attach_after_unlink_fails(self, snapshot):
        shared = SharedSnapshot.create(snapshot)
        descriptor = shared.descriptor()
        shared.unlink()
        with pytest.raises(FileNotFoundError):
            attach(descriptor)

    def test_attached_close_is_idempotent(self, snapshot):
        shared = SharedSnapshot.create(snapshot)
        try:
            attached = attach(shared.descriptor())
            attached.close()
            attached.close()
            with pytest.raises(RuntimeError, match="closed"):
                attached.snapshot
        finally:
            shared.unlink()


class TestAdopt:
    def test_adopt_requires_read_only_arrays(self, snapshot):
        phi = np.array(snapshot.phi)  # writeable copy
        alpha = np.array(snapshot.alpha)
        alpha.flags.writeable = False
        with pytest.raises(ValueError, match="read-only"):
            ModelSnapshot.adopt(
                phi, alpha, snapshot.beta, snapshot.vocabulary
            )

    def test_adopt_requires_matching_shapes(self, snapshot):
        phi = np.array(snapshot.phi)
        phi.flags.writeable = False
        alpha = np.zeros(snapshot.num_topics + 1)
        alpha.flags.writeable = False
        with pytest.raises(ValueError):
            ModelSnapshot.adopt(phi, alpha, snapshot.beta, snapshot.vocabulary)

    def test_adopt_does_not_copy(self, snapshot):
        phi = np.array(snapshot.phi)
        phi.flags.writeable = False
        alpha = np.array(snapshot.alpha)
        alpha.flags.writeable = False
        adopted = ModelSnapshot.adopt(
            phi, alpha, snapshot.beta, snapshot.vocabulary, {"origin": "test"}
        )
        assert adopted.phi is phi
        assert adopted.alpha is alpha
        assert adopted.metadata == {"origin": "test"}
        # Behaves exactly like a constructed snapshot.
        assert adopted == ModelSnapshot(
            phi, alpha, snapshot.beta, snapshot.vocabulary
        )
