"""Tests for TopicState and the LDASampler base class."""

import numpy as np
import pytest

from repro.evaluation import ConvergenceTracker
from repro.samplers import CollapsedGibbsSampler, TopicState
from repro.samplers.base import resolve_hyperparameters


class TestResolveHyperparameters:
    def test_default_alpha_is_50_over_k(self):
        alpha, alpha_sum, beta, beta_sum = resolve_hyperparameters(100, None, 0.01, 500)
        np.testing.assert_allclose(alpha, 0.5)
        assert alpha_sum == pytest.approx(50.0)
        assert beta_sum == pytest.approx(5.0)

    def test_vector_alpha(self):
        alpha, alpha_sum, _, _ = resolve_hyperparameters(3, np.array([0.1, 0.2, 0.3]), 0.01, 10)
        assert alpha_sum == pytest.approx(0.6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_topics": 0, "alpha": None, "beta": 0.01, "vocabulary_size": 5},
            {"num_topics": 2, "alpha": 0.0, "beta": 0.01, "vocabulary_size": 5},
            {"num_topics": 2, "alpha": None, "beta": 0.0, "vocabulary_size": 5},
            {"num_topics": 2, "alpha": np.array([0.1]), "beta": 0.01, "vocabulary_size": 5},
        ],
    )
    def test_invalid_inputs_raise(self, kwargs):
        with pytest.raises(ValueError):
            resolve_hyperparameters(**kwargs)


class TestTopicState:
    def test_random_initialisation_is_consistent(self, tiny_corpus):
        state = TopicState(tiny_corpus, num_topics=3, rng=0)
        assert state.assignments.shape == (tiny_corpus.num_tokens,)
        assert state.check_consistency()
        assert state.doc_topic.sum() == tiny_corpus.num_tokens
        assert state.word_topic.sum() == tiny_corpus.num_tokens
        np.testing.assert_array_equal(
            state.topic_counts, state.word_topic.sum(axis=0)
        )

    def test_explicit_assignments(self, tiny_corpus):
        assignments = np.zeros(tiny_corpus.num_tokens, dtype=np.int64)
        state = TopicState(tiny_corpus, num_topics=2, assignments=assignments)
        assert state.doc_topic[:, 0].sum() == tiny_corpus.num_tokens
        assert state.doc_topic[:, 1].sum() == 0

    def test_out_of_range_assignments_raise(self, tiny_corpus):
        assignments = np.full(tiny_corpus.num_tokens, 5, dtype=np.int64)
        with pytest.raises(ValueError):
            TopicState(tiny_corpus, num_topics=3, assignments=assignments)

    def test_remove_and_assign_token_roundtrip(self, tiny_corpus):
        state = TopicState(tiny_corpus, num_topics=3, rng=1)
        token = 5
        old_topic = state.remove_token(token)
        assert not state.check_consistency()  # token is in limbo
        state.assign_token(token, old_topic)
        assert state.check_consistency()

    def test_assign_different_topic_updates_counts(self, tiny_corpus):
        state = TopicState(tiny_corpus, num_topics=3, rng=1)
        token = 0
        doc = int(tiny_corpus.token_documents[token])
        old_topic = state.remove_token(token)
        new_topic = (old_topic + 1) % 3
        before = state.doc_topic[doc, new_topic]
        state.assign_token(token, new_topic)
        assert state.doc_topic[doc, new_topic] == before + 1
        assert state.check_consistency()


class TestFitLoop:
    def test_fit_records_convergence(self, tiny_corpus):
        sampler = CollapsedGibbsSampler(tiny_corpus, num_topics=3, seed=0)
        tracker = ConvergenceTracker("cgs")
        sampler.fit(4, tracker=tracker, evaluate_every=2)
        assert sampler.iterations_completed == 4
        assert len(tracker) == 2
        assert tracker.iterations == [2, 4]

    def test_fit_validates_arguments(self, tiny_corpus):
        sampler = CollapsedGibbsSampler(tiny_corpus, num_topics=3, seed=0)
        with pytest.raises(ValueError):
            sampler.fit(-1)
        with pytest.raises(ValueError):
            sampler.fit(1, evaluate_every=0)

    def test_theta_phi_are_distributions(self, tiny_corpus):
        sampler = CollapsedGibbsSampler(tiny_corpus, num_topics=3, seed=0).fit(2)
        theta = sampler.theta()
        phi = sampler.phi()
        assert theta.shape == (tiny_corpus.num_documents, 3)
        assert phi.shape == (3, tiny_corpus.vocabulary_size)
        np.testing.assert_allclose(theta.sum(axis=1), 1.0)
        np.testing.assert_allclose(phi.sum(axis=1), 1.0)

    def test_default_hyperparameters_match_paper(self, tiny_corpus):
        sampler = CollapsedGibbsSampler(tiny_corpus, num_topics=10, seed=0)
        np.testing.assert_allclose(sampler.alpha, 5.0)  # 50 / K
        assert sampler.beta == pytest.approx(0.01)
