"""Tests for training checkpoints (repro.training.checkpoint)."""

import json

import numpy as np
import pytest

from repro.corpus import SyntheticCorpusSpec, generate_lda_corpus
from repro.serving import InferenceEngine, ModelSnapshot
from repro.training import Checkpoint, ParallelTrainer
from repro.training.checkpoint import corpus_fingerprint


@pytest.fixture(scope="module")
def corpus():
    spec = SyntheticCorpusSpec(
        num_documents=30, vocabulary_size=60, mean_document_length=20, num_topics=4
    )
    return generate_lda_corpus(spec, seed=1)


@pytest.fixture()
def trained(corpus):
    with ParallelTrainer(
        corpus, num_workers=2, num_topics=5, seed=11, backend="inline"
    ) as trainer:
        trainer.train(3)
        yield trainer


class TestCheckpointRoundTrip:
    def test_save_load_preserves_everything(self, trained, corpus, tmp_path):
        checkpoint = Checkpoint.capture(trained)
        checkpoint.save(tmp_path / "ckpt")
        loaded = Checkpoint.load(tmp_path / "ckpt")

        assert loaded.snapshot == checkpoint.snapshot
        assert loaded.config == trained.config
        assert loaded.num_workers == trained.num_workers
        assert loaded.epochs_completed == 3
        assert np.array_equal(loaded.boundaries, trained.boundaries)
        for original, restored in zip(checkpoint.worker_states, loaded.worker_states):
            assert np.array_equal(original["assignments"], restored["assignments"])
            assert np.array_equal(original["proposals"], restored["proposals"])
            assert original["rng_state"] == restored["rng_state"]

    def test_checkpoint_snapshot_is_directly_servable(self, trained, tmp_path):
        trained.save_checkpoint(tmp_path / "ckpt")
        snapshot = ModelSnapshot.load(tmp_path / "ckpt" / "snapshot.npz")
        theta = InferenceEngine(snapshot).infer_ids([np.array([0, 1, 2])])
        assert theta.shape == (1, 5)
        assert snapshot.metadata["checkpoint_epoch"] == 3

    def test_json_sidecar_is_plain_json(self, trained, tmp_path):
        trained.save_checkpoint(tmp_path / "ckpt")
        meta = json.loads((tmp_path / "ckpt" / "checkpoint.json").read_text())
        assert meta["format_version"] == 1
        assert meta["config"]["sampler"] == "warplda"
        assert len(meta["rng_states"]) == 2

    def test_unsupported_version_rejected(self, trained, tmp_path):
        trained.save_checkpoint(tmp_path / "ckpt")
        meta_path = tmp_path / "ckpt" / "checkpoint.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format version"):
            Checkpoint.load(tmp_path / "ckpt")

    def test_missing_checkpoint_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Checkpoint.load(tmp_path / "nothing")

    def test_overwriting_save_is_clean_and_loadable(self, corpus, tmp_path):
        # Saving over an existing checkpoint must swap atomically: the new
        # state replaces the old and no staging/backup residue remains.
        target = tmp_path / "ckpt"
        with ParallelTrainer(
            corpus, num_workers=2, num_topics=5, seed=11, backend="inline"
        ) as trainer:
            trainer.train(1, checkpoint_dir=target)
            trainer.train(1, checkpoint_dir=target)
        assert Checkpoint.load(target).epochs_completed == 2
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "ckpt"]
        assert leftovers == []

    def test_load_falls_back_to_backup_after_torn_save(self, trained, tmp_path):
        # Simulate a save killed between its two renames: the target is gone
        # but the previous checkpoint survives as <dir>.bak — load must find
        # it instead of failing.
        target = tmp_path / "ckpt"
        trained.save_checkpoint(target)
        target.rename(tmp_path / "ckpt.bak")
        checkpoint = Checkpoint.load(target)
        assert checkpoint.epochs_completed == 3

    def test_failed_restore_does_not_leak_workers(self, trained, corpus, tmp_path):
        import multiprocessing

        trained.save_checkpoint(tmp_path / "ckpt")
        checkpoint = Checkpoint.load(tmp_path / "ckpt")
        checkpoint.worker_states[0]["assignments"] = (
            checkpoint.worker_states[0]["assignments"][:-1]
        )
        before = len(multiprocessing.active_children())
        with pytest.raises(RuntimeError):
            checkpoint.restore(corpus, backend="process")
        assert len(multiprocessing.active_children()) <= before


class TestResume:
    def test_resume_is_bit_exact(self, corpus, tmp_path):
        # Straight run: 5 epochs.
        with ParallelTrainer(
            corpus, num_workers=2, num_topics=5, seed=11, backend="inline"
        ) as straight:
            straight.train(5)
            expected_phi = straight.phi()
            expected_theta = straight.theta()
            expected_assignments = straight.assignments()

        # Interrupted run: 3 epochs, checkpoint, resume, 2 more.
        with ParallelTrainer(
            corpus, num_workers=2, num_topics=5, seed=11, backend="inline"
        ) as first:
            first.train(3, checkpoint_dir=tmp_path / "ckpt")
        with ParallelTrainer.resume(
            tmp_path / "ckpt", corpus, backend="inline"
        ) as resumed:
            assert resumed.epochs_completed == 3
            resumed.train(2)
            assert np.array_equal(resumed.assignments(), expected_assignments)
            assert np.array_equal(resumed.phi(), expected_phi)
            assert np.array_equal(resumed.theta(), expected_theta)

    def test_resume_records_provenance(self, trained, corpus, tmp_path):
        trained.save_checkpoint(tmp_path / "ckpt")
        with ParallelTrainer.resume(
            tmp_path / "ckpt", corpus, backend="inline"
        ) as resumed:
            metadata = resumed.export_snapshot().metadata
            assert metadata["resumed_from"].endswith("ckpt")
            assert metadata["resumed_at_epoch"] == 3

    def test_wrong_corpus_rejected(self, trained, tmp_path):
        trained.save_checkpoint(tmp_path / "ckpt")
        other = generate_lda_corpus(
            SyntheticCorpusSpec(
                num_documents=30,
                vocabulary_size=60,
                mean_document_length=20,
                num_topics=4,
            ),
            seed=999,
        )
        with pytest.raises(ValueError, match="does not match"):
            ParallelTrainer.resume(tmp_path / "ckpt", other, backend="inline")

    def test_fingerprint_distinguishes_corpora(self, corpus):
        other = generate_lda_corpus(
            SyntheticCorpusSpec(num_documents=31, vocabulary_size=60), seed=1
        )
        assert corpus_fingerprint(corpus) != corpus_fingerprint(other)
        assert corpus_fingerprint(corpus) == corpus_fingerprint(corpus)
