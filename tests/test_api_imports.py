"""Import-time weight guards: the facade must keep ``import repro`` light."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Modules that must NOT load at `import repro` time.
HEAVY = (
    "multiprocessing",
    "repro.serving",
    "repro.streaming",
    "repro.training",
    "repro.core",
    "repro.samplers",
)


def _run_python(code: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )


def test_import_repro_is_lazy():
    code = (
        "import sys, repro\n"
        f"bad = [m for m in {HEAVY!r} if m in sys.modules]\n"
        "assert not bad, f'import repro pulled in {bad}'\n"
    )
    result = _run_python(code)
    assert result.returncode == 0, result.stderr


def test_import_repro_api_avoids_heavy_backends():
    code = (
        "import sys\n"
        "from repro.api import LDA, ModelSpec\n"
        "bad = [m for m in ('multiprocessing', 'repro.serving', 'repro.streaming', "
        "'repro.training') if m in sys.modules]\n"
        "assert not bad, f'import repro.api pulled in {bad}'\n"
    )
    result = _run_python(code)
    assert result.returncode == 0, result.stderr


def test_lazy_exports_resolve_and_cache():
    import repro

    assert repro.LDA is not None
    assert "LDA" in vars(repro)  # cached after first access
    assert repro.ParallelTrainer.__name__ == "ParallelTrainer"
    assert set(dir(repro)) >= set(repro._EXPORTS)


def test_unknown_attribute_raises():
    import repro

    try:
        repro.NoSuchThing
    except AttributeError as exc:
        assert "NoSuchThing" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected AttributeError")


def test_submodule_attribute_access_still_works():
    # The eager __init__ used to bind the subpackages as attributes; the
    # lazy version must keep `repro.serving`-style access working without
    # depending on import order.
    code = (
        "import repro\n"
        "assert repro.serving.TopicServer is not None\n"
        "assert repro.corpus.Corpus is not None\n"
        "assert repro.evaluation.perplexity.held_out_perplexity is not None\n"
    )
    result = _run_python(code)
    assert result.returncode == 0, result.stderr


def test_evaluation_package_is_lazy():
    code = (
        "import sys\n"
        "from repro.evaluation import log_joint_likelihood\n"
        "assert 'repro.serving' not in sys.modules, 'likelihood pulled in serving'\n"
        "from repro.evaluation import held_out_perplexity  # noqa: F401\n"
        "assert 'repro.serving' in sys.modules  # perplexity legitimately needs it\n"
    )
    result = _run_python(code)
    assert result.returncode == 0, result.stderr
