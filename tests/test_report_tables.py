"""Tests for the benchmark-report formatting helpers."""

from repro.report import format_series, format_table


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_title_and_alignment(self):
        text = format_table(
            [{"name": "WarpLDA", "speedup": 5.0}, {"name": "LightLDA", "speedup": 1.0}],
            title="Comparison",
        )
        lines = text.splitlines()
        assert lines[0] == "Comparison"
        assert "name" in lines[1] and "speedup" in lines[1]
        assert len(lines) == 5

    def test_missing_cells_render_as_dash(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}])
        assert "-" in text

    def test_number_formatting(self):
        text = format_table([{"big": 12_345_678, "small": 0.00001, "zero": 0.0}])
        assert "12,345,678" in text
        assert "1e-05" in text
        assert "0" in text


class TestFormatSeries:
    def test_series_alignment(self):
        text = format_series(
            {"WarpLDA": [1.0, 2.0], "LightLDA": [0.5]},
            x_label="iteration",
            x_values=[1, 2],
        )
        lines = text.splitlines()
        assert "iteration" in lines[0]
        assert "WarpLDA" in lines[0]
        # Second series is shorter; missing value rendered as '-'.
        assert lines[-1].strip().endswith("-")
