"""Behavioural tests shared by all baseline samplers.

Every baseline must (a) keep its count matrices consistent with the token
assignments, (b) improve the log joint likelihood on a structured corpus, and
(c) be reproducible from a seed.  The CGS conditional distribution is the
reference the fast samplers are validated against.
"""

import numpy as np
import pytest

from repro.samplers import (
    AliasLDASampler,
    CollapsedGibbsSampler,
    FPlusLDASampler,
    LightLDASampler,
    SparseLDASampler,
)

ALL_SAMPLERS = [
    CollapsedGibbsSampler,
    SparseLDASampler,
    AliasLDASampler,
    FPlusLDASampler,
    LightLDASampler,
]


@pytest.mark.parametrize("sampler_class", ALL_SAMPLERS)
class TestCommonBehaviour:
    def test_counts_stay_consistent(self, small_corpus, sampler_class):
        sampler = sampler_class(small_corpus, num_topics=5, seed=0).fit(2)
        assert sampler.state.check_consistency()

    def test_log_likelihood_improves(self, small_corpus, sampler_class):
        sampler = sampler_class(small_corpus, num_topics=5, seed=0)
        initial = sampler.log_likelihood()
        sampler.fit(4)
        assert sampler.log_likelihood() > initial

    def test_reproducible_from_seed(self, tiny_corpus, sampler_class):
        first = sampler_class(tiny_corpus, num_topics=3, seed=42).fit(3)
        second = sampler_class(tiny_corpus, num_topics=3, seed=42).fit(3)
        np.testing.assert_array_equal(first.assignments, second.assignments)

    def test_different_seeds_differ(self, small_corpus, sampler_class):
        first = sampler_class(small_corpus, num_topics=5, seed=1).fit(1)
        second = sampler_class(small_corpus, num_topics=5, seed=2).fit(1)
        assert not np.array_equal(first.assignments, second.assignments)

    def test_assignments_in_range(self, tiny_corpus, sampler_class):
        sampler = sampler_class(tiny_corpus, num_topics=4, seed=0).fit(2)
        assert sampler.assignments.min() >= 0
        assert sampler.assignments.max() < 4


class TestCgsConditional:
    def test_conditional_is_positive_and_normalisable(self, tiny_corpus):
        sampler = CollapsedGibbsSampler(tiny_corpus, num_topics=3, seed=0)
        weights = sampler.conditional_distribution(0)
        assert weights.shape == (3,)
        assert np.all(weights > 0)
        assert np.isfinite(weights.sum())

    def test_conditional_excludes_current_token(self, tiny_corpus):
        sampler = CollapsedGibbsSampler(tiny_corpus, num_topics=3, seed=0)
        token = 0
        topic = int(sampler.assignments[token])
        doc = int(tiny_corpus.token_documents[token])
        weights = sampler.conditional_distribution(token)
        # Reconstruct the weight using ¬dn counts and compare.
        doc_count = sampler.state.doc_topic[doc, topic] - 1
        word = int(tiny_corpus.token_words[token])
        word_count = sampler.state.word_topic[word, topic] - 1
        topic_count = sampler.state.topic_counts[topic] - 1
        expected = (
            (doc_count + sampler.alpha[topic])
            * (word_count + sampler.beta)
            / (topic_count + sampler.beta_sum)
        )
        assert weights[topic] == pytest.approx(expected)


class TestSamplerSpecifics:
    def test_lightlda_requires_positive_mh_steps(self, tiny_corpus):
        with pytest.raises(ValueError):
            LightLDASampler(tiny_corpus, num_topics=3, num_mh_steps=0)

    def test_aliaslda_requires_positive_mh_steps(self, tiny_corpus):
        with pytest.raises(ValueError):
            AliasLDASampler(tiny_corpus, num_topics=3, num_mh_steps=0)

    def test_lightlda_more_mh_steps_still_consistent(self, tiny_corpus):
        sampler = LightLDASampler(tiny_corpus, num_topics=3, num_mh_steps=4, seed=0).fit(2)
        assert sampler.state.check_consistency()

    def test_fpluslda_visits_word_by_word(self, small_corpus):
        # After one iteration every token must have been re-sampled at least
        # once; verify by checking the sampler touched all words' tokens
        # (count consistency plus a changed assignment distribution).
        sampler = FPlusLDASampler(small_corpus, num_topics=5, seed=3)
        before = sampler.assignments.copy()
        sampler.fit(1)
        assert sampler.state.check_consistency()
        assert np.mean(before != sampler.assignments) > 0.2

    def test_exact_samplers_converge_to_similar_likelihood(self, small_corpus):
        # SparseLDA and F+LDA are exact CGS samplers: after the same number of
        # iterations they should land in the same likelihood ballpark as CGS.
        num_iterations = 8
        results = {}
        for cls in (CollapsedGibbsSampler, SparseLDASampler, FPlusLDASampler):
            sampler = cls(small_corpus, num_topics=5, seed=0).fit(num_iterations)
            results[cls.__name__] = sampler.log_likelihood()
        values = np.array(list(results.values()))
        spread = values.max() - values.min()
        scale = abs(values.mean())
        assert spread / scale < 0.05, results
