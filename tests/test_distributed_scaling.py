"""Tests for the scaling performance model (Fig. 9)."""

import pytest

from repro.distributed import ScalingModel, machine_scaling_curve, thread_scaling_curve


class TestScalingModel:
    def test_single_worker_speedup_is_one(self):
        assert ScalingModel(contention=0.02).speedup(1) == pytest.approx(1.0)

    def test_speedup_is_monotonic_but_sublinear(self):
        model = ScalingModel(contention=0.02)
        previous = 0.0
        for workers in (1, 2, 4, 8, 16, 32):
            speedup = model.speedup(workers)
            assert speedup > previous
            assert speedup <= workers
            previous = speedup

    def test_zero_contention_is_linear(self):
        model = ScalingModel(contention=0.0)
        assert model.speedup(16) == pytest.approx(16.0)

    def test_numa_penalty_applies_beyond_boundary(self):
        penalised = ScalingModel(contention=0.0, numa_penalty=0.9, numa_boundary=4)
        assert penalised.speedup(4) == pytest.approx(4.0)
        assert penalised.speedup(8) == pytest.approx(7.2)

    def test_throughput_and_efficiency(self):
        model = ScalingModel(contention=0.0)
        assert model.throughput(4, 100.0) == pytest.approx(400.0)
        assert model.efficiency(4) == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ScalingModel(contention=-0.1)
        with pytest.raises(ValueError):
            ScalingModel().speedup(0)
        with pytest.raises(ValueError):
            ScalingModel().throughput(2, 0.0)


class TestCalibration:
    def test_thread_curve_matches_paper_anchor_points(self):
        """Fig. 9a: 24 cores give roughly 17x, 12 cores roughly 9-10x."""
        rows = {int(row["workers"]): row for row in thread_scaling_curve(6e6)}
        assert rows[24]["speedup"] == pytest.approx(17.0, rel=0.15)
        assert 8.0 <= rows[12]["speedup"] <= 11.0
        # Paper: 1 core ~ 6M token/s, 24 cores ~ 104M token/s.
        assert rows[24]["throughput"] == pytest.approx(104e6, rel=0.2)

    def test_machine_curve_matches_paper_anchor_point(self):
        """Fig. 9b: 16 machines give roughly 13.5x."""
        rows = {int(row["workers"]): row for row in machine_scaling_curve(1.0)}
        assert rows[16]["speedup"] == pytest.approx(13.5, rel=0.1)

    def test_extrapolation_to_256_machines_reaches_paper_scale(self):
        """Fig. 9d: 256 machines sustain on the order of 10G tokens/s given the
        per-machine throughput the paper reports (~50-100M tokens/s)."""
        rows = machine_scaling_curve(
            1.1e8, machine_counts=(64, 128, 256)
        )
        throughput_256 = rows[-1]["throughput"]
        assert 5e9 <= throughput_256 <= 2e10
