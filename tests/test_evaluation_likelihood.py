"""Tests for the log joint likelihood."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import gammaln

from repro.evaluation import log_joint_likelihood, log_joint_likelihood_from_assignments


def reference_likelihood(doc_topic, word_topic, alpha, beta):
    """Direct, dense implementation of the Sec. 6.1 formula."""
    doc_topic = np.asarray(doc_topic, dtype=np.float64)
    word_topic = np.asarray(word_topic, dtype=np.float64)
    num_topics = doc_topic.shape[1]
    vocabulary_size = word_topic.shape[0]
    alpha = np.full(num_topics, alpha, dtype=np.float64)
    alpha_sum = alpha.sum()
    beta_sum = beta * vocabulary_size
    value = 0.0
    for row in doc_topic:
        value += gammaln(alpha_sum) - gammaln(alpha_sum + row.sum())
        value += np.sum(gammaln(alpha + row) - gammaln(alpha))
    topic_counts = word_topic.sum(axis=0)
    for k in range(num_topics):
        value += gammaln(beta_sum) - gammaln(beta_sum + topic_counts[k])
        value += np.sum(gammaln(beta + word_topic[:, k]) - gammaln(beta))
    return float(value)


class TestLogJointLikelihood:
    def test_matches_dense_reference(self, rng):
        doc_topic = rng.integers(0, 5, size=(6, 4))
        # Build a word_topic with the same per-topic totals.
        word_topic = np.zeros((10, 4), dtype=np.int64)
        for topic in range(4):
            remaining = int(doc_topic[:, topic].sum())
            while remaining > 0:
                word = int(rng.integers(10))
                word_topic[word, topic] += 1
                remaining -= 1
        expected = reference_likelihood(doc_topic, word_topic, alpha=0.5, beta=0.01)
        actual = log_joint_likelihood(doc_topic, word_topic, alpha=0.5, beta=0.01)
        assert actual == pytest.approx(expected, rel=1e-10)

    def test_vector_alpha_supported(self):
        doc_topic = np.array([[1, 2], [0, 3]])
        word_topic = np.array([[1, 2], [0, 1], [0, 2]])
        scalar = log_joint_likelihood(doc_topic, word_topic, alpha=0.3, beta=0.1)
        vector = log_joint_likelihood(
            doc_topic, word_topic, alpha=np.array([0.3, 0.3]), beta=0.1
        )
        assert scalar == pytest.approx(vector)

    def test_token_total_mismatch_raises(self):
        with pytest.raises(ValueError, match="same total"):
            log_joint_likelihood(np.array([[1]]), np.array([[2]]), 0.1, 0.1)

    def test_topic_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="number of topics"):
            log_joint_likelihood(np.ones((2, 3)), np.ones((2, 2)), 0.1, 0.1)

    def test_invalid_beta_raises(self):
        with pytest.raises(ValueError):
            log_joint_likelihood(np.array([[1]]), np.array([[1]]), 0.1, 0.0)

    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            log_joint_likelihood(np.array([[1]]), np.array([[1]]), -0.1, 0.1)


class TestFromAssignments:
    def test_matches_matrix_version(self, small_corpus, rng):
        num_topics = 5
        assignments = rng.integers(num_topics, size=small_corpus.num_tokens)
        doc_topic = np.zeros((small_corpus.num_documents, num_topics), dtype=np.int64)
        word_topic = np.zeros((small_corpus.vocabulary_size, num_topics), dtype=np.int64)
        np.add.at(doc_topic, (small_corpus.token_documents, assignments), 1)
        np.add.at(word_topic, (small_corpus.token_words, assignments), 1)

        from_matrices = log_joint_likelihood(doc_topic, word_topic, 0.5, 0.01)
        from_assignments = log_joint_likelihood_from_assignments(
            small_corpus.token_documents,
            small_corpus.token_words,
            assignments,
            small_corpus.num_documents,
            small_corpus.vocabulary_size,
            num_topics,
            0.5,
            0.01,
        )
        assert from_assignments == pytest.approx(from_matrices, rel=1e-12)

    def test_out_of_range_assignment_raises(self, tiny_corpus):
        assignments = np.zeros(tiny_corpus.num_tokens, dtype=np.int64)
        assignments[0] = 9
        with pytest.raises(ValueError):
            log_joint_likelihood_from_assignments(
                tiny_corpus.token_documents,
                tiny_corpus.token_words,
                assignments,
                tiny_corpus.num_documents,
                tiny_corpus.vocabulary_size,
                3,
                0.5,
                0.01,
            )

    def test_misaligned_arrays_raise(self, tiny_corpus):
        with pytest.raises(ValueError):
            log_joint_likelihood_from_assignments(
                tiny_corpus.token_documents,
                tiny_corpus.token_words[:-1],
                np.zeros(tiny_corpus.num_tokens, dtype=np.int64),
                tiny_corpus.num_documents,
                tiny_corpus.vocabulary_size,
                3,
                0.5,
                0.01,
            )


class TestProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31), num_topics=st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_likelihood_is_finite_and_negative(self, seed, num_topics):
        rng = np.random.default_rng(seed)
        num_docs, vocab = 5, 12
        token_docs = np.repeat(np.arange(num_docs), 8)
        token_words = rng.integers(vocab, size=token_docs.size)
        assignments = rng.integers(num_topics, size=token_docs.size)
        value = log_joint_likelihood_from_assignments(
            token_docs, token_words, assignments, num_docs, vocab, num_topics, 0.5, 0.01
        )
        assert np.isfinite(value)
        assert value < 0
