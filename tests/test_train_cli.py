"""Tests for the ``python -m repro.train`` command line."""

import numpy as np
import pytest

from repro.serving import ModelSnapshot
from repro.train import main
from repro.training.cli import build_corpus, build_parser


def run_cli(*extra, tmp_path=None):
    argv = [
        "--synthetic",
        "--docs", "24",
        "--vocab-size", "50",
        "--doc-length", "15",
        "--topics", "4",
        "--workers", "2",
        "--backend", "inline",
        "--seed", "0",
    ]
    argv += list(extra)
    return main(argv)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["--synthetic"])
        assert args.sampler == "warplda"
        assert args.workers == 2
        assert args.backend == "process"

    def test_corpus_source_is_exclusive(self):
        args = build_parser().parse_args(["--synthetic", "--preset", "nytimes_like"])
        with pytest.raises(SystemExit):
            build_corpus(args)
        args = build_parser().parse_args([])
        with pytest.raises(SystemExit):
            build_corpus(args)

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            main(["--synthetic", "--resume", "--backend", "inline"])


class TestEndToEnd:
    def test_train_writes_checkpoint_and_snapshot(self, tmp_path, capsys):
        code = run_cli(
            "--epochs", "2",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--checkpoint-every", "1",
            "--snapshot-out", str(tmp_path / "model.npz"),
        )
        assert code == 0
        assert (tmp_path / "ckpt" / "checkpoint.json").exists()
        snapshot = ModelSnapshot.load(tmp_path / "model.npz")
        assert snapshot.num_topics == 4
        out = capsys.readouterr().out
        assert "epoch    2" in out
        assert "checkpoint written" in out

    def test_resume_continues_from_checkpoint(self, tmp_path, capsys):
        run_cli("--epochs", "2", "--checkpoint-dir", str(tmp_path / "ckpt"))
        code = run_cli(
            "--epochs", "1",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--resume",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed warplda" in out
        assert "epoch    3" in out

    def test_resume_warns_about_ignored_model_flags(self, tmp_path, capsys):
        run_cli("--epochs", "1", "--checkpoint-dir", str(tmp_path / "ckpt"))
        run_cli(
            "--epochs", "1",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--resume",
            "--topics", "9",
            "--sampler", "cgs",
        )
        out = capsys.readouterr().out
        assert "warning: --topics 9 ignored on resume" in out
        assert "warning: --sampler cgs ignored on resume" in out
        assert "warning: --seed ignored on resume" in out

    def test_resumed_run_matches_straight_run(self, tmp_path):
        run_cli(
            "--epochs", "4",
            "--snapshot-out", str(tmp_path / "straight.npz"),
        )
        run_cli("--epochs", "2", "--checkpoint-dir", str(tmp_path / "ckpt"))
        run_cli(
            "--epochs", "2",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--resume",
            "--snapshot-out", str(tmp_path / "resumed.npz"),
        )
        straight = ModelSnapshot.load(tmp_path / "straight.npz")
        resumed = ModelSnapshot.load(tmp_path / "resumed.npz")
        assert np.array_equal(straight.phi, resumed.phi)

    def test_uci_corpus_source(self, tmp_path):
        from repro.corpus import SyntheticCorpusSpec, generate_lda_corpus, write_uci_bow

        corpus = generate_lda_corpus(
            SyntheticCorpusSpec(
                num_documents=15, vocabulary_size=30, mean_document_length=10
            ),
            seed=0,
        )
        write_uci_bow(corpus, tmp_path / "docword.txt")
        code = main([
            "--corpus", str(tmp_path / "docword.txt"),
            "--topics", "3",
            "--workers", "2",
            "--backend", "inline",
            "--epochs", "1",
            "--seed", "0",
        ])
        assert code == 0
