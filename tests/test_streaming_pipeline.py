"""StreamingPipeline + TopicServer hot-swap: the full ingest→serve loop."""

import numpy as np
import pytest

from repro.corpus import SyntheticCorpusSpec, Vocabulary, generate_lda_corpus
from repro.serving import InferenceEngine, ModelSnapshot, TopicServer
from repro.streaming import (
    DocumentStream,
    ModelRegistry,
    OnlineTrainer,
    StreamingPipeline,
)


def make_snapshot(tag: int, vocab=None, num_topics: int = 4) -> ModelSnapshot:
    vocab = vocab if vocab is not None else Vocabulary(["a", "b", "c", "d"])
    rng = np.random.default_rng(tag)
    phi = rng.random((num_topics, vocab.size)) + 0.1
    phi /= phi.sum(axis=1, keepdims=True)
    return ModelSnapshot(phi=phi, alpha=0.5, beta=0.01, vocabulary=vocab)


def tokens_of(corpus, doc_index):
    return [corpus.vocabulary.word(w) for w in corpus.document_words(doc_index)]


@pytest.fixture(scope="module")
def small_corpus():
    spec = SyntheticCorpusSpec(
        num_documents=60, vocabulary_size=120, mean_document_length=25, num_topics=4
    )
    return generate_lda_corpus(spec, seed=0)


class TestHotSwap:
    def test_server_follows_publishes_and_serves_both_versions(self):
        registry = ModelRegistry()
        registry.publish(make_snapshot(1))
        server = TopicServer.from_registry(registry)
        assert server.served_version == 1

        theta_v1 = server.infer_batch([np.array([0, 1])])
        registry.publish(make_snapshot(2))
        theta_v2 = server.infer_batch([np.array([0, 1])])
        stats = server.stats()
        assert server.served_version == 2
        assert stats.hot_swaps == 1  # adopting v1 at construction is not a swap
        assert stats.served_version == 2
        # Different Φ ⇒ different folded-in θ: both versions really served.
        assert not np.allclose(theta_v1, theta_v2)

    def test_swap_clears_stale_cache(self):
        registry = ModelRegistry()
        registry.publish(make_snapshot(1))
        server = TopicServer.from_registry(registry)
        doc = np.array([0, 1, 2])
        server.infer_batch([doc])
        assert len(server.cache) == 1
        registry.publish(make_snapshot(2))
        server.refresh()
        assert len(server.cache) == 0
        theta = server.infer_batch([doc])
        assert server.stats().cache_hits == 0
        np.testing.assert_allclose(theta[0].sum(), 1.0)

    def test_rollback_to_smaller_vocabulary_keeps_serving(self):
        """Ids unknown to the rolled-back snapshot are dropped as OOV."""
        small = Vocabulary(["a", "b"])
        big = Vocabulary(["a", "b", "c", "d", "e", "f"])
        registry = ModelRegistry()
        registry.publish(make_snapshot(1, vocab=small))
        registry.publish(make_snapshot(2, vocab=big))
        server = TopicServer.from_registry(registry)
        assert server.served_version == 2
        # Request encoded against v2's vocabulary (ids 4, 5)...
        registry.rollback()  # ...then v1 (V=2) swaps in before dispatch.
        theta = server.infer_batch([np.array([0, 4, 5]), np.array([4, 5])])
        assert server.served_version == 1
        np.testing.assert_allclose(theta.sum(axis=1), 1.0)
        # The all-unknown document degrades to the prior mean, not an error.
        np.testing.assert_allclose(theta[1], np.full(4, 0.25))

    def test_mid_call_swap_to_different_topic_count_finishes_on_old_engine(self):
        """A K-changing publish mid-call must not break the in-flight θ."""
        registry = ModelRegistry()
        registry.publish(make_snapshot(1, num_topics=4))
        server = TopicServer.from_registry(registry, max_batch_size=1)

        original_refresh = server.refresh
        published = {"done": False}

        def refresh_and_publish_once():
            swapped = original_refresh()
            if not published["done"]:
                published["done"] = True
                registry.publish(make_snapshot(2, num_topics=8))
            return swapped

        server.refresh = refresh_and_publish_once
        # Two distinct documents -> two micro-batches (max_batch_size=1);
        # the K=8 publish lands between them.
        theta = server.infer_batch([np.array([0]), np.array([1])])
        assert theta.shape == (2, 4)  # the call finishes at its starting K
        np.testing.assert_allclose(theta.sum(axis=1), 1.0)
        server.refresh = original_refresh
        # The next call serves the new model at its own K.
        assert server.infer_batch([np.array([0])]).shape == (1, 8)
        assert server.served_version == 2

    def test_rollback_swaps_backwards(self):
        registry = ModelRegistry()
        registry.publish(make_snapshot(1))
        registry.publish(make_snapshot(2))
        server = TopicServer.from_registry(registry)
        assert server.served_version == 2
        registry.rollback()
        server.infer_batch([np.array([0])])
        assert server.served_version == 1

    def test_attach_before_first_publish_keeps_constructor_engine(self):
        registry = ModelRegistry()
        snapshot = make_snapshot(7)
        server = TopicServer(InferenceEngine(snapshot))
        server.attach_registry(registry)
        assert server.served_version is None
        server.infer_batch([np.array([0])])  # serves the constructor engine
        registry.publish(make_snapshot(8))
        server.infer_batch([np.array([0])])
        assert server.served_version == 1

    def test_detach_stops_following(self):
        registry = ModelRegistry()
        registry.publish(make_snapshot(1))
        server = TopicServer.from_registry(registry)
        server.detach_registry()
        registry.publish(make_snapshot(2))
        server.infer_batch([np.array([0])])
        assert server.served_version == 1

    def test_from_registry_requires_a_publish(self):
        with pytest.raises(ValueError, match="no published version"):
            TopicServer.from_registry(ModelRegistry())

    def test_queries_answered_without_error_during_swaps(self, small_corpus):
        """Acceptance: the server keeps answering across a hot swap."""
        trainer = OnlineTrainer(num_topics=4, sweeps_per_batch=2, seed=0)
        registry = ModelRegistry()
        pipeline = StreamingPipeline(trainer, registry, publish_every=1)
        queries = [tokens_of(small_corpus, d) for d in range(10)]

        stream = DocumentStream(trainer.corpus.vocabulary, batch_docs=15)
        server = None
        for batch in stream.batches(
            tokens_of(small_corpus, d) for d in range(small_corpus.num_documents)
        ):
            pipeline.ingest(batch)
            if server is None:
                server = TopicServer.from_registry(registry)
                pipeline.server = server
            theta = server.infer_batch(queries)
            assert theta.shape == (len(queries), 4)
            np.testing.assert_allclose(theta.sum(axis=1), 1.0, atol=1e-9)
        # One swap per publish after the version the server was born on.
        assert server.stats().hot_swaps == trainer.batches_ingested - 1
        assert server.served_version == registry.current_version


class TestPipeline:
    def test_publish_cadence(self, small_corpus):
        trainer = OnlineTrainer(num_topics=3, sweeps_per_batch=1, seed=0)
        pipeline = StreamingPipeline(trainer, publish_every=2)
        stream = DocumentStream(trainer.corpus.vocabulary, batch_docs=10)
        reports = pipeline.run(
            stream.batches(
                tokens_of(small_corpus, d) for d in range(small_corpus.num_documents)
            )
        )
        published = [r.published for r in reports]
        assert [p is not None for p in published] == [False, True] * 3
        assert pipeline.registry.current_version == 3
        assert all(
            p.metadata["batch_index"] == i
            for i, p in enumerate(published)
            if p is not None
        )

    def test_servable_latency_recorded_with_server(self, small_corpus):
        trainer = OnlineTrainer(num_topics=3, sweeps_per_batch=1, seed=0)
        registry = ModelRegistry()
        registry.publish(make_snapshot(0, vocab=Vocabulary(["seed"])))
        server = TopicServer.from_registry(registry)
        pipeline = StreamingPipeline(trainer, registry, server=server)
        vocab = trainer.corpus.vocabulary
        report = pipeline.ingest(
            [vocab.encode(tokens_of(small_corpus, d), on_oov="add") for d in range(5)]
        )
        assert report.published is not None
        assert report.ingest_to_servable_seconds is not None
        assert 0 < report.ingest_to_servable_seconds <= report.ingest_seconds
        assert server.served_version == report.published.version

    def test_invalid_publish_every(self):
        with pytest.raises(ValueError, match="publish_every"):
            StreamingPipeline(OnlineTrainer(num_topics=2), publish_every=0)

    def test_tokenless_leading_batches_defer_the_publish(self):
        """All-empty/all-OOV batches must not crash a due publish."""
        trainer = OnlineTrainer(num_topics=3, sweeps_per_batch=1, seed=0)
        pipeline = StreamingPipeline(trainer, publish_every=1)
        empty = np.empty(0, dtype=np.int64)
        report = pipeline.ingest([empty, empty])
        assert report.published is None
        assert pipeline.registry.current_version is None
        # The first batch that carries tokens publishes as usual.
        vocab = trainer.corpus.vocabulary
        report = pipeline.ingest([vocab.encode(["a", "b"], on_oov="add")])
        assert report.published.version == 1


class TestServerStatsSatellites:
    """Satellite: eviction count, cache size, zero-request percentiles."""

    def test_stats_expose_cache_size_and_evictions(self):
        snapshot = make_snapshot(1)
        server = TopicServer(InferenceEngine(snapshot), cache_capacity=2)
        for word in range(4):
            server.infer_batch([np.array([word % snapshot.vocabulary_size])])
        stats = server.stats()
        assert stats.cache_size == 2
        assert stats.cache_evictions == 2
        assert "2 evictions" in stats.summary()

    def test_zero_request_percentiles_are_safe(self):
        server = TopicServer(InferenceEngine(make_snapshot(1)))
        stats = server.stats()
        assert stats.requests == 0
        assert stats.latency_percentiles() == {
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
        }
        # The full summary must render without dividing by zero, and a
        # plain (registry-less) server keeps its original report shape.
        assert "requests" in stats.summary()
        assert "model version" not in stats.summary()

    def test_lru_eviction_counter_and_order(self):
        from repro.serving.server import LRUCache, bow_key

        cache = LRUCache(2)
        cache.put(("a",), np.array([1.0]))
        cache.put(("b",), np.array([2.0]))
        cache.get(("a",))  # "a" becomes most recent
        cache.put(("c",), np.array([3.0]))  # evicts "b"
        assert ("b",) not in cache
        assert ("a",) in cache and ("c",) in cache
        assert cache.evictions == 1
        cache.clear()  # clearing is not an eviction
        assert cache.evictions == 1
        assert len(cache) == 0

    def test_bow_key_of_empty_document(self):
        from repro.serving.server import bow_key

        assert bow_key(np.array([], dtype=np.int64)) == ()
        assert bow_key(np.array([3, 1, 3])) == ((1, 1), (3, 2))
