"""``python -m repro`` subcommands: train, stream, serve, eval."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import LDA, ModelSpec
from repro.api.cli import build_parser, build_spec, main


def _run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


SYNTH = ["--synthetic", "--docs", "40", "--vocab-size", "80", "--doc-length", "20"]


class TestSpecResolution:
    def test_flags_build_a_spec(self):
        parser = build_parser()
        args = parser.parse_args(
            ["train", *SYNTH, "--topics", "7", "--algorithm", "cgs", "--seed", "3"]
        )
        spec = build_spec(args)
        assert spec == ModelSpec(num_topics=7, algorithm="cgs", seed=3)

    def test_spec_file_plus_overrides(self, tmp_path):
        path = ModelSpec(num_topics=9, algorithm="lightlda", seed=1).save(
            tmp_path / "spec.json"
        )
        parser = build_parser()
        args = parser.parse_args(
            ["train", *SYNTH, "--spec", str(path), "--topics", "4"]
        )
        spec = build_spec(args)
        assert spec.num_topics == 4  # flag wins
        assert spec.algorithm == "lightlda"  # file survives
        assert spec.seed == 1

    def test_backend_switch_drops_stale_options(self, tmp_path):
        path = ModelSpec(
            backend="parallel", backend_options={"num_workers": 4, "backend": "inline"}
        ).save(tmp_path / "spec.json")
        parser = build_parser()
        args = parser.parse_args(
            ["train", *SYNTH, "--spec", str(path), "--backend", "serial"]
        )
        assert build_spec(args).backend_options == {}

    def test_wrong_backend_flag_rejected(self):
        parser = build_parser()
        args = parser.parse_args(["train", *SYNTH, "--window-docs", "32"])
        with pytest.raises(SystemExit, match="online"):
            build_spec(args)

    def test_spec_out_writes_resolved_spec(self, tmp_path, capsys):
        out = tmp_path / "resolved.json"
        code, _ = _run(
            capsys,
            "train", *SYNTH, "--topics", "4", "--iterations", "1",
            "--seed", "0", "--spec-out", str(out),
        )
        assert code == 0
        assert ModelSpec.load(out).num_topics == 4


class TestTrain:
    def test_serial_train_writes_snapshot(self, tmp_path, capsys):
        snapshot_path = tmp_path / "model.npz"
        code, out = _run(
            capsys,
            "train", *SYNTH, "--topics", "5", "--iterations", "2",
            "--seed", "0", "--snapshot-out", str(snapshot_path),
        )
        assert code == 0
        assert "training warplda (K=5, backend=serial)" in out
        assert "log_likelihood" in out
        loaded = LDA.load(snapshot_path)
        assert loaded.spec.num_topics == 5
        assert loaded.spec.seed == 0

    def test_parallel_train_inline(self, capsys):
        code, out = _run(
            capsys,
            "train", *SYNTH, "--topics", "4", "--iterations", "2", "--seed", "0",
            "--backend", "parallel", "--workers", "2",
            "--parallel-backend", "inline",
        )
        assert code == 0
        assert "backend=parallel" in out
        assert "2 epochs" in out

    def test_online_backend_redirects_to_stream(self, capsys):
        with pytest.raises(SystemExit, match="stream"):
            main(["train", *SYNTH, "--backend", "online"])


class TestStreamServeEval:
    def test_stream_serve_eval_round_trip(self, tmp_path, capsys):
        snapshot_path = tmp_path / "model.npz"
        registry_dir = tmp_path / "registry"
        code, out = _run(
            capsys,
            "stream", *SYNTH, "--topics", "4", "--seed", "0",
            "--batch-docs", "10", "--window-docs", "20", "--publish-every", "2",
            "--registry-dir", str(registry_dir),
            "--snapshot-out", str(snapshot_path),
        )
        assert code == 0
        assert "published v1" in out
        assert (registry_dir / "CURRENT").exists()

        queries = tmp_path / "queries.txt"
        queries.write_text("w1 w2 w3\nw4 w5\n\n", encoding="utf-8")
        code, out = _run(
            capsys, "serve", "--model", str(snapshot_path), "--input", str(queries)
        )
        assert code == 0
        assert "top topic" in out
        assert "requests" in out

        code, out = _run(
            capsys, "serve", "--registry-dir", str(registry_dir)
        )
        assert code == 0
        assert "topic   0" in out

        code, out = _run(
            capsys,
            "eval", "--model", str(snapshot_path), *SYNTH, "--corpus-seed", "1",
        )
        assert code == 0
        assert "held-out perplexity" in out

    def test_serve_needs_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["serve"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(
                ["serve", "--model", str(tmp_path / "x.npz"),
                 "--registry-dir", str(tmp_path)]
            )


class TestEquivalenceWithLegacyCLI:
    def test_new_and_legacy_cli_train_identical_models(self, tmp_path, capsys):
        """`python -m repro train` == `python -m repro.train` seed-for-seed."""
        from repro.train import main as legacy_main

        new_path = tmp_path / "new.npz"
        legacy_path = tmp_path / "legacy.npz"
        main(
            ["train", *SYNTH, "--topics", "4", "--seed", "0",
             "--backend", "parallel", "--workers", "2",
             "--parallel-backend", "inline", "--iterations", "2",
             "--snapshot-out", str(new_path)]
        )
        legacy_main(
            [*SYNTH, "--topics", "4", "--seed", "0", "--workers", "2",
             "--backend", "inline", "--epochs", "2",
             "--snapshot-out", str(legacy_path)]
        )
        capsys.readouterr()
        assert new_path.read_bytes() == legacy_path.read_bytes()
