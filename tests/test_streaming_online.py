"""OnlineTrainer: state invariants, decay, vocabulary growth, batch parity."""

import numpy as np
import pytest

from repro.corpus import SyntheticCorpusSpec, generate_lda_corpus
from repro.samplers.cgs import CollapsedGibbsSampler
from repro.serving import InferenceEngine
from repro.streaming import (
    DocumentStream,
    OnlineTrainer,
    OnlineTrainerConfig,
    StreamingCorpus,
)


def tokens_of(corpus, doc_index):
    return [corpus.vocabulary.word(w) for w in corpus.document_words(doc_index)]


@pytest.fixture(scope="module")
def synthetic_split():
    spec = SyntheticCorpusSpec(
        num_documents=150,
        vocabulary_size=300,
        mean_document_length=40,
        num_topics=5,
        topic_word_concentration=0.05,
    )
    full = generate_lda_corpus(spec, seed=0)
    return full.split(0.8, seed=1)


def replay(trainer, corpus, batch_docs=25):
    stream = DocumentStream(trainer.corpus.vocabulary, batch_docs=batch_docs)
    updates = []
    for batch in stream.batches(
        tokens_of(corpus, d) for d in range(corpus.num_documents)
    ):
        updates.append(trainer.ingest(batch))
    return updates


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="decay"):
            OnlineTrainerConfig(decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            OnlineTrainerConfig(decay=1.5)
        with pytest.raises(ValueError, match="window_docs"):
            OnlineTrainerConfig(window_docs=0)
        with pytest.raises(ValueError, match="sweeps_per_batch"):
            OnlineTrainerConfig(sweeps_per_batch=0)
        with pytest.raises(ValueError, match="unknown sampler"):
            OnlineTrainerConfig(sampler="nope")

    def test_config_and_kwargs_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            OnlineTrainer(config=OnlineTrainerConfig(), num_topics=3)

    def test_requires_empty_streaming_corpus(self):
        corpus = StreamingCorpus()
        corpus.vocabulary.add("a")
        corpus.append([np.array([0])])
        with pytest.raises(ValueError, match="empty StreamingCorpus"):
            OnlineTrainer(num_topics=2, corpus=corpus)


class TestStateInvariants:
    def test_counts_cover_every_token_without_decay(self, synthetic_split):
        train, _ = synthetic_split
        trainer = OnlineTrainer(
            num_topics=5, window_docs=30, sweeps_per_batch=2, seed=0
        )
        replay(trainer, train, batch_docs=20)
        # retired + window counts must sum to exactly one count per token.
        counts = trainer.word_topic_counts()
        assert counts.sum() == pytest.approx(trainer.corpus.num_tokens)
        by_word = counts.sum(axis=1)
        expected = np.bincount(
            trainer.corpus.token_words, minlength=trainer.corpus.vocabulary_size
        )
        np.testing.assert_allclose(by_word, expected)

    def test_assignments_stay_in_range(self, synthetic_split):
        train, _ = synthetic_split
        trainer = OnlineTrainer(
            num_topics=4, window_docs=25, sweeps_per_batch=1, seed=0
        )
        replay(trainer, train, batch_docs=30)
        assignments = trainer.assignments
        assert assignments.size == trainer.corpus.num_tokens
        assert assignments.min() >= 0 and assignments.max() < 4

    def test_window_and_retirement_bookkeeping(self, synthetic_split):
        train, _ = synthetic_split
        trainer = OnlineTrainer(
            num_topics=3, window_docs=40, sweeps_per_batch=1, seed=0
        )
        updates = replay(trainer, train, batch_docs=25)
        assert sum(u.documents_added for u in updates) == train.num_documents
        # A sweep covers the previous live window plus the arriving batch.
        assert all(u.window_documents <= 40 + 25 for u in updates)
        retired_total = sum(u.retired_documents for u in updates)
        assert retired_total == trainer._retired_docs
        # After the final retire the live window is back within bounds.
        assert train.num_documents - trainer._retired_docs <= 40

    def test_batch_larger_than_window_is_swept_before_retiring(self):
        """A batch wider than the window must not retire unsampled tokens."""
        trainer = OnlineTrainer(
            num_topics=3, window_docs=2, sweeps_per_batch=1, seed=0
        )
        vocab = trainer.corpus.vocabulary
        docs = [vocab.encode([f"w{d}", "shared"], on_oov="add") for d in range(10)]
        update = trainer.ingest(docs)
        # Every arriving document was swept (not just the trailing window)...
        assert update.window_documents == 10
        # ...and only then were the out-of-window ones retired.
        assert update.retired_documents == 8
        counts = trainer.word_topic_counts()
        assert counts.sum() == pytest.approx(trainer.corpus.num_tokens)

    def test_bucket_cache_dropped_once_window_detaches(self):
        from repro.kernels.buckets import corpus_buckets

        trainer = OnlineTrainer(
            num_topics=2, sampler="warplda", window_docs=3,
            sweeps_per_batch=1, seed=0,
        )
        vocab = trainer.corpus.vocabulary
        doc = lambda i: vocab.encode([f"w{i}", "x", "x"], on_oov="add")
        trainer.ingest([doc(0), doc(1)])
        # Window covers the stream: the WarpLDA sweep built the caches here.
        assert "_slab_bucket_cache" in trainer.corpus.__dict__
        # 4 docs > window 3: this sweep still covers the whole stream (the
        # overflow retires *after* it), so the cache survives one more batch.
        trainer.ingest([doc(2), doc(3)])
        assert "_slab_bucket_cache" in trainer.corpus.__dict__
        # Now the sweep starts past document 0: detached for good, dropped.
        trainer.ingest([doc(4)])
        assert "_slab_bucket_cache" not in trainer.corpus.__dict__
        trainer.ingest([doc(5)])
        assert "_slab_bucket_cache" not in trainer.corpus.__dict__

    def test_decay_shrinks_retired_mass(self):
        trainer = OnlineTrainer(
            num_topics=2, window_docs=1, sweeps_per_batch=1, decay=0.5, seed=0
        )
        vocab = trainer.corpus.vocabulary
        doc = lambda: vocab.encode(["a", "b", "a"], on_oov="add")
        trainer.ingest([doc()])
        trainer.ingest([doc()])  # retires doc 0 at full weight
        mass_after_first_retire = trainer._retired.sum()
        assert mass_after_first_retire == pytest.approx(3.0)
        trainer.ingest([doc()])  # decays retired by 0.5, retires doc 1
        assert trainer._retired.sum() == pytest.approx(3.0 * 0.5 + 3.0)

    def test_vocabulary_growth_grows_model(self):
        trainer = OnlineTrainer(num_topics=3, sweeps_per_batch=1, seed=0)
        vocab = trainer.corpus.vocabulary
        trainer.ingest([vocab.encode(["a", "b"], on_oov="add")])
        assert trainer.phi().shape == (3, 2)
        trainer.ingest([vocab.encode(["c", "d", "e"], on_oov="add")])
        assert trainer.phi().shape == (3, 5)
        snapshot = trainer.export_snapshot()
        assert snapshot.vocabulary_size == 5
        assert snapshot.metadata["sampler"] == "Online[cgs]"

    def test_export_consistent_while_vocabulary_grows_ahead(self):
        """Pushed-but-not-ingested words must not desynchronise the export."""
        trainer = OnlineTrainer(num_topics=3, sweeps_per_batch=1, seed=0)
        vocab = trainer.corpus.vocabulary
        trainer.ingest([vocab.encode(["a", "b"], on_oov="add")])
        # The ingestion layer grows the vocabulary before the batch closes.
        pending = vocab.encode(["c", "d", "e"], on_oov="add")
        snapshot = trainer.export_snapshot()
        assert snapshot.vocabulary_size == 5
        assert snapshot.phi.shape == (3, 5)
        # Never-ingested words carry only the beta prior (uniform columns).
        np.testing.assert_allclose(
            snapshot.phi[:, 2:].sum(axis=0), snapshot.phi[:, 2:].sum(axis=0)[0]
        )
        trainer.ingest([pending])  # and the deferred batch ingests cleanly
        assert trainer.export_snapshot().vocabulary_size == 5

    def test_export_before_ingest_fails(self):
        trainer = OnlineTrainer(num_topics=2)
        with pytest.raises(ValueError, match="before ingesting"):
            trainer.export_snapshot()

    def test_deterministic_given_seed(self, synthetic_split):
        train, _ = synthetic_split
        phis = []
        for _ in range(2):
            trainer = OnlineTrainer(
                num_topics=4, window_docs=50, sweeps_per_batch=2, seed=123
            )
            replay(trainer, train, batch_docs=40)
            phis.append(trainer.phi())
        np.testing.assert_array_equal(phis[0], phis[1])


@pytest.mark.parametrize("sampler", ["cgs", "warplda"])
def test_all_registered_window_samplers_run(synthetic_split, sampler):
    train, _ = synthetic_split
    trainer = OnlineTrainer(
        num_topics=4,
        sampler=sampler,
        window_docs=40,
        sweeps_per_batch=2,
        seed=0,
    )
    replay(trainer, train.slice(0, 60), batch_docs=20)
    counts = trainer.word_topic_counts()
    assert counts.sum() == pytest.approx(trainer.corpus.num_tokens)
    snapshot = trainer.export_snapshot()
    assert snapshot.num_topics == 4


class TestEndToEndParity:
    def test_online_perplexity_within_5pct_of_batch_retrain(self, synthetic_split):
        """Acceptance: online model ≈ full batch retrain on the same corpus.

        With ``decay=1`` and a window covering the whole stream, the online
        trainer is an incremental version of the batch sampler; its held-out
        perplexity must land within 5% of a converged batch retrain on the
        same cumulative corpus.
        """
        train, held = synthetic_split
        trainer = OnlineTrainer(
            num_topics=5, window_docs=10_000, sweeps_per_batch=8, seed=0
        )
        replay(trainer, train, batch_docs=25)

        held_docs = [tokens_of(held, d) for d in range(held.num_documents)]
        online_engine = InferenceEngine(trainer.export_snapshot(), seed=0)
        online_ppl = online_engine.held_out_perplexity(held_docs)

        batch_sampler = CollapsedGibbsSampler(trainer.corpus, 5, seed=0).fit(100)
        batch_engine = InferenceEngine(batch_sampler.export_snapshot(), seed=0)
        batch_ppl = batch_engine.held_out_perplexity(held_docs)

        assert abs(online_ppl - batch_ppl) / batch_ppl < 0.05
