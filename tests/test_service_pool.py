"""Tests for the shared-memory worker pool (`repro.service.pool`)."""

import time

import numpy as np
import pytest

from repro.serving.infer import InferenceEngine
from repro.serving.server import TopicServer
from repro.service.pool import WorkerPool
from repro.service.shm import created_segments

from test_service_shm import make_snapshot


def collect_results(pool, request_ids, timeout=30.0):
    """Gather one result per request id; fails the test on any error relay."""
    results = {}
    deadline = time.monotonic() + timeout
    while len(results) < len(request_ids) and time.monotonic() < deadline:
        item = pool.get_result(timeout=0.5)
        if item is None:
            continue
        kind, request_id, payload = item
        assert kind == "result", payload.get("error")
        results[request_id] = payload
    assert sorted(results) == sorted(request_ids), "missing results"
    return results


@pytest.fixture
def pool():
    worker_pool = WorkerPool(
        make_snapshot(0), num_workers=2, options={"seed": 0}, version=1
    )
    yield worker_pool
    worker_pool.close()


class TestServing:
    def test_results_match_in_process_server(self, pool):
        snapshot = make_snapshot(0)
        documents = [[0, 1, 2, 3], [5, 6], [7, 7, 8]]
        reference = TopicServer(InferenceEngine(snapshot)).infer_batch(documents)
        pool.submit(0, documents)
        payload = collect_results(pool, [0])[0]
        # EM fold-in is deterministic: a worker over the shared buffer must
        # produce exactly what an in-process server over the same phi does.
        np.testing.assert_allclose(np.array(payload["theta"]), reference)
        assert payload["version"] == 1

    def test_many_requests_fan_out_and_all_complete(self, pool):
        request_ids = list(range(12))
        for request_id in request_ids:
            pool.submit(request_id, [[request_id % 5, 1, 2]])
        results = collect_results(pool, request_ids)
        for payload in results.values():
            theta = np.array(payload["theta"])
            np.testing.assert_allclose(theta.sum(axis=1), 1.0)

    def test_string_tokens_and_oov_ids_are_handled(self, pool):
        pool.submit(0, [["w0", "w1", "not-in-vocab"], [0, 999999]])
        payload = collect_results(pool, [0])[0]
        theta = np.array(payload["theta"])
        assert theta.shape[0] == 2
        np.testing.assert_allclose(theta.sum(axis=1), 1.0)

    def test_worker_error_is_relayed_not_fatal(self, pool):
        pool.submit(0, [[None]])  # unencodable document
        kind, request_id, payload = pool.get_result(timeout=30.0)
        assert (kind, request_id) == ("error", 0)
        assert "error" in payload
        # The worker survived the bad request and keeps serving.
        pool.submit(1, [[0, 1]])
        collect_results(pool, [1])


class TestBufferIdentity:
    def test_all_workers_share_one_segment_zero_copy(self, pool):
        diagnostics = pool.diagnostics()
        assert len(diagnostics) == 2
        # THE acceptance criterion: one phi copy across N workers, asserted
        # via shared-memory buffer identity — every worker names the same
        # segment and its engine phi shares memory with the attached buffer.
        assert len({d["segment"] for d in diagnostics}) == 1
        assert all(d["zero_copy"] for d in diagnostics)
        assert {d["segment"] for d in diagnostics} == {pool.current.segment_name}


class TestHotSwap:
    def test_swap_broadcasts_and_reaps_old_generation(self, pool):
        pool.swap(make_snapshot(9), version=2)
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and pool.live_generations != [2]:
            pool.poll_control()
            time.sleep(0.05)
        assert pool.live_generations == [2]
        pool.submit(0, [[0, 1, 2]])
        payload = collect_results(pool, [0])[0]
        assert payload["version"] == 2
        reference = TopicServer(InferenceEngine(make_snapshot(9))).infer_batch(
            [[0, 1, 2]]
        )
        np.testing.assert_allclose(np.array(payload["theta"]), reference)

    def test_swap_to_same_version_is_ignored_by_workers(self, pool):
        pool.swap(make_snapshot(0), version=1)
        time.sleep(0.3)
        pool.poll_control()
        pool.submit(0, [[0]])
        assert collect_results(pool, [0])[0]["version"] == 1


class TestLifecycle:
    def test_dead_worker_is_recycled(self, pool):
        victim = pool._workers[0].process
        victim.terminate()
        victim.join(timeout=5)
        recycled = 0
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and not recycled:
            recycled = pool.check_workers()
            time.sleep(0.05)
        assert recycled == 1
        assert pool.recycled == 1
        assert pool.alive_workers() == 2
        request_ids = list(range(4))
        for request_id in request_ids:
            pool.submit(request_id, [[0, 1]])
        collect_results(pool, request_ids)

    def test_close_unlinks_every_segment_and_is_idempotent(self):
        before = created_segments()
        pool = WorkerPool(make_snapshot(0), num_workers=2)
        pool.swap(make_snapshot(1), version=1)
        assert len(created_segments()) == len(before) + 2
        stopped = pool.close()
        assert created_segments() == before
        assert len(stopped) == 2
        assert all("telemetry" in payload for payload in stopped)
        assert pool.close() == []

    def test_submit_after_close_raises(self):
        pool = WorkerPool(make_snapshot(0), num_workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(0, [[0]])
