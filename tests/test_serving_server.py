"""Tests for the micro-batching topic server: cache, queue, stats."""

import numpy as np
import pytest

from repro import WarpLDA
from repro.serving import InferenceEngine, LRUCache, ServerStats, TopicServer
from repro.serving.server import LATENCY_WINDOW, bow_key


@pytest.fixture
def engine(small_corpus):
    snapshot = WarpLDA(small_corpus, num_topics=5, seed=0).fit(5).export_snapshot()
    return InferenceEngine(snapshot, num_iterations=15)


class TestLRUCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put(("a",), np.array([1.0]))
        cache.put(("b",), np.array([2.0]))
        assert cache.get(("a",)) is not None  # refresh "a"
        cache.put(("c",), np.array([3.0]))  # evicts "b"
        assert ("b",) not in cache
        assert ("a",) in cache and ("c",) in cache
        assert len(cache) == 2

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(0)
        cache.put(("a",), np.array([1.0]))
        assert len(cache) == 0
        assert cache.get(("a",)) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_bow_key_is_order_insensitive(self):
        assert bow_key(np.array([3, 1, 3, 2])) == bow_key(np.array([1, 2, 3, 3]))
        assert bow_key(np.array([1, 1])) != bow_key(np.array([1]))


class TestInferBatch:
    def test_matches_standalone_engine(self, engine, small_corpus):
        server = TopicServer(engine, max_batch_size=4)
        documents = [small_corpus.document_words(i) for i in range(10)]
        expected = engine.infer_ids(documents)
        np.testing.assert_allclose(server.infer_batch(documents), expected)

    def test_repeat_requests_hit_cache(self, engine, small_corpus):
        server = TopicServer(engine)
        documents = [small_corpus.document_words(i) for i in range(5)]
        first = server.infer_batch(documents)
        assert server.stats().cache_hits == 0
        second = server.infer_batch(documents)
        np.testing.assert_array_equal(first, second)
        stats = server.stats()
        assert stats.cache_hits == 5
        assert stats.requests == 10
        assert stats.documents_inferred == 5  # second pass did no inference
        assert stats.cache_hit_rate == pytest.approx(0.5)

    def test_permuted_document_hits_cache(self, engine, small_corpus):
        server = TopicServer(engine)
        words = small_corpus.document_words(0)
        server.infer_batch([words])
        permuted = np.array(words[::-1])
        server.infer_batch([permuted])
        assert server.stats().cache_hits == 1

    def test_duplicates_within_one_batch_infer_once(self, engine, small_corpus):
        server = TopicServer(engine)
        words = small_corpus.document_words(0)
        theta = server.infer_batch([words, words, words])
        np.testing.assert_array_equal(theta[0], theta[1])
        np.testing.assert_array_equal(theta[0], theta[2])
        stats = server.stats()
        assert stats.documents_inferred == 1
        assert stats.cache_hits == 2

    def test_eviction_under_small_capacity(self, engine, small_corpus):
        server = TopicServer(engine, cache_capacity=2)
        documents = [small_corpus.document_words(i) for i in range(4)]
        server.infer_batch(documents)
        assert len(server.cache) == 2
        # Oldest entries were evicted, so re-serving them infers again.
        server.infer_batch([documents[0]])
        assert server.stats().cache_hits == 0

    def test_micro_batch_splitting(self, engine, small_corpus):
        server = TopicServer(engine, max_batch_size=3)
        documents = [small_corpus.document_words(i) for i in range(10)]
        server.infer_batch(documents)
        assert server.stats().batches == 4  # ceil(10 / 3)

    def test_empty_batch(self, engine):
        server = TopicServer(engine)
        assert server.infer_batch([]).shape == (0, engine.num_topics)
        assert server.stats().requests == 0

    def test_token_documents_and_empty_documents(self, engine, small_corpus):
        server = TopicServer(engine)
        vocab = small_corpus.vocabulary
        tokens = [vocab.word(int(w)) for w in small_corpus.document_words(0)]
        theta = server.infer_batch([tokens, []])
        np.testing.assert_allclose(theta.sum(axis=1), 1.0)
        prior_mean = engine.snapshot.alpha / engine.snapshot.alpha_sum
        np.testing.assert_allclose(theta[1], prior_mean)


class TestQueue:
    def test_submit_flush_alignment(self, engine, small_corpus):
        server = TopicServer(engine, max_batch_size=2)
        documents = [small_corpus.document_words(i) for i in range(5)]
        indices = [server.submit(doc) for doc in documents]
        assert indices == [0, 1, 2, 3, 4]
        assert server.pending == 5
        theta = server.flush()
        assert server.pending == 0
        np.testing.assert_allclose(theta, engine.infer_ids(documents))

    def test_flush_empty_queue(self, engine):
        server = TopicServer(engine)
        assert server.flush().shape == (0, engine.num_topics)


class TestStats:
    def test_latency_percentiles_and_throughput(self, engine, small_corpus):
        server = TopicServer(engine)
        server.infer_batch([small_corpus.document_words(i) for i in range(6)])
        stats = server.stats()
        pct = stats.latency_percentiles()
        assert pct["p50_ms"] > 0
        assert pct["p50_ms"] <= pct["p95_ms"] <= pct["p99_ms"]
        assert stats.throughput_docs_per_s > 0
        assert stats.throughput_tokens_per_s > 0
        assert "requests" in stats.summary()

    def test_reset_stats_keeps_cache(self, engine, small_corpus):
        server = TopicServer(engine)
        server.infer_batch([small_corpus.document_words(0)])
        server.reset_stats()
        assert server.stats().requests == 0
        server.infer_batch([small_corpus.document_words(0)])
        assert server.stats().cache_hits == 1

    def test_latency_window_is_bounded(self):
        stats = ServerStats()
        stats.latencies.extend(float(i) for i in range(LATENCY_WINDOW + 10))
        assert len(stats.latencies) == LATENCY_WINDOW
        assert stats.latencies[0] == 10.0  # oldest records dropped

    def test_latency_percentiles_no_samples(self):
        assert ServerStats().latency_percentiles() == {
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
        }

    def test_latency_percentiles_single_sample_is_exact(self):
        stats = ServerStats()
        stats.latencies.append(0.002)
        pct = stats.latency_percentiles()
        assert pct["p50_ms"] == pct["p95_ms"] == pct["p99_ms"] == 2.0

    def test_latency_percentiles_two_samples_pinned(self):
        # The repro.obs histogram rule: 0.002 lands in the (2^-9, 2^-8]
        # bucket, so p50 (rank 1) interpolates to that bucket's upper edge
        # 2^-8 s; p99 (rank 1.98) overshoots and clamps to the larger
        # sample.  Neither is np.percentile's midpoint average, and both
        # stay inside the observed [2 ms, 4 ms].
        stats = ServerStats()
        stats.latencies.extend([0.002, 0.004])
        pct = stats.latency_percentiles()
        assert pct["p50_ms"] == 1e3 * 2.0**-8
        assert pct["p99_ms"] == 4.0
        assert 2.0 <= pct["p50_ms"] <= pct["p95_ms"] <= pct["p99_ms"] <= 4.0

    def test_latency_percentiles_cover_only_the_window(self):
        # Slow early requests roll off the bounded window; percentiles are
        # computed over the surviving LATENCY_WINDOW samples only.
        stats = ServerStats()
        stats.latencies.extend([100.0] * 5)
        stats.latencies.extend([0.001] * LATENCY_WINDOW)
        pct = stats.latency_percentiles()
        assert pct["p99_ms"] == 1.0  # the 100 s outliers are gone

    def test_invalid_batch_size_rejected(self, engine):
        with pytest.raises(ValueError):
            TopicServer(engine, max_batch_size=0)


class TestClose:
    def test_close_drains_pending_submissions(self, engine, small_corpus):
        server = TopicServer(engine, max_batch_size=4)
        documents = [small_corpus.document_words(i) for i in range(3)]
        expected = engine.infer_ids(documents)
        for document in documents:
            server.submit(document)
        drained = server.close()
        # The shutdown promise: everything submitted is answered, not dropped.
        np.testing.assert_allclose(drained, expected)
        assert server.pending == 0
        assert server.closed
        assert server.stats().requests == len(documents)

    def test_close_with_empty_queue_returns_none(self, engine):
        server = TopicServer(engine)
        assert server.close() is None
        assert server.closed

    def test_close_is_idempotent(self, engine, small_corpus):
        server = TopicServer(engine)
        server.submit(small_corpus.document_words(0))
        assert server.close() is not None
        assert server.close() is None

    def test_closed_server_rejects_requests(self, engine, small_corpus):
        server = TopicServer(engine)
        server.close()
        document = small_corpus.document_words(0)
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(document)
        with pytest.raises(RuntimeError, match="closed"):
            server.flush()
        with pytest.raises(RuntimeError, match="closed"):
            server.infer_batch([document])

    def test_context_manager_closes_and_drains(self, engine, small_corpus):
        with TopicServer(engine) as server:
            server.submit(small_corpus.document_words(0))
        assert server.closed
        # The queued request was served (drained), not dropped.
        assert server.stats().requests == 1
