"""Tests for convergence tracking and speedup metrics."""

import pytest

from repro.evaluation import (
    ConvergenceTracker,
    iterations_to_reach,
    speedup_ratio,
    time_to_reach,
)


def make_tracker(label, values, seconds_per_iteration):
    tracker = ConvergenceTracker(label)
    for index, value in enumerate(values, start=1):
        tracker.record(
            iteration=index,
            log_likelihood=value,
            tokens_processed=index * 1000,
            elapsed_seconds=index * seconds_per_iteration,
        )
    return tracker


class TestTracker:
    def test_records_and_series(self):
        tracker = make_tracker("a", [-10.0, -5.0, -2.0], 1.0)
        assert len(tracker) == 3
        assert tracker.iterations == [1, 2, 3]
        assert tracker.log_likelihoods == [-10.0, -5.0, -2.0]
        assert tracker.final_log_likelihood == -2.0
        assert tracker.best_log_likelihood() == -2.0
        assert tracker.records[-1].throughput == pytest.approx(1000.0)

    def test_empty_tracker_raises(self):
        with pytest.raises(ValueError):
            ConvergenceTracker().final_log_likelihood

    def test_wall_clock_mode(self):
        tracker = ConvergenceTracker("wall")
        tracker.record(1, -1.0, 10)
        assert tracker.records[0].elapsed_seconds >= 0.0


class TestTargets:
    def test_iterations_and_time_to_reach(self):
        tracker = make_tracker("a", [-10.0, -5.0, -2.0], 2.0)
        assert iterations_to_reach(tracker, -5.0) == 2
        assert time_to_reach(tracker, -5.0) == pytest.approx(4.0)
        assert iterations_to_reach(tracker, -1.0) is None
        assert time_to_reach(tracker, -1.0) is None


class TestSpeedupRatio:
    def test_time_and_iteration_ratios(self):
        slow = make_tracker("slow", [-10.0, -8.0, -5.0, -2.0], 4.0)
        fast = make_tracker("fast", [-6.0, -2.0], 1.0)
        assert speedup_ratio(slow, fast, target=-5.0, metric="time") == pytest.approx(
            12.0 / 2.0
        )
        assert speedup_ratio(
            slow, fast, target=-5.0, metric="iterations"
        ) == pytest.approx(3 / 2)

    def test_unreached_target_returns_none(self):
        slow = make_tracker("slow", [-10.0], 1.0)
        fast = make_tracker("fast", [-2.0], 1.0)
        assert speedup_ratio(slow, fast, target=-1.0) is None

    def test_invalid_metric_raises(self):
        tracker = make_tracker("a", [-1.0], 1.0)
        with pytest.raises(ValueError):
            speedup_ratio(tracker, tracker, target=-1.0, metric="bogus")
