"""Tests for the WarpLDA sampler."""

import numpy as np
import pytest

from repro.core import WarpLDA, WarpLDAConfig, doc_proposal_acceptance, word_proposal_acceptance
from repro.evaluation import ConvergenceTracker
from repro.samplers import CollapsedGibbsSampler


class TestConfig:
    def test_defaults(self):
        config = WarpLDAConfig(num_topics=10)
        assert config.num_mh_steps == 2
        assert config.beta == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_topics": 0},
            {"num_topics": 5, "num_mh_steps": 0},
            {"num_topics": 5, "word_proposal": "bogus"},
            {"num_topics": 5, "doc_proposal": "alias"},
        ],
    )
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            WarpLDAConfig(**kwargs)

    def test_config_object_overrides_kwargs(self, tiny_corpus):
        config = WarpLDAConfig(num_topics=7, num_mh_steps=3)
        # Passing config= directly is deprecated in favour of from_config /
        # repro.api, but must keep working (and still win over the kwargs).
        with pytest.warns(DeprecationWarning, match="from_config"):
            model = WarpLDA(tiny_corpus, num_topics=2, config=config)
        assert model.num_topics == 7
        assert model.num_mh_steps == 3


class TestAcceptanceRates:
    def test_doc_proposal_acceptance_formula(self):
        # π = min{1, (Cwk'+β)/(Cwk+β) * (Ck+β̄)/(Ck'+β̄)}
        value = doc_proposal_acceptance(
            word_count_current=np.array([2.0]),
            word_count_proposed=np.array([5.0]),
            topic_count_current=np.array([10.0]),
            topic_count_proposed=np.array([20.0]),
            beta=0.1,
            beta_sum=1.0,
        )
        expected = min(1.0, (5.1 / 2.1) * (11.0 / 21.0))
        assert value[0] == pytest.approx(expected)

    def test_word_proposal_acceptance_formula(self):
        value = word_proposal_acceptance(
            doc_count_current=np.array([1.0]),
            doc_count_proposed=np.array([4.0]),
            alpha_current=np.array([0.5]),
            alpha_proposed=np.array([0.5]),
            topic_count_current=np.array([10.0]),
            topic_count_proposed=np.array([5.0]),
            beta_sum=1.0,
        )
        expected = min(1.0, (4.5 / 1.5) * (11.0 / 6.0))
        assert value[0] == pytest.approx(expected, rel=1e-12)

    def test_acceptance_clipped_to_one(self):
        value = doc_proposal_acceptance(
            np.array([0.0]), np.array([100.0]), np.array([1.0]), np.array([1.0]), 0.1, 1.0
        )
        assert value[0] == 1.0


class TestSampling:
    def test_topic_counts_track_assignments(self, small_corpus):
        model = WarpLDA(small_corpus, num_topics=5, seed=0).fit(3)
        np.testing.assert_array_equal(
            model.topic_counts, np.bincount(model.assignments, minlength=5)
        )
        assert model.topic_counts.sum() == small_corpus.num_tokens

    def test_log_likelihood_improves(self, medium_corpus):
        model = WarpLDA(medium_corpus, num_topics=8, seed=0)
        initial = model.log_likelihood()
        model.fit(10)
        assert model.log_likelihood() > initial

    def test_reproducible_from_seed(self, small_corpus):
        first = WarpLDA(small_corpus, num_topics=5, seed=42).fit(5)
        second = WarpLDA(small_corpus, num_topics=5, seed=42).fit(5)
        np.testing.assert_array_equal(first.assignments, second.assignments)

    def test_alias_word_proposal_also_converges(self, small_corpus):
        model = WarpLDA(small_corpus, num_topics=5, seed=0, word_proposal="alias")
        initial = model.log_likelihood()
        model.fit(6)
        assert model.log_likelihood() > initial

    def test_more_mh_steps_do_not_hurt(self, small_corpus):
        few = WarpLDA(small_corpus, num_topics=5, seed=0, num_mh_steps=1).fit(8)
        many = WarpLDA(small_corpus, num_topics=5, seed=0, num_mh_steps=4).fit(8)
        # With more proposals per token the chain mixes at least as well
        # (allowing a small tolerance for Monte-Carlo noise).
        assert many.log_likelihood() >= few.log_likelihood() - abs(few.log_likelihood()) * 0.02

    def test_asymmetric_alpha_supported(self, small_corpus):
        alpha = np.linspace(0.1, 1.0, 5)
        model = WarpLDA(small_corpus, num_topics=5, alpha=alpha, seed=0).fit(3)
        assert model.log_likelihood() < 0

    def test_fit_argument_validation(self, tiny_corpus):
        model = WarpLDA(tiny_corpus, num_topics=3, seed=0)
        with pytest.raises(ValueError):
            model.fit(-1)
        with pytest.raises(ValueError):
            model.fit(1, evaluate_every=0)

    def test_tracker_integration(self, small_corpus):
        model = WarpLDA(small_corpus, num_topics=5, seed=0)
        tracker = ConvergenceTracker("warplda")
        model.fit(4, tracker=tracker, evaluate_every=2)
        assert tracker.iterations == [2, 4]
        assert tracker.records[-1].tokens_processed == 4 * small_corpus.num_tokens


class TestModelOutputs:
    def test_count_matrices_match_assignments(self, small_corpus):
        model = WarpLDA(small_corpus, num_topics=5, seed=1).fit(2)
        doc_topic = model.doc_topic_counts()
        word_topic = model.word_topic_counts()
        assert doc_topic.sum() == small_corpus.num_tokens
        assert word_topic.sum() == small_corpus.num_tokens
        np.testing.assert_array_equal(doc_topic.sum(axis=0), word_topic.sum(axis=0))

    def test_theta_phi_are_distributions(self, small_corpus):
        model = WarpLDA(small_corpus, num_topics=5, seed=1).fit(2)
        np.testing.assert_allclose(model.theta().sum(axis=1), 1.0)
        np.testing.assert_allclose(model.phi().sum(axis=1), 1.0)

    def test_converges_to_cgs_quality(self, medium_corpus):
        """The MCEM solution should be close to the CGS solution (Sec. 6.3)."""
        cgs = CollapsedGibbsSampler(medium_corpus, num_topics=8, seed=0).fit(15)
        warp = WarpLDA(medium_corpus, num_topics=8, seed=0, num_mh_steps=2).fit(60)
        gap = abs(warp.log_likelihood() - cgs.log_likelihood())
        assert gap / abs(cgs.log_likelihood()) < 0.05
