"""Tests for ``repro.obs``: instruments, the pinned percentile rule, span
tracing, cross-process absorption, the no-op default's overhead bound, and
the end-to-end guarantees (exact counts, bit-identical trajectories)."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import WarpLDA
from repro.corpus import Vocabulary
from repro.obs import (
    DEFAULT_BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    Series,
    Telemetry,
    get_telemetry,
    render_report,
    use_telemetry,
)
from repro.training import ParallelTrainer


# --------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------- #
class TestInstruments:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        assert gauge.value is None
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_series_rollover_keeps_lifetime_count(self):
        series = Series(maxlen=4)
        for value in range(6):
            series.record(value)
        assert list(series.values) == [2, 3, 4, 5]
        assert series.observed == 6
        assert series.last == 5

    def test_name_belongs_to_one_instrument_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already a counter"):
            registry.gauge("x")

    def test_merge_is_exact(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, scale in ((a, 1), (b, 10)):
            registry.counter("tokens").inc(7 * scale)
            registry.gauge("skew").set(scale)
            for value in (0.001 * scale, 0.005 * scale):
                registry.histogram("lat").record(value)
            registry.series("rate").record(0.5 * scale)
        a.merge(b.state_dict())
        digest = a.to_dict()
        assert digest["counters"]["tokens"] == 77
        assert digest["gauges"]["skew"] == 10  # last writer wins
        assert digest["histograms"]["lat"]["count"] == 4
        assert digest["histograms"]["lat"]["sum"] == pytest.approx(0.066)
        assert digest["series"]["rate"] == {"observed": 2, "values": [0.5, 5.0]}

    def test_state_dict_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").record(0.5)
        restored = MetricsRegistry()
        restored.merge(json.loads(json.dumps(registry.state_dict())))
        assert restored.to_dict() == registry.to_dict()


# --------------------------------------------------------------------- #
# The pinned percentile rule
# --------------------------------------------------------------------- #
class TestHistogramPercentiles:
    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.percentile(50) == 0.0
        assert histogram.summary() == {"count": 0}

    def test_single_sample_is_exact(self):
        histogram = Histogram()
        histogram.record(0.00123)
        for q in (1, 50, 95, 99, 100):
            assert histogram.percentile(q) == 0.00123

    def test_two_samples_pinned(self):
        # 0.001 lands in the (2^-10, 2^-9] bucket, 0.003 in (2^-9, 2^-8].
        # p50's rank clamps to 1, interpolation reaches the first bucket's
        # upper edge 2^-9, and the clamp keeps it inside [min, max]:
        histogram = Histogram()
        histogram.record(0.001)
        histogram.record(0.003)
        assert histogram.percentile(50) == 2.0**-9
        # p95's rank 1.9 falls 0.9 into the second bucket; the interpolated
        # value overshoots max and clamps to it — never above the larger
        # sample, never np.percentile's midpoint average.
        assert histogram.percentile(95) == 0.003

    def test_percentiles_stay_in_observed_range_and_ordered(self):
        rng = np.random.default_rng(0)
        histogram = Histogram()
        values = rng.lognormal(mean=-6, sigma=2, size=500)
        for value in values:
            histogram.record(value)
        p50, p95, p99 = (histogram.percentile(q) for q in (50, 95, 99))
        assert values.min() <= p50 <= p95 <= p99 <= values.max()

    def test_merged_equals_single_pass(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(0.01, size=200)
        merged, reference = Histogram(), Histogram()
        half = Histogram()
        for value in values[:100]:
            merged.record(value)
        for value in values[100:]:
            half.record(value)
        merged.merge(half)
        for value in values:
            reference.record(value)
        merged_summary, reference_summary = merged.summary(), reference.summary()
        # Bucket-derived fields are exactly equal; sum/mean accumulate in a
        # different order, so they only match to float round-off.
        for key in ("count", "min", "max", "p50", "p95", "p99"):
            assert merged_summary[key] == reference_summary[key]
        for key in ("sum", "mean"):
            assert merged_summary[key] == pytest.approx(reference_summary[key])

    def test_bounds_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Histogram([1.0, 2.0]).merge(Histogram([1.0, 3.0]))
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([])

    def test_overflow_bucket_catches_huge_values(self):
        histogram = Histogram()
        histogram.record(10 * DEFAULT_BUCKET_BOUNDS[-1])
        assert histogram.percentile(99) == 10 * DEFAULT_BUCKET_BOUNDS[-1]


# --------------------------------------------------------------------- #
# Prometheus exposition
# --------------------------------------------------------------------- #
class TestPrometheus:
    def test_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("sampler.tokens_sampled").inc(5)
        registry.gauge("parallel.shard_skew_seconds").set(0.25)
        histogram = registry.histogram("span.sweep.seconds")
        histogram.record(0.5)
        histogram.record(3.0)
        registry.series("mh.rate").record(0.8)
        text = registry.to_prometheus()
        assert "# TYPE sampler_tokens_sampled counter" in text
        assert "sampler_tokens_sampled 5" in text
        assert "parallel_shard_skew_seconds 0.25" in text
        assert "mh_rate 0.8" in text  # series scrape as their last value
        assert 'span_sweep_seconds_bucket{le="+Inf"} 2' in text
        assert "span_sweep_seconds_sum 3.5" in text
        assert "span_sweep_seconds_count 2" in text

    def test_unset_gauges_not_exported(self):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        assert registry.to_prometheus() == ""


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #
class TestTracing:
    def test_jsonl_nesting(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Telemetry(path) as obs:
            with obs.span("outer", run=1):
                with obs.span("inner"):
                    obs.event("tick", n=3)
        event, inner, outer = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        # Spans are written on close: children appear before their parent.
        assert outer["name"] == "outer" and outer["attrs"] == {"run": 1}
        assert outer["parent"] is None and outer["depth"] == 0
        assert inner["parent"] == outer["id"] and inner["depth"] == 1
        assert event["type"] == "event" and event["name"] == "tick"
        assert event["parent"] == inner["id"] and event["depth"] == 2
        assert event["attrs"] == {"n": 3}
        assert inner["seconds"] >= 0
        # Every span also lands in its duration histogram.
        digest = obs.registry.to_dict()["histograms"]
        assert digest["span.outer.seconds"]["count"] == 1
        assert digest["span.inner.seconds"]["count"] == 1

    def test_buffered_absorb_grafts_subtree(self):
        worker = Telemetry()
        with worker.span("shard", worker=0):
            worker.count("tok", 10)
            with worker.span("sweep"):
                pass
        payload = worker.export_payload()

        master = Telemetry()
        with master.span("epoch"):
            master.absorb(payload)
        spans = {s["name"]: s for s in master.events if s["type"] == "span"}
        assert master.registry.to_dict()["counters"]["tok"] == 10
        assert spans["shard"]["parent"] == spans["epoch"]["id"]
        assert spans["shard"]["depth"] == 1
        assert spans["sweep"]["parent"] == spans["shard"]["id"]
        assert spans["sweep"]["depth"] == 2
        # Remapped ids are fresh, not the worker's.
        assert len({s["id"] for s in spans.values()}) == 3

    def test_absorb_tolerates_empty_payloads(self):
        master = Telemetry()
        master.absorb(None)
        master.absorb({})
        master.absorb({"metrics": {}, "events": []})
        assert master.events == []

    def test_use_telemetry_restores_previous(self):
        assert get_telemetry().enabled is False
        outer, inner = Telemetry(), Telemetry()
        with use_telemetry(outer):
            assert get_telemetry() is outer
            with use_telemetry(inner):
                assert get_telemetry() is inner
            assert get_telemetry() is outer
        assert get_telemetry().enabled is False

    def test_noop_default_surface(self):
        obs = get_telemetry()
        assert obs.enabled is False
        with obs.span("anything", k=1):
            obs.count("x")
            obs.event("y")
            obs.gauge("z", 1.0)
            obs.observe("w", 0.5)
            obs.record("v", 2.0)

    def test_close_is_idempotent_and_writes_metrics(self, tmp_path):
        metrics_path = tmp_path / "m.json"
        obs = Telemetry(tmp_path / "t.jsonl", metrics_path=metrics_path)
        obs.count("x", 2)
        obs.close()
        obs.close()
        assert json.loads(metrics_path.read_text())["counters"]["x"] == 2

    def test_render_report_names_the_metrics(self):
        obs = Telemetry()
        obs.count("sampler.tokens_sampled", 100)
        obs.observe("span.sweep.seconds", 0.01)
        report = render_report(obs.registry)
        assert "sampler.tokens_sampled" in report
        assert "span.sweep.seconds" in report


# --------------------------------------------------------------------- #
# End-to-end instrumentation guarantees
# --------------------------------------------------------------------- #
class TestInstrumentedTraining:
    def test_serial_counts_are_exact(self, small_corpus):
        sweeps = 3
        session = Telemetry()
        with use_telemetry(session):
            WarpLDA(small_corpus, num_topics=5, seed=0).fit(sweeps)
        digest = session.registry.to_dict()
        tokens = small_corpus.num_tokens
        assert digest["counters"]["sampler.tokens_sampled"] == sweeps * tokens
        # Default num_mh_steps=2: each token sees 2 proposals per phase.
        for chain in ("mh.doc_proposal", "mh.word_proposal"):
            proposed = digest["counters"][f"{chain}.proposed"]
            accepted = digest["counters"][f"{chain}.accepted"]
            assert proposed == 2 * sweeps * tokens
            assert 0 < accepted <= proposed
            assert digest["series"][f"{chain}.acceptance_rate"]["observed"] == sweeps
        assert digest["series"]["sampler.tokens_per_sec"]["observed"] == sweeps
        assert digest["histograms"]["span.sweep.seconds"]["count"] == sweeps

    def test_instrumentation_never_changes_the_trajectory(self, small_corpus):
        plain = WarpLDA(small_corpus, num_topics=5, seed=42).fit(5)
        session = Telemetry()
        with use_telemetry(session):
            instrumented = WarpLDA(small_corpus, num_topics=5, seed=42).fit(5)
        np.testing.assert_array_equal(plain.phi(), instrumented.phi())
        assert session.registry.to_dict()["counters"]["sampler.tokens_sampled"] > 0

    def test_parallel_counts_merge_exactly(self, small_corpus):
        epochs, workers = 2, 2
        session = Telemetry()
        with ParallelTrainer(
            small_corpus,
            num_workers=workers,
            num_topics=4,
            seed=3,
            backend="inline",
        ) as trainer:
            with use_telemetry(session):
                trainer.train(epochs)
        digest = session.registry.to_dict()
        tokens = small_corpus.num_tokens
        # Shards partition the corpus: cross-worker counter merge is lossless.
        assert digest["counters"]["sampler.tokens_sampled"] == epochs * tokens
        assert digest["counters"]["mh.doc_proposal.proposed"] == 2 * epochs * tokens
        assert (
            digest["histograms"]["parallel.worker_epoch_seconds"]["count"]
            == epochs * workers
        )
        assert (
            digest["histograms"]["parallel.barrier_wait_seconds"]["count"]
            == epochs * workers
        )
        assert digest["gauges"]["parallel.shard_skew_seconds"] >= 0.0
        # Span tree: every shard span grafts under an epoch span.
        spans = [e for e in session.events if e["type"] == "span"]
        by_id = {s["id"]: s for s in spans}
        shard_spans = [s for s in spans if s["name"] == "shard"]
        assert len(shard_spans) == epochs * workers
        assert all(by_id[s["parent"]]["name"] == "epoch" for s in shard_spans)
        assert sorted(s["attrs"]["worker"] for s in shard_spans) == [0, 0, 1, 1]

    def test_streaming_reports_outlive_bounded_history(self, rng):
        from repro.streaming import ModelRegistry, OnlineTrainer, StreamingPipeline

        vocabulary = Vocabulary([f"w{i}" for i in range(30)])
        trainer = OnlineTrainer(
            num_topics=3,
            window_docs=40,
            sweeps_per_batch=1,
            vocabulary=vocabulary,
            seed=0,
        )
        pipeline = StreamingPipeline(
            trainer, ModelRegistry(retain=2), publish_every=1, report_history=2
        )
        session = Telemetry()
        with use_telemetry(session):
            for _ in range(4):
                pipeline.ingest([rng.integers(0, 30, size=12) for _ in range(5)])
        reports = [
            e
            for e in session.events
            if e["type"] == "event" and e["name"] == "ingest_report"
        ]
        # The deque kept 2 reports; telemetry saw all 4, in order
        # (batch_index is 0-based, numbered by the trainer).
        assert len(pipeline.reports) == 2
        assert [e["attrs"]["batch_index"] for e in reports] == [0, 1, 2, 3]
        digest = session.registry.to_dict()
        assert digest["counters"]["streaming.batches_ingested"] == 4
        assert digest["counters"]["streaming.documents_ingested"] == 20
        assert digest["counters"]["registry.publishes"] == 4


# --------------------------------------------------------------------- #
# The overhead bound
# --------------------------------------------------------------------- #
class TestNoopOverhead:
    def test_noop_probes_cost_under_3_percent_of_a_sweep(self, medium_corpus):
        """An un-instrumented run pays one global lookup + attribute check
        per probe site.  Project a generous per-sweep probe budget against
        the measured probe cost and bound it by 3% of a real sweep."""
        sampler = WarpLDA(medium_corpus, num_topics=8, seed=0)
        sampler.fit(2)  # warm caches before timing
        sweeps = 5
        started = time.perf_counter()
        sampler.fit(sweeps)
        sweep_seconds = (time.perf_counter() - started) / sweeps

        probes = 100_000
        started = time.perf_counter()
        for _ in range(probes):
            if get_telemetry().enabled:  # pragma: no cover - never taken
                raise AssertionError("telemetry unexpectedly enabled")
        per_probe = (time.perf_counter() - started) / probes

        # The sampler's hot path gates at sweep/phase granularity — well
        # under 64 probe sites per sweep even counting span shorthands.
        assert 64 * per_probe < 0.03 * sweep_seconds


# --------------------------------------------------------------------- #
# CLI --telemetry end to end
# --------------------------------------------------------------------- #
class TestCliTelemetry:
    def test_train_writes_nested_trace_and_metrics(self, tmp_path, capsys):
        from repro.api.cli import main

        trace = tmp_path / "run.jsonl"
        code = main(
            [
                "train",
                "--synthetic",
                "--docs",
                "40",
                "--vocab-size",
                "80",
                "--doc-length",
                "20",
                "--topics",
                "4",
                "--iterations",
                "2",
                "--seed",
                "0",
                "--backend",
                "parallel",
                "--workers",
                "2",
                "--parallel-backend",
                "inline",
                "--telemetry",
                str(trace),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry trace" in out
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        spans = [l for l in lines if l["type"] == "span"]
        by_id = {s["id"]: s for s in spans}

        def chain(span):
            names = [span["name"]]
            while span["parent"] is not None:
                span = by_id[span["parent"]]
                names.append(span["name"])
            return tuple(reversed(names))

        chains = {chain(s) for s in spans}
        assert ("epoch",) in chains
        assert ("epoch", "shard") in chains
        assert ("epoch", "shard", "sweep") in chains
        assert ("epoch", "shard", "sweep", "word_phase") in chains
        assert ("epoch", "shard", "sweep", "doc_phase") in chains

        metrics = json.loads(trace.with_suffix(".metrics.json").read_text())
        assert metrics["counters"]["sampler.tokens_sampled"] > 0
        assert metrics["series"]["mh.doc_proposal.acceptance_rate"]["observed"] > 0
